// E7: substrate microbenchmarks — step-function algebra, interval sets, and
// IA constraint-network path consistency, as functions of instance size.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "rota/fuzz/gen.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/resource/simd.hpp"
#include "rota/resource/step_function.hpp"
#include "rota/time/ia_network.hpp"
#include "rota/time/interval_set.hpp"
#include "rota/util/rng.hpp"

namespace {

using namespace rota;

StepFunction make_step(int segments, std::uint64_t seed) {
  util::Rng rng(seed);
  StepFunction f;
  Tick cursor = 0;
  for (int i = 0; i < segments; ++i) {
    cursor += rng.uniform(1, 5);
    const Tick end = cursor + rng.uniform(1, 8);
    f.add(TimeInterval(cursor, end), rng.uniform(1, 16));
    cursor = end;
  }
  return f;
}

void BM_StepPlus(benchmark::State& state) {
  StepFunction a = make_step(static_cast<int>(state.range(0)), 1);
  StepFunction b = make_step(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(a.plus(b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StepPlus)->Arg(4)->Arg(32)->Arg(256)->Arg(2048)->Complexity();

void BM_StepMinus(benchmark::State& state) {
  StepFunction a = make_step(static_cast<int>(state.range(0)), 3);
  StepFunction b = make_step(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(a.minus(b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StepMinus)->Arg(4)->Arg(32)->Arg(256)->Arg(2048)->Complexity();

// Scalar-vs-vector A/B of the same merge walks: range(0) segments per
// operand, simd path keyed by range(1). The parity check in main() runs
// before any of these, so a timing diff here is never hiding a wrong answer.
void BM_StepCombineSimd(benchmark::State& state) {
  simd::set_combine_enabled(state.range(1) != 0);
  StepFunction a = make_step(static_cast<int>(state.range(0)), 21);
  StepFunction b = make_step(static_cast<int>(state.range(0)), 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.plus(b));
    benchmark::DoNotOptimize(a.min(b));
  }
  simd::set_combine_enabled(false);
  state.SetLabel(state.range(1) ? (simd::available() ? "avx2" : "avx2-unavailable")
                                : "scalar");
}
BENCHMARK(BM_StepCombineSimd)
    ->Args({32, 0})->Args({32, 1})
    ->Args({256, 0})->Args({256, 1})
    ->Args({2048, 0})->Args({2048, 1});

void BM_StepMinValueSimd(benchmark::State& state) {
  simd::set_enabled(state.range(1) != 0);
  // minus() produces negative excursions, so min_value() has real work.
  StepFunction a = make_step(static_cast<int>(state.range(0)), 23)
                       .minus(make_step(static_cast<int>(state.range(0)), 24));
  for (auto _ : state) benchmark::DoNotOptimize(a.min_value());
  simd::set_enabled(true);
  state.SetLabel(state.range(1) ? "vector" : "scalar");
}
BENCHMARK(BM_StepMinValueSimd)
    ->Args({256, 0})->Args({256, 1})->Args({2048, 0})->Args({2048, 1});

void BM_StepIntegral(benchmark::State& state) {
  StepFunction a = make_step(static_cast<int>(state.range(0)), 5);
  const TimeInterval window(0, 100000);
  for (auto _ : state) benchmark::DoNotOptimize(a.integral(window));
}
BENCHMARK(BM_StepIntegral)->Arg(4)->Arg(32)->Arg(256)->Arg(2048);

void BM_StepEarliestCover(benchmark::State& state) {
  StepFunction a = make_step(static_cast<int>(state.range(0)), 6);
  const Quantity target = a.integral() / 2;
  const TimeInterval window(0, 100000);
  for (auto _ : state) benchmark::DoNotOptimize(a.earliest_cover(window, target));
}
BENCHMARK(BM_StepEarliestCover)->Arg(4)->Arg(32)->Arg(256)->Arg(2048);

void BM_StepValueAt(benchmark::State& state) {
  StepFunction a = make_step(static_cast<int>(state.range(0)), 7);
  Tick t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.value_at(t));
    t = (t + 13) % 5000;
  }
}
BENCHMARK(BM_StepValueAt)->Arg(4)->Arg(256)->Arg(2048);

void BM_IntervalSetUnion(benchmark::State& state) {
  util::Rng rng(8);
  IntervalSet a, b;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const Tick s1 = rng.uniform(0, 10000);
    a.insert(TimeInterval(s1, s1 + rng.uniform(1, 10)));
    const Tick s2 = rng.uniform(0, 10000);
    b.insert(TimeInterval(s2, s2 + rng.uniform(1, 10)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.unioned(b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntervalSetUnion)->Arg(8)->Arg(64)->Arg(512)->Complexity();

void BM_IntervalSetSubtract(benchmark::State& state) {
  util::Rng rng(9);
  IntervalSet a, b;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const Tick s1 = rng.uniform(0, 10000);
    a.insert(TimeInterval(s1, s1 + rng.uniform(1, 20)));
    const Tick s2 = rng.uniform(0, 10000);
    b.insert(TimeInterval(s2, s2 + rng.uniform(1, 10)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.subtracted(b));
}
BENCHMARK(BM_IntervalSetSubtract)->Arg(8)->Arg(64)->Arg(512);

ResourceSet make_resource_set(int types, int segments, std::uint64_t seed) {
  ResourceSet set;
  for (int t = 0; t < types; ++t) {
    Location l("mb-l" + std::to_string(t));
    set.add(t % 2 == 0 ? LocatedType::cpu(l)
                       : LocatedType::network(l, Location("mb-l0")),
            make_step(segments, seed * 131 + static_cast<std::uint64_t>(t)));
  }
  return set;
}

void BM_ResourceSetUnion(benchmark::State& state) {
  const int types = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const ResourceSet a = make_resource_set(types, segments, 11);
  const ResourceSet b = make_resource_set(types, segments, 12);
  for (auto _ : state) benchmark::DoNotOptimize(a.unioned(b));
}
BENCHMARK(BM_ResourceSetUnion)
    ->Args({4, 16})->Args({16, 16})->Args({64, 16})->Args({16, 256});

void BM_ResourceSetRelativeComplement(benchmark::State& state) {
  const int types = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const ResourceSet a = make_resource_set(types, segments, 13);
  // Subtract a dominated subset so the complement exists on every iteration.
  ResourceSet b;
  for (const auto& type : a.types()) {
    b.add(type, a.availability(type).min(make_step(segments, 14)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.relative_complement(b));
}
BENCHMARK(BM_ResourceSetRelativeComplement)
    ->Args({4, 16})->Args({16, 16})->Args({64, 16})->Args({16, 256});

void BM_ResourceSetDominates(benchmark::State& state) {
  const int types = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const ResourceSet a = make_resource_set(types, segments, 15);
  ResourceSet b;
  for (const auto& type : a.types()) {
    b.add(type, a.availability(type).min(make_step(segments, 16)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.dominates(b));
}
BENCHMARK(BM_ResourceSetDominates)
    ->Args({4, 16})->Args({16, 16})->Args({64, 16})->Args({16, 256});

IaNetwork chain_network(std::size_t n) {
  IaNetwork net(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    AllenRelationSet rel(AllenRelation::kBefore);
    rel.insert(AllenRelation::kMeets);
    net.constrain(i, i + 1, rel);
  }
  // Anchor: everything during the last interval (a supply window).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.constrain(i, n - 1, AllenRelation::kDuring);
  }
  return net;
}

void BM_PathConsistency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    IaNetwork net = chain_network(n);
    benchmark::DoNotOptimize(net.propagate());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathConsistency)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_SolveScenario(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    IaNetwork net = chain_network(n);
    benchmark::DoNotOptimize(net.solve_scenario());
  }
}
BENCHMARK(BM_SolveScenario)->Arg(4)->Arg(8)->Arg(12);

// Bit-exactness gate for the numbers above: every fuzz-generated operand
// pair must combine identically with the vector path on and off. Aborts the
// bench run on divergence — a fast wrong kernel must never produce a report.
bool simd_parity_holds() {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    rota::fuzz::Gen gen(seed);
    const StepFunction a = gen.step_function(32, true).first;
    const StepFunction b = gen.step_function(32, true).first;
    simd::set_enabled(true);
    simd::set_combine_enabled(true);
    const StepFunction plus_v = a.plus(b);
    const StepFunction minus_v = a.minus(b);
    const StepFunction min_v = a.min(b);
    const StepFunction max_v = a.max(b);
    const Rate floor_v = minus_v.min_value();
    simd::set_enabled(false);
    const bool ok = plus_v == a.plus(b) && minus_v == a.minus(b) &&
                    min_v == a.min(b) && max_v == a.max(b) &&
                    floor_v == a.minus(b).min_value();
    simd::set_enabled(true);
    simd::set_combine_enabled(false);
    if (!ok) {
      std::cerr << "SIMD parity violation at fuzz seed " << seed << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E7: substrate microbenchmarks ==\n\n";
  std::cout << "simd: " << (simd::available() ? "avx2" : "scalar-only")
            << "; verifying scalar/vector parity over 64 fuzz pairs... ";
  if (!simd_parity_holds()) return EXIT_FAILURE;
  std::cout << "ok\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
