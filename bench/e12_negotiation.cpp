// E12: deadline negotiation. Binary admission wastes information: a rejected
// client learns nothing about what *would* have worked. This experiment runs
// an overloaded cluster where rejected requests receive the smallest
// workable deadline extension as a counter-offer, and patient clients accept
// any offer within their flexibility budget. Swept: client flexibility (how
// much extension they tolerate, as a fraction of their original window).
// Shape: acceptance climbs with flexibility while misses stay at zero —
// counter-offers only ever promise what the residual can actually deliver.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "rota/admission/negotiation.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct NegotiationResult {
  std::size_t offered = 0;
  std::size_t accepted_direct = 0;
  std::size_t accepted_via_offer = 0;
  std::size_t missed = 0;
  double mean_extension = 0.0;  // granted extension / original window length
};

NegotiationResult run_negotiation(double flexibility, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 3;
  config.cpu_rate = 6;
  config.network_rate = 6;
  config.mean_interarrival = 3.0;  // overloaded: rejections are common
  config.laxity = 1.5;
  const Tick horizon = 900;

  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  RotaAdmissionController ctl(gen.phi(), supply);
  Simulator sim(supply, 0, ExecutionMode::kPlanFollowing);

  NegotiationResult result;
  double extension_sum = 0.0;
  std::size_t extension_count = 0;

  for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
    ++result.offered;
    ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), a.computation);
    const Tick window_len = rho.window().length();
    const Tick max_deadline =
        rho.window().end() +
        static_cast<Tick>(std::ceil(static_cast<double>(window_len) * flexibility));

    CounterOffer offer = request_with_counter_offer(ctl, rho, a.at, max_deadline);
    if (offer.decision.accepted) {
      ++result.accepted_direct;
      sim.schedule_admission(a.at, rho, std::move(offer.decision.plan));
      continue;
    }
    if (!offer.suggested_deadline) continue;

    // The patient client takes the counter-offer.
    std::vector<ComplexRequirement> actors;
    for (const auto& c : rho.actors()) {
      actors.emplace_back(c.actor(), c.phases(),
                          TimeInterval(rho.window().start(), *offer.suggested_deadline),
                          c.rate_cap());
    }
    ConcurrentRequirement extended(
        rho.name(), std::move(actors),
        TimeInterval(rho.window().start(), *offer.suggested_deadline));
    AdmissionDecision retry = ctl.request(extended, a.at);
    if (!retry.accepted) continue;  // raced against nothing here, but be safe
    ++result.accepted_via_offer;
    extension_sum += static_cast<double>(*offer.suggested_deadline -
                                         rho.window().end()) /
                     static_cast<double>(window_len);
    ++extension_count;
    sim.schedule_admission(a.at, extended, std::move(retry.plan));
  }

  result.missed = sim.run(horizon * 2).missed();
  result.mean_extension =
      extension_count == 0 ? 0.0 : extension_sum / static_cast<double>(extension_count);
  return result;
}

void print_negotiation_sweep() {
  util::Table table({"client flexibility", "offered", "direct", "via offer",
                     "total acceptance", "mean extension", "missed"});
  for (double flexibility : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    NegotiationResult r = run_negotiation(flexibility, 1212);
    const double acceptance =
        static_cast<double>(r.accepted_direct + r.accepted_via_offer) /
        static_cast<double>(r.offered);
    table.add_row({util::fixed(flexibility, 2), std::to_string(r.offered),
                   std::to_string(r.accepted_direct),
                   std::to_string(r.accepted_via_offer), util::fixed(acceptance, 3),
                   util::fixed(r.mean_extension, 3), std::to_string(r.missed)});
  }
  std::cout << "== E12: counter-offer negotiation under overload ==\n"
            << table.to_string()
            << "\nflexibility = extra deadline a client tolerates, relative to "
               "its window;\nmisses stay 0: offers only promise what the "
               "residual can deliver.\n\n";
}

void BM_CounterOfferLatency(benchmark::State& state) {
  WorkloadConfig config;
  config.seed = 1213;
  config.num_locations = 3;
  config.cpu_rate = 6;
  config.network_rate = 6;
  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 2000));
  RotaAdmissionController ctl(gen.phi(), supply);
  // Saturate a window so probes actually exercise the search.
  for (int i = 0; i < 40; ++i) ctl.request(gen.make_computation(5), 0);
  ConcurrentRequirement rho =
      make_concurrent_requirement(gen.phi(), gen.make_computation(5));
  for (auto _ : state) {
    RotaAdmissionController copy = ctl;
    benchmark::DoNotOptimize(request_with_counter_offer(copy, rho, 0, 1500));
  }
}
BENCHMARK(BM_CounterOfferLatency);

}  // namespace

int main(int argc, char** argv) {
  print_negotiation_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
