// E13: control granularity (the paper's Δt remark). Reasoning at a coarser
// Δt means fewer, blockier availability segments: feasibility checks get
// cheaper, but the bucket-minimum conservatism rejects computations that the
// fine-grained view admits. Sweeps the coarsening factor over a churn-heavy
// (highly fragmented) supply and reports acceptance and per-request latency;
// soundness is free — every coarse admission is valid at fine granularity.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "rota/admission/controller.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct GranularityResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t supply_terms = 0;
  double mean_request_us = 0.0;
  std::size_t missed = 0;  // admitted plans executed against the FINE supply
};

GranularityResult run_granularity(Tick factor, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 4;
  config.cpu_rate = 2;
  config.network_rate = 4;
  config.mean_interarrival = 8.0;
  config.laxity = 2.5;
  const Tick horizon = 800;

  WorkloadGenerator gen(config, CostModel());
  // Heavy churn fragments the availability profiles badly.
  ResourceSet fine = gen.base_supply(TimeInterval(0, horizon));
  const ChurnTrace churn = gen.make_churn(horizon, 0.8, 25.0, 6);
  for (const auto& e : churn.events()) fine.add(e.term);
  const ResourceSet coarse = fine.coarsened(factor);

  RotaAdmissionController ctl(gen.phi(), coarse);
  // Execution happens against the FINE supply: coarse plans must still fit.
  Simulator sim(fine, 0, ExecutionMode::kPlanFollowing);

  GranularityResult result;
  result.supply_terms = coarse.term_count();
  double total_us = 0.0;
  for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
    ++result.offered;
    const auto begin = std::chrono::steady_clock::now();
    AdmissionDecision d = ctl.request(a.computation, a.at);
    const auto end = std::chrono::steady_clock::now();
    total_us +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count() /
        1000.0;
    if (!d.accepted) continue;
    ++result.admitted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation),
                           std::move(d.plan));
  }
  result.mean_request_us =
      result.offered == 0 ? 0.0 : total_us / static_cast<double>(result.offered);
  result.missed = sim.run(horizon).missed();
  return result;
}

void print_granularity_sweep() {
  util::Table table({"coarsening factor", "supply terms", "offered", "admitted",
                     "acceptance", "mean request (us)", "missed (on fine)"});
  for (Tick factor : {1, 2, 4, 8, 16, 32}) {
    GranularityResult r = run_granularity(factor, 1313);
    table.add_row(
        {std::to_string(factor), std::to_string(r.supply_terms),
         std::to_string(r.offered), std::to_string(r.admitted),
         util::fixed(static_cast<double>(r.admitted) / r.offered, 3),
         util::fixed(r.mean_request_us, 1), std::to_string(r.missed)});
  }
  std::cout << "== E13: reasoning granularity (the paper's delta-t knob) ==\n"
            << table.to_string()
            << "\nconservative coarsening: acceptance falls, per-request cost "
               "falls,\nand misses on the fine supply stay 0 — coarse verdicts "
               "are sound.\n\n";
}

void BM_CoarsenedPlanning(benchmark::State& state) {
  WorkloadConfig config;
  config.seed = 1314;
  config.num_locations = 4;
  config.cpu_rate = 2;
  WorkloadGenerator gen(config, CostModel());
  ResourceSet fine = gen.base_supply(TimeInterval(0, 4000));
  const ChurnTrace churn = gen.make_churn(4000, 0.8, 25.0, 6);
  for (const auto& e : churn.events()) fine.add(e.term);
  const ResourceSet supply = fine.coarsened(state.range(0));
  ConcurrentRequirement rho =
      make_concurrent_requirement(gen.phi(), gen.make_computation(100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_concurrent(supply, rho, PlanningPolicy::kAsap));
  }
  state.SetLabel("terms=" + std::to_string(supply.term_count()));
}
BENCHMARK(BM_CoarsenedPlanning)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CoarsenOp(benchmark::State& state) {
  WorkloadConfig config;
  config.seed = 1315;
  config.num_locations = 4;
  config.cpu_rate = 2;
  WorkloadGenerator gen(config, CostModel());
  ResourceSet fine = gen.base_supply(TimeInterval(0, 4000));
  const ChurnTrace churn = gen.make_churn(4000, 0.8, 25.0, 6);
  for (const auto& e : churn.events()) fine.add(e.term);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fine.coarsened(state.range(0)));
  }
}
BENCHMARK(BM_CoarsenOp)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_granularity_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
