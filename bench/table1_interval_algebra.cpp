// Table I reproduction: the interval-algebra relations ROTA builds on.
//
// Prints the paper's Table I — the seven forward relations plus inverses,
// each computed (not hard-coded) from a canonical pair of intervals — then
// benchmarks relation computation and composition.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "rota/time/allen.hpp"
#include "rota/util/rng.hpp"
#include "rota/util/table.hpp"

namespace {

using namespace rota;

void print_table1() {
  // A canonical witness pair for every relation.
  const std::vector<std::pair<TimeInterval, TimeInterval>> witnesses = {
      {{0, 2}, {4, 6}},  // before
      {{4, 6}, {0, 2}},  // after
      {{0, 3}, {3, 6}},  // meets
      {{3, 6}, {0, 3}},  // met-by
      {{0, 4}, {2, 6}},  // overlaps
      {{2, 6}, {0, 4}},  // overlapped-by
      {{0, 2}, {0, 6}},  // starts
      {{0, 6}, {0, 2}},  // started-by
      {{2, 4}, {0, 6}},  // during
      {{0, 6}, {2, 4}},  // contains
      {{4, 6}, {0, 6}},  // finishes
      {{0, 6}, {4, 6}},  // finished-by
      {{1, 5}, {1, 5}},  // equals
  };

  util::Table table({"relation", "symbol", "tau1", "tau2", "inverse"});
  for (const auto& [a, b] : witnesses) {
    const AllenRelation r = allen_relation(a, b);
    table.add_row({allen_name(r), allen_symbol(r), a.to_string(), b.to_string(),
                   allen_name(inverse(r))});
  }
  std::cout << "== Table I: interval relations (computed from witnesses) ==\n"
            << table.to_string() << "\n";

  // Composition-table summary: how constraining is each row on average?
  util::Table comp({"r1 (row)", "avg |r1 o r2|", "min", "max"});
  for (AllenRelation r1 : all_allen_relations()) {
    int total = 0, lo = 13, hi = 0;
    for (AllenRelation r2 : all_allen_relations()) {
      const int n = compose(r1, r2).size();
      total += n;
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    comp.add_row({allen_name(r1), util::fixed(total / 13.0, 2), std::to_string(lo),
                  std::to_string(hi)});
  }
  std::cout << "== Derived composition table, per-row disjunction sizes ==\n"
            << comp.to_string() << "\n";
}

void BM_AllenRelation(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::pair<TimeInterval, TimeInterval>> pairs;
  for (int i = 0; i < 1024; ++i) {
    const Tick a = rng.uniform(0, 50), b = rng.uniform(a + 1, 60);
    const Tick c = rng.uniform(0, 50), d = rng.uniform(c + 1, 60);
    pairs.emplace_back(TimeInterval(a, b), TimeInterval(c, d));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(allen_relation(x, y));
  }
}
BENCHMARK(BM_AllenRelation);

void BM_Compose(benchmark::State& state) {
  std::size_t i = 0;
  const auto all = all_allen_relations();
  for (auto _ : state) {
    const AllenRelation r1 = all[i % 13];
    const AllenRelation r2 = all[(i / 13) % 13];
    benchmark::DoNotOptimize(compose(r1, r2));
    ++i;
  }
}
BENCHMARK(BM_Compose);

void BM_ComposeSets(benchmark::State& state) {
  AllenRelationSet s1 = AllenRelationSet::all();
  AllenRelationSet s2(AllenRelation::kBefore);
  s2.insert(AllenRelation::kMeets);
  s2.insert(AllenRelation::kOverlaps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose(s1, s2));
  }
}
BENCHMARK(BM_ComposeSets);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
