// E9: CyberOrgs encapsulation and the cost of reasoning (the paper's §VI
// hypothesis: "using ROTA in the context of CyberOrgs ameliorates the
// complexity challenge"). One big flat org is compared against a partitioned
// hierarchy on identical supply and workload: admission latency drops with
// the encapsulation size because every feasibility question only touches the
// org's own slice, while local workloads lose (almost) no acceptance.
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/cyberorgs/cyberorg.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct Setup {
  WorkloadConfig config;
  Tick horizon = 2000;

  Setup(std::size_t locations, std::uint64_t seed) {
    config.seed = seed;
    config.num_locations = locations;
    config.cpu_rate = 8;
    config.network_rate = 8;
    config.mean_interarrival = 4.0;
    config.laxity = 2.5;
    // Keep jobs node-local so they route cleanly to per-node orgs.
    config.actors_min = config.actors_max = 1;
    config.p_send = 0.0;
    config.p_migrate = 0.0;
  }
};

/// Flat: every request against one org holding everything.
std::pair<std::size_t, std::size_t> run_flat(const Setup& setup) {
  WorkloadGenerator gen(setup.config, CostModel());
  CyberOrg root("root", gen.phi(),
                gen.base_supply(TimeInterval(0, setup.horizon)));
  std::size_t offered = 0, accepted = 0;
  for (const Arrival& a : gen.make_arrivals(setup.horizon / 2)) {
    ++offered;
    if (root.request(a.computation, a.at).accepted) ++accepted;
  }
  return {offered, accepted};
}

/// Partitioned: one child org per location; requests route to the home org.
std::pair<std::size_t, std::size_t> run_partitioned(const Setup& setup) {
  WorkloadGenerator gen(setup.config, CostModel());
  CyberOrg root("root", gen.phi(),
                gen.base_supply(TimeInterval(0, setup.horizon)));
  for (const Location& l : gen.locations()) {
    ResourceSet slice;
    slice.add(setup.config.cpu_rate, TimeInterval(0, setup.horizon),
              LocatedType::cpu(l));
    root.create_child("org-" + l.name(), slice);
  }
  std::size_t offered = 0, accepted = 0;
  for (const Arrival& a : gen.make_arrivals(setup.horizon / 2)) {
    ++offered;
    const Location home = a.computation.actors()[0].actions()[0].at;
    CyberOrg* org = root.find("org-" + home.name());
    if (org != nullptr && org->request(a.computation, a.at).accepted) ++accepted;
  }
  return {offered, accepted};
}

void print_encapsulation_table() {
  util::Table table({"locations", "layout", "offered", "accepted", "acceptance"});
  for (std::size_t n : {4u, 8u, 16u}) {
    Setup setup(n, 909);
    auto [fo, fa] = run_flat(setup);
    auto [po, pa] = run_partitioned(setup);
    table.add_row({std::to_string(n), "flat", std::to_string(fo), std::to_string(fa),
                   util::fixed(static_cast<double>(fa) / fo, 3)});
    table.add_row({std::to_string(n), "per-node orgs", std::to_string(po),
                   std::to_string(pa), util::fixed(static_cast<double>(pa) / po, 3)});
  }
  std::cout << "== E9: acceptance under encapsulation (node-local workload) ==\n"
            << table.to_string()
            << "\nnode-local jobs lose nothing to partitioning; what they gain "
               "is the\nper-request reasoning cost below.\n\n";
}

void BM_FlatAdmission(benchmark::State& state) {
  Setup setup(static_cast<std::size_t>(state.range(0)), 911);
  WorkloadGenerator gen(setup.config, CostModel());
  CyberOrg root("root", gen.phi(), gen.base_supply(TimeInterval(0, setup.horizon)));
  // Preload commitments so the ledger has realistic fragmentation.
  for (const Arrival& a : gen.make_arrivals(setup.horizon / 4)) {
    root.request(a.computation, a.at);
  }
  DistributedComputation probe = gen.make_computation(setup.horizon / 4 + 10);
  for (auto _ : state) {
    CyberOrg copy("probe", gen.phi(), root.ledger().residual());
    benchmark::DoNotOptimize(copy.request(probe, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlatAdmission)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_EncapsulatedAdmission(benchmark::State& state) {
  Setup setup(static_cast<std::size_t>(state.range(0)), 911);
  WorkloadGenerator gen(setup.config, CostModel());
  CyberOrg root("root", gen.phi(), gen.base_supply(TimeInterval(0, setup.horizon)));
  const Location first = gen.locations()[0];
  ResourceSet slice;
  slice.add(setup.config.cpu_rate, TimeInterval(0, setup.horizon),
            LocatedType::cpu(first));
  CyberOrg& org = root.create_child("org", slice);
  // Preload the org with its share of the workload.
  for (const Arrival& a : gen.make_arrivals(setup.horizon / 4)) {
    if (a.computation.actors()[0].actions()[0].at == first) {
      org.request(a.computation, a.at);
    }
  }
  DistributedComputation probe = gen.make_computation(setup.horizon / 4 + 10);
  for (auto _ : state) {
    CyberOrg copy("probe", gen.phi(), org.ledger().residual());
    benchmark::DoNotOptimize(copy.request(probe, 0));
  }
  // The encapsulated cost is (near) independent of the system size N.
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EncapsulatedAdmission)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_IsolateAssimilate(benchmark::State& state) {
  Setup setup(8, 913);
  WorkloadGenerator gen(setup.config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, setup.horizon));
  ResourceSet slice;
  slice.add(2, TimeInterval(0, setup.horizon), LocatedType::cpu(gen.locations()[0]));
  for (auto _ : state) {
    CyberOrg root("root", gen.phi(), supply);
    root.create_child("child", slice);
    root.assimilate("child");
    benchmark::DoNotOptimize(root.subtree_size());
  }
}
BENCHMARK(BM_IsolateAssimilate);

}  // namespace

int main(int argc, char** argv) {
  print_encapsulation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
