// E10: sensitivity to Φ estimation error. The paper's footnote 3 allows Φ to
// be an estimate ("at the cost of some inefficiency, estimates could be used
// and revised as necessary") — this experiment quantifies that inefficiency.
// Admission reasons with an *estimated* cost model; execution charges *true*
// costs inflated by ε. Sweep ε and a provisioning safety margin m:
//   * with m = 0, misses appear once ε > 0 (assurance erodes with the
//     estimate);
//   * provisioning with m >= ε restores zero misses, at an acceptance cost.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "rota/admission/baselines.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

/// Cost parameters scaled by (1 + f); used both to inflate "true" execution
/// costs (f = ε) and to pad the admission-side estimate (f = margin).
CostParameters scaled_parameters(double f) {
  auto scale = [f](Quantity q) {
    return static_cast<Quantity>(std::llround(static_cast<double>(q) * (1.0 + f)));
  };
  CostParameters p;  // defaults = the paper's numbers
  p.evaluate_per_weight = scale(p.evaluate_per_weight);
  p.send_base = scale(p.send_base);
  p.local_send_cpu = scale(p.local_send_cpu);
  p.create_base = scale(p.create_base);
  p.ready_cost = scale(p.ready_cost);
  p.migrate_cpu_each_side = scale(p.migrate_cpu_each_side);
  p.migrate_network_base = scale(p.migrate_network_base);
  return p;
}

struct PhiErrorResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t missed = 0;
};

PhiErrorResult run_with_error(double epsilon, double margin, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 3;
  config.cpu_rate = 8;
  config.network_rate = 8;
  config.mean_interarrival = 6.0;
  config.laxity = 1.8;
  const Tick horizon = 800;

  // Workload actions are generated once; admission sees the padded estimate,
  // the simulator charges the inflated truth.
  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  const CostModel estimate(scaled_parameters(margin));
  const CostModel truth(scaled_parameters(epsilon));

  RotaStrategy rota(estimate, supply);
  // Execution must be work-conserving: plans sized by the estimate cannot
  // drain inflated true demands, so the executor shares supply greedily.
  Simulator sim(supply, 0, ExecutionMode::kWorkConserving, PriorityOrder::kEdf);

  PhiErrorResult result;
  for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
    ++result.offered;
    AdmissionDecision d = rota.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++result.admitted;
    sim.schedule_admission(a.at, make_concurrent_requirement(truth, a.computation));
  }
  result.missed = sim.run(horizon).missed();
  return result;
}

void print_phi_error_sweep() {
  util::Table table({"true error e", "margin m", "offered", "admitted", "missed",
                     "miss-rate"});
  for (double epsilon : {0.0, 0.25, 0.5}) {
    for (double margin : {0.0, 0.25, 0.5}) {
      PhiErrorResult r = run_with_error(epsilon, margin, 1010);
      table.add_row(
          {util::fixed(epsilon, 2), util::fixed(margin, 2),
           std::to_string(r.offered), std::to_string(r.admitted),
           std::to_string(r.missed),
           util::fixed(r.admitted ? static_cast<double>(r.missed) / r.admitted : 0.0,
                       3)});
    }
  }
  std::cout << "== E10: assurance vs Phi estimation error (paper footnote 3) ==\n"
            << table.to_string()
            << "\nshape: misses appear when the margin is smaller than the true "
               "error and\nvanish once m >= e; the price of the margin is "
               "acceptance.\n\n";
}

void BM_PhiErrorScenario(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_with_error(0.25, 0.25, 1011));
  }
}
BENCHMARK(BM_PhiErrorScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_phi_error_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
