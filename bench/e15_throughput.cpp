// E15: batched-admission throughput — requests/sec of the parallel
// BatchAdmissionController at 1/2/4/8 planning lanes against the sequential
// RotaAdmissionController on the same heavy FCFS workload, with
// decision-for-decision parity asserted inline. Writes the first entry of
// the bench trajectory: BENCH_admission_throughput.json (pass a path as
// argv[1] to redirect).
//
// Pass --trace-out=PATH (or set ROTA_TRACE=PATH) to additionally run one
// traced batch(8) pass AFTER the timed trials and write a Chrome-trace JSON
// artifact (spans plus a metrics dump) to PATH — load it in Perfetto or
// chrome://tracing. The timed trials always run untraced so the numbers in
// the bench JSON are never polluted by the observability layer.
//
// --smoke shrinks the workload (horizon 1200, lanes 1/2/4) for CI: the full
// parity machinery runs in seconds. The JSON artifact is refused when the
// benched lane count exceeds the host's usable cpus — an oversubscribed
// scaling curve is noise — unless --force is passed, which stamps the
// artifact with an explanatory note instead.
//
// The workload is an over-subscribed open system: 8 locations (8 cpu types +
// 56 directed links), constant base supply fragmented by ~2k churned peer
// terms with bounded lifetimes, and ~5k deadline-constrained computations
// arriving at ~1/tick — far beyond capacity, so admission decisions are
// dominated by rejections, the regime the optimistic pipeline is built for.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "rota/admission/controller.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/obs/obs.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

/// hardware_concurrency() honors the process's cpu affinity mask, so under a
/// cgroup-pinned CI container it reports the *usable* lanes (possibly 1).
std::size_t host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Physical processors online on the host, affinity-mask-independent where
/// the platform exposes it. Recording both makes a flat scaling curve
/// readable: host_cpus == 1 with host_cpus_online == 64 says "pinned
/// container", not "the pipeline stopped scaling".
std::size_t host_cpus_online() {
#if defined(_SC_NPROCESSORS_ONLN)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<std::size_t>(n);
#endif
  return host_cpus();
}

struct Measurement {
  std::string controller;
  std::size_t threads = 1;
  std::size_t requests = 0;
  std::size_t accepted = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double speedup = 0.0;             // vs the sequential controller
  double scaling_efficiency = 0.0;  // speedup / threads
};

struct Workload {
  ResourceSet supply;
  std::vector<BatchRequest> requests;
};

Workload make_workload(bool smoke) {
  WorkloadConfig config;
  config.seed = 2026;
  config.num_locations = 8;
  config.mean_interarrival = 0.15;
  config.laxity = 1.03;
  config.cpu_rate = 2;
  config.network_rate = 2;
  CostModel phi;
  WorkloadGenerator gen(config, phi);

  // Smoke mode (CI): same workload shape at a fraction of the horizon — the
  // parity machinery is fully exercised, the wall clock stays in seconds.
  const Tick horizon = smoke ? 1200 : 6000;
  Workload w;
  w.supply = gen.base_supply(TimeInterval(0, horizon));
  // Fragment the availability profiles the way a churny open system does:
  // every peer term has its own lifetime, so the residual the controllers
  // plan against carries hundreds of segments per located type.
  const ChurnTrace churn = gen.make_churn(horizon, 8.0, 8.0, 1);
  for (const auto& e : churn.events()) {
    w.supply.add(e.term);
  }
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    w.requests.push_back(
        BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  return w;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t accept_count(const std::vector<AdmissionDecision>& decisions) {
  std::size_t n = 0;
  for (const auto& d : decisions) n += d.accepted ? 1 : 0;
  return n;
}

void check_parity(const std::vector<AdmissionDecision>& expected,
                  const std::vector<AdmissionDecision>& actual,
                  std::size_t threads) {
  if (expected.size() != actual.size()) {
    std::cerr << "FATAL: decision count mismatch at " << threads << " threads\n";
    std::exit(1);
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].accepted != actual[i].accepted ||
        expected[i].plan != actual[i].plan) {
      std::cerr << "FATAL: decision divergence at request " << i << " with "
                << threads << " threads\n";
      std::exit(1);
    }
  }
}

constexpr int kTrials = 3;

Measurement bench_sequential(const Workload& w,
                             std::vector<AdmissionDecision>& decisions_out) {
  Measurement m;
  m.controller = "sequential";
  m.threads = 1;
  m.requests = w.requests.size();
  double best = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    CostModel phi;
    RotaAdmissionController ctl(phi, w.supply);
    std::vector<AdmissionDecision> decisions;
    decisions.reserve(w.requests.size());
    const double t0 = now_seconds();
    for (const auto& r : w.requests) decisions.push_back(ctl.request(r.rho, r.at));
    best = std::min(best, now_seconds() - t0);
    decisions_out = std::move(decisions);
  }
  m.seconds = best;
  m.accepted = accept_count(decisions_out);
  m.requests_per_sec = static_cast<double>(m.requests) / best;
  return m;
}

Measurement bench_batch(const Workload& w, std::size_t threads,
                        const std::vector<AdmissionDecision>& expected) {
  Measurement m;
  m.controller = "batch";
  m.threads = threads;
  m.requests = w.requests.size();
  double best = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    CostModel phi;
    BatchAdmissionController ctl(phi, w.supply, PlanningPolicy::kAsap, threads);
    const double t0 = now_seconds();
    const auto decisions = ctl.admit_batch(w.requests);
    best = std::min(best, now_seconds() - t0);
    if (trial == 0) {
      check_parity(expected, decisions, threads);
      m.accepted = accept_count(decisions);
    }
  }
  m.seconds = best;
  m.requests_per_sec = static_cast<double>(m.requests) / best;
  return m;
}

bool write_json(const std::string& path, const Workload& w, Tick horizon,
                const std::vector<Measurement>& results,
                const std::string& note) {
  double sequential_rps = 0.0;
  double batch_max_rps = 0.0;
  std::size_t max_threads = 0;
  for (const auto& m : results) {
    if (m.controller == "sequential") sequential_rps = m.requests_per_sec;
    if (m.controller == "batch" && m.threads >= max_threads) {
      max_threads = m.threads;
      batch_max_rps = m.requests_per_sec;
    }
  }
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"e15_throughput\",\n"
      << "  \"host_cpus\": " << host_cpus() << ",\n"
      << "  \"host_cpus_online\": " << host_cpus_online() << ",\n";
  if (!note.empty()) out << "  \"note\": \"" << note << "\",\n";
  out << "  \"workload\": {\n"
      << "    \"seed\": 2026,\n"
      << "    \"locations\": 8,\n"
      << "    \"horizon_ticks\": " << horizon << ",\n"
      << "    \"requests\": " << w.requests.size() << ",\n"
      << "    \"supply_terms\": " << w.supply.term_count() << "\n"
      << "  },\n"
      << "  \"parity\": \"batch decisions verified identical to sequential FCFS\",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    out << "    {\"controller\": \"" << m.controller << "\", \"threads\": " << m.threads
        << ", \"requests\": " << m.requests << ", \"accepted\": " << m.accepted
        << ", \"seconds\": " << m.seconds
        << ", \"requests_per_sec\": " << static_cast<long long>(m.requests_per_sec)
        << ", \"speedup\": " << m.speedup
        << ", \"scaling_efficiency\": " << m.scaling_efficiency
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_batch8_vs_sequential\": "
      << (sequential_rps > 0 ? batch_max_rps / sequential_rps : 0.0) << "\n"
      << "}\n";
  return out.good();
}

/// One instrumented batch(8) pass with metrics + tracing on, written as a
/// Chrome-trace JSON artifact. Runs after (and apart from) the timed trials.
bool write_trace_artifact(const Workload& w, const std::string& path) {
  obs::MetricsRegistry::global().reset();
  obs::enable_metrics(true);
  obs::TraceRecorder recorder;
  recorder.install();
  {
    CostModel phi;
    BatchAdmissionController ctl(phi, w.supply, PlanningPolicy::kAsap, 8);
    (void)ctl.admit_batch(w.requests);
  }
  recorder.uninstall();
  obs::enable_metrics(false);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::cout << "\ntraced batch(8) pass: " << recorder.event_count()
            << " trace events\n"
            << "  accepted=" << snap.counter("plan.commit.accepted")
            << " rejected.deadline=" << snap.counter("plan.commit.rejected.deadline_passed")
            << " rejected.no_plan=" << snap.counter("plan.commit.rejected.no_plan")
            << " rejected.conflict=" << snap.counter("plan.commit.rejected.conflict")
            << " stale=" << snap.counter("plan.commit.stale")
            << "\n  rounds=" << snap.counter("batch.rounds")
            << " speculations=" << snap.counter("plan.speculate.count")
            << " wasted=" << snap.counter("batch.speculations_wasted") << "\n";
  return recorder.write_chrome_json(path, &snap);
}

/// Reads "speedup_batch8_vs_sequential" out of a stored bench JSON; nullopt
/// when the file or the key is missing.
std::optional<double> read_baseline_speedup(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string key = "\"speedup_batch8_vs_sequential\": ";
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find(key);
    if (pos == std::string::npos) continue;
    try {
      return std::stod(line.substr(pos + key.size()));
    } catch (...) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// The regression gate behind --check-baseline. On a host wide enough to run
/// all `max_lanes` in parallel, max-lane admission must clear the kMinSpeedup
/// floor — unconditionally, whatever the stored artifact says (an artifact
/// regenerated on a narrow host must not be able to neuter the gate). The
/// stored speedup is reported for context only. Hosts with fewer cores than
/// lanes cannot reproduce the parallelism and are skipped (the parity checks
/// above still ran — a decision divergence dies long before this gate).
int check_baseline(const std::string& baseline_path, double measured_speedup,
                   std::size_t max_lanes) {
  // Full runs gate 8 lanes at 2.5x; smoke runs gate 4 lanes at a laxer 1.5x
  // (small workloads amortize the round machinery less).
  const double kMinSpeedup = max_lanes >= 8 ? 2.5 : 1.5;
  const std::optional<double> baseline = read_baseline_speedup(baseline_path);
  if (baseline) {
    std::cout << "baseline gate: stored speedup " << *baseline << ", measured "
              << measured_speedup << ", floor " << kMinSpeedup << "\n";
  } else {
    std::cout << "baseline gate: no stored speedup in " << baseline_path
              << "; measured " << measured_speedup << ", floor " << kMinSpeedup
              << "\n";
  }
  if (host_cpus() < max_lanes) {
    std::cout << "baseline gate: host has " << host_cpus() << " usable cpus (< "
              << max_lanes << " lanes) — gate skipped\n";
    return 0;
  }
  if (measured_speedup < kMinSpeedup) {
    std::cerr << "FATAL: " << max_lanes << "-lane speedup " << measured_speedup
              << " fell below the " << kMinSpeedup << "x floor\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E15: batched admission throughput ==\n\n";
  std::string json_path = "BENCH_admission_throughput.json";
  std::optional<std::string> baseline_path;
  std::optional<std::string> trace_path = obs::trace_path_from_env();
  bool smoke = false;
  bool force = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--check-baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--check-baseline=").size());
    } else if (arg == "--check-baseline") {
      baseline_path = json_path;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--force") {
      force = true;
    } else {
      json_path = arg;
    }
  }

  const std::vector<std::size_t> lane_counts =
      smoke ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const Tick horizon = smoke ? 1200 : 6000;
  const Workload w = make_workload(smoke);
  std::cout << "workload: " << w.requests.size() << " requests, "
            << w.supply.term_count() << " supply terms"
            << (smoke ? " (smoke mode)" : "") << "\n"
            << "host: " << host_cpus() << " usable cpus ("
            << host_cpus_online() << " online)\n\n";

  std::vector<Measurement> results;
  std::vector<AdmissionDecision> expected;
  results.push_back(bench_sequential(w, expected));
  for (std::size_t threads : lane_counts) {
    results.push_back(bench_batch(w, threads, expected));
  }

  const double base = results.front().requests_per_sec;
  for (auto& m : results) {
    m.speedup = base > 0 ? m.requests_per_sec / base : 0.0;
    m.scaling_efficiency = m.threads > 0
                               ? m.speedup / static_cast<double>(m.threads)
                               : 0.0;
  }
  std::cout << "controller   threads   accepted   seconds   req/sec   speedup"
               "   efficiency\n";
  for (const auto& m : results) {
    std::printf("%-12s %7zu %10zu %9.3f %9.0f %8.2fx %10.2f\n",
                m.controller.c_str(), m.threads, m.accepted, m.seconds,
                m.requests_per_sec, m.speedup, m.scaling_efficiency);
  }

  // The gate reads the *stored* baseline before write_json refreshes it.
  int gate_status = 0;
  if (baseline_path) {
    gate_status =
        check_baseline(*baseline_path, results.back().speedup, lane_counts.back());
  }

  // An artifact measured with more lanes than the host can actually run in
  // parallel records an oversubscription plateau, not a scaling curve —
  // refuse to emit it unless the caller insists (--force stamps the artifact
  // with a note so a reader is never misled).
  const std::size_t max_lanes = lane_counts.back();
  if (max_lanes > host_cpus() && !force) {
    std::cout << "\nNOT writing " << json_path << ": benched " << max_lanes
              << " lanes on " << host_cpus()
              << " usable cpus — scaling numbers would be meaningless."
              << " Pass --force to write anyway.\n";
    return gate_status;
  }
  std::string note;
  if (max_lanes > host_cpus()) {
    note = "forced: benched " + std::to_string(max_lanes) + " lanes on " +
           std::to_string(host_cpus()) +
           " usable cpus; scaling numbers reflect oversubscription";
  }

  if (!write_json(json_path, w, horizon, results, note)) {
    std::cerr << "\nERROR: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (trace_path) {
    if (!write_trace_artifact(w, *trace_path)) {
      std::cerr << "ERROR: could not write trace " << *trace_path << "\n";
      return 1;
    }
    std::cout << "wrote " << *trace_path << "\n";
  }
  return gate_status;
}
