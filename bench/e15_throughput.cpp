// E15: batched-admission throughput — requests/sec of the parallel
// BatchAdmissionController at 1/2/4/8 planning lanes against the sequential
// RotaAdmissionController on the same heavy FCFS workload, with
// decision-for-decision parity asserted inline. Writes the first entry of
// the bench trajectory: BENCH_admission_throughput.json (pass a path as
// argv[1] to redirect).
//
// Pass --trace-out=PATH (or set ROTA_TRACE=PATH) to additionally run one
// traced batch(8) pass AFTER the timed trials and write a Chrome-trace JSON
// artifact (spans plus a metrics dump) to PATH — load it in Perfetto or
// chrome://tracing. The timed trials always run untraced so the numbers in
// the bench JSON are never polluted by the observability layer.
//
// The workload is an over-subscribed open system: 8 locations (8 cpu types +
// 56 directed links), constant base supply fragmented by ~2k churned peer
// terms with bounded lifetimes, and ~5k deadline-constrained computations
// arriving at ~1/tick — far beyond capacity, so admission decisions are
// dominated by rejections, the regime the optimistic pipeline is built for.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rota/admission/controller.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/obs/obs.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct Measurement {
  std::string controller;
  std::size_t threads = 1;
  std::size_t requests = 0;
  std::size_t accepted = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
};

struct Workload {
  ResourceSet supply;
  std::vector<BatchRequest> requests;
};

Workload make_workload() {
  WorkloadConfig config;
  config.seed = 2026;
  config.num_locations = 8;
  config.mean_interarrival = 0.15;
  config.laxity = 1.03;
  config.cpu_rate = 2;
  config.network_rate = 2;
  CostModel phi;
  WorkloadGenerator gen(config, phi);

  const Tick horizon = 6000;
  Workload w;
  w.supply = gen.base_supply(TimeInterval(0, horizon));
  // Fragment the availability profiles the way a churny open system does:
  // every peer term has its own lifetime, so the residual the controllers
  // plan against carries hundreds of segments per located type.
  const ChurnTrace churn = gen.make_churn(horizon, 8.0, 8.0, 1);
  for (const auto& e : churn.events()) {
    w.supply.add(e.term);
  }
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    w.requests.push_back(
        BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  return w;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t accept_count(const std::vector<AdmissionDecision>& decisions) {
  std::size_t n = 0;
  for (const auto& d : decisions) n += d.accepted ? 1 : 0;
  return n;
}

void check_parity(const std::vector<AdmissionDecision>& expected,
                  const std::vector<AdmissionDecision>& actual,
                  std::size_t threads) {
  if (expected.size() != actual.size()) {
    std::cerr << "FATAL: decision count mismatch at " << threads << " threads\n";
    std::exit(1);
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].accepted != actual[i].accepted ||
        expected[i].plan != actual[i].plan) {
      std::cerr << "FATAL: decision divergence at request " << i << " with "
                << threads << " threads\n";
      std::exit(1);
    }
  }
}

constexpr int kTrials = 3;

Measurement bench_sequential(const Workload& w,
                             std::vector<AdmissionDecision>& decisions_out) {
  Measurement m;
  m.controller = "sequential";
  m.threads = 1;
  m.requests = w.requests.size();
  double best = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    CostModel phi;
    RotaAdmissionController ctl(phi, w.supply);
    std::vector<AdmissionDecision> decisions;
    decisions.reserve(w.requests.size());
    const double t0 = now_seconds();
    for (const auto& r : w.requests) decisions.push_back(ctl.request(r.rho, r.at));
    best = std::min(best, now_seconds() - t0);
    decisions_out = std::move(decisions);
  }
  m.seconds = best;
  m.accepted = accept_count(decisions_out);
  m.requests_per_sec = static_cast<double>(m.requests) / best;
  return m;
}

Measurement bench_batch(const Workload& w, std::size_t threads,
                        const std::vector<AdmissionDecision>& expected) {
  Measurement m;
  m.controller = "batch";
  m.threads = threads;
  m.requests = w.requests.size();
  double best = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    CostModel phi;
    BatchAdmissionController ctl(phi, w.supply, PlanningPolicy::kAsap, threads);
    const double t0 = now_seconds();
    const auto decisions = ctl.admit_batch(w.requests);
    best = std::min(best, now_seconds() - t0);
    if (trial == 0) {
      check_parity(expected, decisions, threads);
      m.accepted = accept_count(decisions);
    }
  }
  m.seconds = best;
  m.requests_per_sec = static_cast<double>(m.requests) / best;
  return m;
}

bool write_json(const std::string& path, const Workload& w,
                const std::vector<Measurement>& results) {
  double sequential_rps = 0.0;
  double batch8_rps = 0.0;
  for (const auto& m : results) {
    if (m.controller == "sequential") sequential_rps = m.requests_per_sec;
    if (m.controller == "batch" && m.threads == 8) batch8_rps = m.requests_per_sec;
  }
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"e15_throughput\",\n"
      << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"workload\": {\n"
      << "    \"seed\": 2026,\n"
      << "    \"locations\": 8,\n"
      << "    \"horizon_ticks\": 6000,\n"
      << "    \"requests\": " << w.requests.size() << ",\n"
      << "    \"supply_terms\": " << w.supply.term_count() << "\n"
      << "  },\n"
      << "  \"parity\": \"batch decisions verified identical to sequential FCFS\",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    out << "    {\"controller\": \"" << m.controller << "\", \"threads\": " << m.threads
        << ", \"requests\": " << m.requests << ", \"accepted\": " << m.accepted
        << ", \"seconds\": " << m.seconds
        << ", \"requests_per_sec\": " << static_cast<long long>(m.requests_per_sec)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_batch8_vs_sequential\": "
      << (sequential_rps > 0 ? batch8_rps / sequential_rps : 0.0) << "\n"
      << "}\n";
  return out.good();
}

/// One instrumented batch(8) pass with metrics + tracing on, written as a
/// Chrome-trace JSON artifact. Runs after (and apart from) the timed trials.
bool write_trace_artifact(const Workload& w, const std::string& path) {
  obs::MetricsRegistry::global().reset();
  obs::enable_metrics(true);
  obs::TraceRecorder recorder;
  recorder.install();
  {
    CostModel phi;
    BatchAdmissionController ctl(phi, w.supply, PlanningPolicy::kAsap, 8);
    (void)ctl.admit_batch(w.requests);
  }
  recorder.uninstall();
  obs::enable_metrics(false);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::cout << "\ntraced batch(8) pass: " << recorder.event_count()
            << " trace events\n"
            << "  accepted=" << snap.counter("plan.commit.accepted")
            << " rejected.deadline=" << snap.counter("plan.commit.rejected.deadline_passed")
            << " rejected.no_plan=" << snap.counter("plan.commit.rejected.no_plan")
            << " rejected.conflict=" << snap.counter("plan.commit.rejected.conflict")
            << " stale=" << snap.counter("plan.commit.stale")
            << "\n  rounds=" << snap.counter("batch.rounds")
            << " speculations=" << snap.counter("plan.speculate.count")
            << " wasted=" << snap.counter("batch.speculations_wasted") << "\n";
  return recorder.write_chrome_json(path, &snap);
}

/// Reads "speedup_batch8_vs_sequential" out of a stored bench JSON; nullopt
/// when the file or the key is missing.
std::optional<double> read_baseline_speedup(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  const std::string key = "\"speedup_batch8_vs_sequential\": ";
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find(key);
    if (pos == std::string::npos) continue;
    try {
      return std::stod(line.substr(pos + key.size()));
    } catch (...) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// The regression gate behind --check-baseline: the stored trajectory says
/// 8-lane admission clears kMinSpeedup on a wide host, so a run on such a
/// host that cannot reach it is a pipeline regression, not noise. Hosts with
/// fewer cores than lanes cannot reproduce the parallelism and are skipped
/// (the parity checks above still ran).
int check_baseline(const std::string& baseline_path, double measured_speedup) {
  constexpr double kMinSpeedup = 2.5;
  const std::optional<double> baseline = read_baseline_speedup(baseline_path);
  if (!baseline) {
    std::cerr << "baseline gate: no stored speedup in " << baseline_path
              << " — skipping\n";
    return 0;
  }
  std::cout << "baseline gate: stored speedup " << *baseline << ", measured "
            << measured_speedup << ", floor " << kMinSpeedup << "\n";
  if (std::thread::hardware_concurrency() < 8) {
    std::cout << "baseline gate: host has "
              << std::thread::hardware_concurrency()
              << " cpus (< 8 lanes) — gate skipped\n";
    return 0;
  }
  if (*baseline >= kMinSpeedup && measured_speedup < kMinSpeedup) {
    std::cerr << "FATAL: 8-lane speedup " << measured_speedup
              << " fell below the " << kMinSpeedup
              << "x floor recorded by the stored baseline (" << *baseline
              << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E15: batched admission throughput ==\n\n";
  std::string json_path = "BENCH_admission_throughput.json";
  std::optional<std::string> baseline_path;
  std::optional<std::string> trace_path = obs::trace_path_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--check-baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--check-baseline=").size());
    } else if (arg == "--check-baseline") {
      baseline_path = json_path;
    } else {
      json_path = arg;
    }
  }

  const Workload w = make_workload();
  std::cout << "workload: " << w.requests.size() << " requests, "
            << w.supply.term_count() << " supply terms\n\n";

  std::vector<Measurement> results;
  std::vector<AdmissionDecision> expected;
  results.push_back(bench_sequential(w, expected));
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    results.push_back(bench_batch(w, threads, expected));
  }

  const double base = results.front().requests_per_sec;
  std::cout << "controller   threads   accepted   seconds   req/sec   speedup\n";
  for (const auto& m : results) {
    std::printf("%-12s %7zu %10zu %9.3f %9.0f %8.2fx\n", m.controller.c_str(),
                m.threads, m.accepted, m.seconds, m.requests_per_sec,
                m.requests_per_sec / base);
  }

  // The gate reads the *stored* baseline before write_json refreshes it.
  int gate_status = 0;
  if (baseline_path) {
    const double measured = results.back().requests_per_sec / base;
    gate_status = check_baseline(*baseline_path, measured);
  }

  if (!write_json(json_path, w, results)) {
    std::cerr << "\nERROR: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (trace_path) {
    if (!write_trace_artifact(w, *trace_path)) {
      std::cerr << "ERROR: could not write trace " << *trace_path << "\n";
      return 1;
    }
    std::cout << "wrote " << *trace_path << "\n";
  }
  return gate_status;
}
