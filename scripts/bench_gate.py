#!/usr/bin/env python3
"""Diff two bench JSON artifacts and gate regressions.

Usage:
    scripts/bench_gate.py BASELINE.json CANDIDATE.json [--max-regression 0.10]

The gate dispatches on the artifacts' "bench" field.

e15_throughput — fails (exit 1) when:
  * the candidate lost decision parity (the artifact's parity attestation is
    missing — e15 refuses to write one when batch decisions diverge from
    sequential FCFS, so its absence means the bench died or was tampered with);
  * the candidate's max-lane batch throughput regressed more than
    --max-regression (default 10%) against the baseline's *on a comparable
    host* — a narrow host cannot reproduce a wide host's scaling curve, so
    throughput is only compared when the candidate ran with at least as many
    usable cpus as benched lanes, or both artifacts ran equally
    oversubscribed.

  Scaling-efficiency comparison is additionally skipped — with the reason
  printed — when either artifact ran on a single usable cpu or carries a
  "forced"/oversubscription note: such a run measured scheduler contention,
  not the batch pipeline.

e20_federation — fails (exit 1) when the candidate forwarded nothing, any
  forward was not peer-accepted, the peer's claim count disagrees with the
  accepted forwards, the peer rejected part of its own local split, or any
  revalidation failed. Forward round-trip latencies are printed for trend
  reading but never gated (two pump cadences plus a socket: host noise).

e19_service — fails (exit 1) when the candidate's light phase was not served
  ≥ 99% by the exact strategy with zero sheds, the flash phase failed to
  demote or shed, the queue depth exceeded its bound, the served-request p99
  exceeded the SLO, the governor never promoted back in the calm tail, or any
  revalidation failed (a degraded accept the live residual refused). All
  checks are candidate self-consistency; wall-clock latencies are printed for
  trend reading but never compared across hosts.

e21_faults — fails (exit 1) when the candidate carries no determinism
  attestation, sweeps fewer than 3 fault intensities with retry clients
  enabled, breaks message accounting in any cell (sent must equal delivered
  + dropped + in-flight), records decisions that are neither originals nor
  minted retries, loses placements in a fault-free cell, resubmits in a
  retry-disabled cell, or never actually storms in the hostile retry cell.
  Hit rates are printed against the baseline for trend reading but never
  gated: fault schedules are seeded, not comparable across profile changes.

e18_feasibility — fails (exit 1) when:
  * the candidate's differential parity section records any divergence, or
    ran fewer cases than the smoke floor (100);
  * any scaling row's symbolic verdict is not "feasible" (the drip/hog
    family is feasible at every size and must be flat-decided), or a row
    above the sweep ceiling was not decided-by-symbolic-while-refused-by-
    sweep — the capability the bench exists to pin.
  (Wall-clock numbers are recorded for trend reading but never gated: the
  symbolic side is a single flow check whose absolute time is host noise.)

When both artifacts carry a same-run sequential result, the gate compares
speedups (batch@max divided by that run's own sequential throughput) instead
of raw req/s: each run's sequential lane is measured under the same host
load as its batch lanes, so the ratio cancels host-speed drift between
recording days while still catching regressions in the batch pipeline
itself. Raw throughput is gated only when a sequential result is missing.

Prints a per-lane comparison table either way.

A baseline recorded by an older bench version may lack keys the gate reads
(artifacts grow fields). A missing baseline key is reported and the baseline
is treated as absent — the candidate's self-consistency checks still run,
only the cross-run comparisons are skipped. A missing *candidate* key is a
real failure: the candidate must carry everything its own gate checks.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")


def batch_results(doc):
    return {r["threads"]: r for r in doc.get("results", [])
            if r.get("controller") == "batch"}


def sequential_rps(doc):
    for r in doc.get("results", []):
        if r.get("controller") == "sequential":
            return float(r["requests_per_sec"])
    return None


def max_lane_rps(doc, role):
    batches = batch_results(doc)
    if not batches:
        if role == "candidate":
            sys.exit("bench_gate: candidate artifact has no batch results")
        return None, None  # empty/older baseline: comparisons are skipped
    lanes = max(batches)
    return lanes, float(batches[lanes]["requests_per_sec"])


def gate_e18(base, cand):
    failures = []

    parity = cand.get("parity", {})
    cases = int(parity.get("cases", 0))
    divergences = int(parity.get("divergences", -1))
    print(f"parity: {cases} cases, {parity.get('checks', '?')} checks, "
          f"{divergences} divergence(s) "
          f"(baseline ran {base.get('parity', {}).get('cases', '?')})")
    if divergences != 0:
        failures.append(f"candidate records {divergences} engine divergence(s)")
    if cases < 100:
        failures.append(f"candidate ran only {cases} parity cases (< 100 floor)")

    ceiling = int(cand.get("sweep_ceiling", 0))
    rows = cand.get("scaling", [])
    if not rows:
        failures.append("candidate has no scaling section")
    above_ceiling = 0
    print(f"\n{'commitments':>12} {'symbolic':>10} {'sweep':>10} "
          f"{'permutations':>13}")
    for r in rows:
        n = int(r.get("commitments", 0))
        verdict = r.get("symbolic_verdict", "?")
        sweep = r.get("explorer", "?")
        print(f"{n:>12} {verdict:>10} {sweep:>10} "
              f"{int(r.get('explorer_permutations', 0)):>13}")
        if verdict != "feasible":
            failures.append(f"scaling row n={n}: symbolic verdict '{verdict}'")
        if n > ceiling:
            above_ceiling += 1
            if sweep != "refused":
                failures.append(
                    f"scaling row n={n}: sweep '{sweep}' above ceiling {ceiling}")
    if rows and above_ceiling == 0:
        failures.append(
            f"no scaling row exceeds the sweep ceiling ({ceiling}) — the "
            "decided-above-ceiling capability went unchecked")
    return failures


def gate_e19(base, cand):
    failures = []

    def phase(doc, name):
        return doc.get(name, {}) or {}

    print(f"{'phase':>6} {'requests':>9} {'accepted':>9} {'shed':>6} "
          f"{'exact':>6} {'digest':>7} {'greedy':>7} {'p99_ms':>8}")
    for name in ("light", "flash", "calm"):
        c = phase(cand, name)
        b = phase(base, name)
        p99 = float(c.get("p99_planning_ns", 0)) / 1e6
        b_p99 = float(b.get("p99_planning_ns", 0)) / 1e6
        note = f"  (baseline {b_p99:.2f}ms)" if b else ""
        print(f"{name:>6} {int(c.get('requests', 0)):>9} "
              f"{int(c.get('accepted', 0)):>9} {int(c.get('shed', 0)):>6} "
              f"{int(c.get('by_exact', 0)):>6} {int(c.get('by_digest', 0)):>7} "
              f"{int(c.get('by_greedy', 0)):>7} {p99:>8.2f}{note}")

    # Candidate self-consistency — the acceptance criteria the bench also
    # enforces in-process; re-checked here so a tampered or truncated
    # artifact cannot pass.
    light, flash, calm = (phase(cand, n) for n in ("light", "flash", "calm"))
    slo_ns = int(cand["slo_ns"])
    capacity = int(cand["queue_capacity"])
    exact_fraction = float(cand["light_exact_fraction"])
    if exact_fraction < 0.99:
        failures.append(
            f"light phase: exact strategy served only {exact_fraction:.1%} "
            "(>= 99% required)")
    if int(light.get("shed", -1)) != 0:
        failures.append("light phase shed requests under a trickle load")
    if int(flash.get("demotions", 0)) < 1:
        failures.append("flash crowd did not demote the governor")
    if int(flash.get("shed", 0)) < 1:
        failures.append("flash crowd was not shed (queue bound ineffective)")
    if int(flash.get("max_queue_depth", capacity + 1)) > capacity:
        failures.append(
            f"queue depth {flash.get('max_queue_depth')} exceeded the "
            f"{capacity} bound")
    if int(flash.get("p99_planning_ns", slo_ns + 1)) > slo_ns:
        failures.append(
            f"served-request p99 {flash.get('p99_planning_ns')}ns exceeded "
            f"the {slo_ns}ns SLO")
    if int(calm.get("promotions", 0)) < 1:
        failures.append("governor never promoted back after pressure cleared")
    if int(cand["revalidations_failed"]) != 0:
        failures.append(
            f"{cand['revalidations_failed']} degraded accept(s) were refused "
            "by the live residual — the anytime safety invariant broke")
    return failures


def scaling_unreliable(doc, role):
    """Why this artifact's scaling numbers cannot gate anything, or None.

    A single-cpu host serializes every lane, and a run whose own note admits
    it was forced/oversubscribed measured scheduler contention, not the batch
    pipeline. Parity and self-consistency still hold on such hosts — only the
    scaling-efficiency comparison is meaningless.
    """
    if int(doc.get("host_cpus", 0) or 0) == 1:
        return f"{role} ran on a single usable cpu"
    note = str(doc.get("note", ""))
    if "forced" in note or "oversubscri" in note:
        return f"{role} is marked oversubscribed ({note!r})"
    return None


def gate_e20(base, cand):
    failures = []

    fwd = int(cand["forwarded"])
    accepts = int(cand["forward_accepts"])
    rejects = int(cand["forward_rejects"])
    claims = int(cand["peer_claims"])
    local = int(cand.get("local_accepted", 0))
    local_req = int(cand.get("local_requests", 0))
    reval = int(cand["revalidations_failed"])

    b_p99 = base.get("forward_p99_ms")
    note = f"  (baseline {float(b_p99):.2f}ms)" if b_p99 is not None else ""
    print(f"forwarded {fwd}, peer-accepted {accepts}, rejected {rejects}, "
          f"peer claims {claims}")
    print(f"local at peer: {local}/{local_req} accepted")
    print(f"forward p50 {float(cand.get('forward_p50_ms', 0)):.2f}ms  "
          f"p99 {float(cand.get('forward_p99_ms', 0)):.2f}ms{note}")
    print("latency printed for trend reading only — a forward crosses two "
          "pump cadences and a socket, all host noise")

    if fwd == 0:
        failures.append("candidate forwarded nothing — federation never ran")
    if accepts != fwd or rejects != 0:
        failures.append(
            f"forward accounting: {accepts}/{fwd} accepted, {rejects} rejected "
            "(the supply-less node stranded feasible work)")
    if claims != accepts:
        failures.append(
            f"peer committed {claims} claims for {accepts} accepted forwards")
    if local != local_req:
        failures.append(
            f"peer accepted only {local}/{local_req} of its own local split")
    if reval != 0:
        failures.append(
            f"{reval} peer claim(s) were refused by the live residual — the "
            "claim-time re-validation invariant broke")
    return failures


def gate_e21(base, cand):
    failures = []

    cells = cand.get("cells", [])
    if not cells:
        failures.append("candidate has no fault-sweep cells")
    base_cells = {(c.get("intensity"), bool(c.get("retries"))): c
                  for c in base.get("cells", [])}

    retry_intensities = set()
    print(f"{'intensity':>10} {'retries':>8} {'faults':>7} {'jobs':>6} "
          f"{'resubmit':>9} {'lost':>5} {'hit':>7} {'root_hit':>9}")
    for c in cells:
        name = c.get("intensity", "?")
        retries = bool(c.get("retries"))
        b = base_cells.get((name, retries))
        note = (f"  (baseline root_hit {float(b['root_hit_rate']):.3f})"
                if b and "root_hit_rate" in b else "")
        print(f"{name:>10} {str(retries).lower():>8} "
              f"{int(c.get('fault_events', 0)):>7} {int(c.get('jobs', 0)):>6} "
              f"{int(c.get('resubmissions', 0)):>9} {int(c.get('lost', 0)):>5} "
              f"{float(c.get('deadline_hit_rate', 0)):>7.3f} "
              f"{float(c.get('root_hit_rate', 0)):>9.3f}{note}")

        sent = int(c["messages_sent"])
        balance = (int(c["messages_delivered"]) + int(c["messages_dropped"]) +
                   int(c["messages_in_flight"]))
        if sent != balance:
            failures.append(
                f"cell {name}/retries={retries}: message accounting broke "
                f"(sent {sent} != delivered+dropped+in-flight {balance})")
        if int(c["submitted"]) != int(c["jobs"]) + int(c["resubmissions"]):
            failures.append(
                f"cell {name}/retries={retries}: {c['submitted']} decisions "
                f"for {c['jobs']} jobs + {c['resubmissions']} retries")
        if not retries and int(c["resubmissions"]) != 0:
            failures.append(
                f"cell {name}: retries disabled but "
                f"{c['resubmissions']} resubmissions minted")
        if int(c.get("fault_events", 0)) == 0 and int(c["lost"]) != 0:
            failures.append(
                f"cell {name}: fault-free but {c['lost']} placements lost")
        if retries:
            retry_intensities.add(name)

    if len(retry_intensities) < 3:
        failures.append(
            f"only {len(retry_intensities)} fault intensities ran with retry "
            "clients enabled (>= 3 required)")

    flagship = cand.get("flagship", {})
    if "identical" not in str(flagship.get("determinism", "")):
        failures.append("candidate carries no determinism attestation")
    if int(flagship.get("resubmissions", 0)) == 0:
        failures.append("the hostile retry cell never stormed")
    print("hit rates printed for trend reading only — fault schedules are "
          "seeded per profile, not comparable across profile changes")
    return failures


def gate_e15(base, cand, max_regression):
    failures = []

    # Parity: e15 only writes the attestation after every lane count produced
    # decisions identical to the sequential controller.
    if "parity" not in cand or "identical" not in str(cand["parity"]):
        failures.append("candidate artifact carries no parity attestation")

    base_lanes, base_rps = max_lane_rps(base, "baseline")
    cand_lanes, cand_rps = max_lane_rps(cand, "candidate")
    if base_lanes is None:
        print("baseline : no batch results — throughput comparison skipped")
        print(f"candidate: host_cpus={cand.get('host_cpus', '?')}, "
              f"batch@{cand_lanes} = {cand_rps:.0f} req/s")
        return failures

    print(f"baseline : host_cpus={base.get('host_cpus', '?')}, "
          f"batch@{base_lanes} = {base_rps:.0f} req/s")
    print(f"candidate: host_cpus={cand.get('host_cpus', '?')}, "
          f"batch@{cand_lanes} = {cand_rps:.0f} req/s")

    print(f"\n{'threads':>8} {'baseline':>12} {'candidate':>12} {'delta':>8}")
    cand_batches = batch_results(cand)
    for lanes, r in sorted(batch_results(base).items()):
        c = cand_batches.get(lanes)
        if c is None:
            print(f"{lanes:>8} {r['requests_per_sec']:>12.0f} {'—':>12} {'—':>8}")
            continue
        b_rps = float(r["requests_per_sec"])
        c_rps = float(c["requests_per_sec"])
        delta = (c_rps - b_rps) / b_rps if b_rps > 0 else 0.0
        print(f"{lanes:>8} {b_rps:>12.0f} {c_rps:>12.0f} {delta:>+7.1%}")

    # Scaling efficiency is only gated when both runs could actually scale:
    # a 1-cpu or self-declared oversubscribed artifact is reported and
    # skipped, never compared.
    unreliable = scaling_unreliable(cand, "candidate") or \
                 scaling_unreliable(base, "baseline")
    if unreliable:
        print(f"\nscaling-efficiency gate skipped: {unreliable}")
        return failures

    # Throughput comparison only when the hosts are comparable: candidate ran
    # unoversubscribed, or both artifacts were equally oversubscribed.
    cand_cpus = int(cand.get("host_cpus", 0) or 0)
    base_cpus = int(base.get("host_cpus", 0) or 0)
    comparable = (cand_cpus >= cand_lanes and base_cpus >= base_lanes) or \
                 (cand_cpus == base_cpus and cand_lanes == base_lanes)
    if not comparable:
        print(f"\nthroughput gate skipped: hosts not comparable "
              f"(baseline {base_cpus} cpus / {base_lanes} lanes, "
              f"candidate {cand_cpus} cpus / {cand_lanes} lanes)")
    elif cand_lanes != base_lanes:
        print(f"\nthroughput gate skipped: lane counts differ "
              f"({base_lanes} vs {cand_lanes})")
    else:
        base_seq = sequential_rps(base)
        cand_seq = sequential_rps(cand)
        if base_seq and cand_seq:
            # Speedup vs the same run's sequential lane: immune to the host
            # being faster or slower than it was on the baseline's day.
            base_val = base_rps / base_seq
            cand_val = cand_rps / cand_seq
            metric = (f"batch@{cand_lanes} speedup over sequential "
                      f"({base_val:.2f}x -> {cand_val:.2f}x)")
        else:
            base_val, cand_val = base_rps, cand_rps
            metric = (f"batch@{cand_lanes} throughput "
                      f"({base_val:.0f} -> {cand_val:.0f} req/s)")
        drop = (base_val - cand_val) / base_val if base_val > 0 else 0.0
        if drop > max_regression:
            failures.append(
                f"{metric} regressed {drop:.1%} "
                f"(> {max_regression:.0%} allowed)")
        else:
            print(f"\nthroughput gate: {metric} within "
                  f"{max_regression:.0%} ({-drop:+.1%})")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="allowed fractional throughput drop (default 0.10)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    kind = cand.get("bench", "e15_throughput")
    if base.get("bench", "e15_throughput") != kind:
        sys.exit(f"bench_gate: artifact kinds differ "
                 f"({base.get('bench')} vs {kind})")
    print(f"baseline : {args.baseline}\ncandidate: {args.candidate} "
          f"({kind})\n")

    def run_gate(base_doc):
        if kind == "e18_feasibility":
            return gate_e18(base_doc, cand)
        if kind == "e19_service":
            return gate_e19(base_doc, cand)
        if kind == "e20_federation":
            return gate_e20(base_doc, cand)
        if kind == "e21_faults":
            return gate_e21(base_doc, cand)
        return gate_e15(base_doc, cand, args.max_regression)

    try:
        failures = run_gate(base)
    except KeyError as e:
        # The baseline predates a key this gate reads (artifacts grow
        # fields). Degrade gracefully: report it, drop the baseline, and
        # still hold the candidate to its self-consistency checks. If the
        # *candidate* is the one missing the key, the retry below fails the
        # same way — and that is a hard error, not a skip.
        print(f"\nbaseline is missing key {e} — treating as no baseline "
              "(cross-run comparisons skipped)\n")
        try:
            failures = run_gate({"bench": kind})
        except KeyError as e2:
            sys.exit(f"bench_gate: candidate artifact is missing key {e2}")

    if failures:
        for f in failures:
            print(f"\nFAIL: {f}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
