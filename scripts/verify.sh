#!/usr/bin/env bash
# Repo verification, exactly the two tiers ROADMAP.md names:
#
#   tier-1             full build + full ctest in build/
#   concurrency pass   -DROTA_SANITIZE=thread build in build-tsan/ + ctest -L tsan
#
# Usage: scripts/verify.sh [tier1|tsan|all]     (default: all)
#
# Optional perf gate (not part of tier-1; needs an >= 8-cpu host to be
# meaningful): ROTA_VERIFY_BENCH=1 scripts/verify.sh additionally runs
# bench/e15_throughput with --check-baseline against the stored
# BENCH_admission_throughput.json and fails on an 8-lane speedup regression.
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

tier1() {
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}"
}

tsan() {
  echo "== concurrency pass: thread-sanitized tsan-labeled suite =="
  cmake -B build-tsan -S . -DROTA_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${jobs}"
  ctest --test-dir build-tsan -L tsan --output-on-failure -j "${jobs}"
}

bench_gate() {
  echo "== perf gate: e15 8-lane speedup vs stored baseline =="
  ./build/bench/e15_throughput /tmp/e15_latest.json --force \
      --check-baseline=BENCH_admission_throughput.json
  echo "== perf gate: artifact diff (parity + <=10% throughput drop) =="
  scripts/bench_gate.py BENCH_admission_throughput.json /tmp/e15_latest.json
}

case "${mode}" in
  tier1) tier1 ;;
  tsan) tsan ;;
  all) tier1; tsan ;;
  *) echo "usage: $0 [tier1|tsan|all]" >&2; exit 2 ;;
esac

if [[ "${ROTA_VERIFY_BENCH:-0}" == "1" && "${mode}" != "tsan" ]]; then
  bench_gate
fi

echo "verify: OK (${mode})"
