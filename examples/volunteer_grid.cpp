// Volunteer computing on an open network: peers donate resources for bounded
// intervals (the paper's resource acquisition rule — departure time declared
// at join), and the admission controller reasons about *future* availability,
// admitting work onto capacity that would otherwise expire unused.
//
// Build & run:  ./build/examples/volunteer_grid
#include <iostream>

#include "rota/rota.hpp"

int main() {
  using namespace rota;

  const Tick horizon = 800;
  VolunteerScenario scenario = make_volunteer_network(/*seed=*/31, horizon);
  WorkloadGenerator& generator = scenario.generator;

  std::cout << "Volunteer grid: " << generator.locations().size()
            << " sites, thin base supply + " << scenario.churn.size()
            << " donated-resource joins over " << horizon << " ticks\n\n";

  // Two controllers on the same arrivals: one only trusts the base supply,
  // one also reasons about donations as they announce themselves.
  RotaAdmissionController base_only(generator.phi(), scenario.base_supply);
  RotaAdmissionController with_donations(generator.phi(), scenario.base_supply);

  Simulator sim(scenario.base_supply, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_churn(scenario.churn);

  const auto arrivals = generator.make_arrivals(horizon * 2 / 3);
  std::size_t next_join = 0;
  std::size_t base_accepted = 0, donation_accepted = 0;

  for (const Arrival& a : arrivals) {
    // Donations that have announced themselves by now become plannable.
    while (next_join < scenario.churn.size() &&
           scenario.churn.events()[next_join].at <= a.at) {
      ResourceSet joined;
      joined.add(scenario.churn.events()[next_join].term);
      with_donations.on_join(joined);
      ++next_join;
    }

    if (base_only.request(a.computation, a.at).accepted) ++base_accepted;

    AdmissionDecision d = with_donations.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++donation_accepted;
    sim.schedule_admission(
        a.at, make_concurrent_requirement(generator.phi(), a.computation),
        std::move(d.plan));
  }

  SimReport report = sim.run(horizon);

  std::cout << "arrivals:                      " << arrivals.size() << "\n";
  std::cout << "admitted on base supply only:  " << base_accepted << "\n";
  std::cout << "admitted with donations:       " << donation_accepted << "\n";
  std::cout << "deadline misses (donations):   " << report.missed() << "\n";
  std::cout << "\nReasoning about donated intervals "
            << (donation_accepted > base_accepted ? "unlocked extra work"
                                                  : "changed nothing")
            << " while keeping every admitted deadline"
            << (report.missed() == 0 ? " — zero misses.\n" : " at risk!\n");
  return report.missed() == 0 ? 0 : 1;
}
