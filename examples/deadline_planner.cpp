// Choosing between courses of action (the paper's §VI motivation): an agent
// with a deadline weighs executing locally on a busy node against migrating
// to a faster-but-remote one — or hopping out, computing, and returning.
// The MigrationAdvisor materializes every candidate behaviour, plans each
// against the supply, and ranks them: "allowing computations to avoid
// attempting infeasible pursuits."
//
// Build & run:  ./build/examples/deadline_planner
#include <iostream>

#include "rota/rota.hpp"
#include "rota/util/table.hpp"

int main() {
  using namespace rota;

  Location busy("busy-node"), fast("fast-node"), far("far-node");
  CostModel phi;

  // The busy node has little headroom; the fast node is idle but reaching it
  // costs network + serialization; the far node is fast too but its link is
  // a trickle.
  ResourceSet supply;
  supply.add(2, TimeInterval(0, 40), LocatedType::cpu(busy));
  supply.add(12, TimeInterval(0, 40), LocatedType::cpu(fast));
  supply.add(16, TimeInterval(0, 40), LocatedType::cpu(far));
  supply.add(4, TimeInterval(0, 40), LocatedType::network(busy, fast));
  supply.add(4, TimeInterval(0, 40), LocatedType::network(fast, busy));
  supply.add(1, TimeInterval(0, 40), LocatedType::network(busy, far));
  supply.add(1, TimeInterval(0, 40), LocatedType::network(far, busy));

  // Three chunks of work; the final one must deliver its result from the
  // agent's home node, which makes migrate-and-return interesting.
  WorkSpec spec;
  spec.actor = "agent";
  spec.home = busy;
  spec.chunk_weights = {2, 3, 1};
  spec.state_size = 2;
  spec.earliest_start = 0;
  spec.deadline = 14;

  MigrationAdvisor advisor(phi);
  std::cout << "Deadline: t=" << spec.deadline << "\n\n";

  util::Table table({"course of action", "feasible", "finish"});
  for (const PlacementOption& option : advisor.evaluate(supply, spec, {fast, far})) {
    std::string label = placement_kind_name(option.kind);
    if (option.kind != PlacementKind::kStay) label += " via " + option.site.name();
    table.add_row({label, option.feasible ? "yes" : "no",
                   option.feasible ? "t=" + std::to_string(option.finish) : "-"});
  }
  std::cout << table.to_string() << "\n";

  auto best = advisor.best(supply, spec, {fast, far});
  if (!best) {
    std::cout << "Decision: no course of action meets the deadline — decline.\n";
    return 1;
  }
  std::cout << "Decision: " << best->to_string() << "\n";
  std::cout << "Behaviour: " << best->computation.to_string() << "\n";

  // Feasibility frontier: the earliest workable deadline per course.
  std::cout << "\nFeasibility frontier (earliest workable deadline):\n";
  for (PlacementKind kind :
       {PlacementKind::kStay, PlacementKind::kMigrateOnce,
        PlacementKind::kMigrateAndReturn}) {
    WorkSpec probe = spec;
    Tick frontier = -1;
    for (Tick d = 2; d <= 40; ++d) {
      probe.deadline = d;
      ActorComputation gamma = advisor.materialize(probe, kind, fast);
      ComplexRequirement rho =
          make_complex_requirement(phi, gamma, TimeInterval(0, d));
      if (plan_actor(supply, rho, PlanningPolicy::kAsap)) {
        frontier = d;
        break;
      }
    }
    std::cout << "  " << placement_kind_name(kind) << " (via fast-node): d >= "
              << frontier << "\n";
  }
  return 0;
}
