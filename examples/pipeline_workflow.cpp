// Interacting actors (the paper's §VI extension): a three-stage analytics
// pipeline where each stage blocks on its predecessor's message. The DAG
// planner answers whether the whole exchange — including the waiting — can
// finish by the deadline, and shows the cost of the gates by comparing
// against the same work with interactions removed.
//
// Build & run:  ./build/examples/pipeline_workflow
#include <iostream>

#include "rota/rota.hpp"
#include "rota/util/table.hpp"

int main() {
  using namespace rota;

  Location ingest("ingest"), compute("compute"), report("report");
  CostModel phi;

  ResourceSet supply;
  supply.add(6, TimeInterval(0, 80), LocatedType::cpu(ingest));
  supply.add(10, TimeInterval(0, 80), LocatedType::cpu(compute));
  supply.add(4, TimeInterval(0, 80), LocatedType::cpu(report));
  supply.add(5, TimeInterval(0, 80), LocatedType::network(ingest, compute));
  supply.add(5, TimeInterval(0, 80), LocatedType::network(compute, report));
  supply.add(5, TimeInterval(0, 80), LocatedType::network(report, ingest));

  // Stage 1 parses and forwards; stage 2 crunches and forwards; stage 3
  // renders and acknowledges back to stage 1, which archives on the ack.
  SegmentedActorBuilder parser("parser", ingest);
  parser.evaluate(2).send(compute, 2);
  parser.await();           // blocks until the ack comes back
  parser.evaluate(1).ready();  // archive

  SegmentedActorBuilder cruncher("cruncher", compute);
  cruncher.evaluate(6).send(report, 2);

  SegmentedActorBuilder renderer("renderer", report);
  renderer.evaluate(3).send(ingest, 1);

  InteractingComputation pipeline(
      "pipeline",
      {std::move(parser).build(), std::move(cruncher).build(),
       std::move(renderer).build()},
      {
          {0, 0, 1, 0},  // cruncher starts on the parser's message
          {1, 0, 2, 0},  // renderer starts on the cruncher's message
          {2, 0, 0, 1},  // parser resumes on the renderer's ack
      },
      /*s=*/0, /*d=*/40);

  std::cout << "Pipeline: " << pipeline << "\n\n";

  auto plan = plan_interacting(supply, phi, pipeline);
  if (!plan) {
    std::cout << "Infeasible by the deadline.\n";
    return 1;
  }

  util::Table table({"segment", "start", "finish"});
  const DagRequirement dag = make_dag_requirement(phi, pipeline);
  for (std::size_t i = 0; i < plan->segments.size(); ++i) {
    table.add_row({dag.nodes[i].requirement.actor(),
                   std::to_string(plan->segments[i].start),
                   std::to_string(plan->segments[i].finish)});
  }
  std::cout << table.to_string() << "\nwhole pipeline finishes at t="
            << plan->finish << " (deadline " << pipeline.deadline() << ")\n";

  // How much do the message gates cost? Strip them and replan.
  InteractingComputation ungated("ungated", pipeline.actors(), {}, 0, 40);
  auto free_plan = plan_interacting(supply, phi, ungated);
  if (free_plan) {
    std::cout << "same work without the blocking messages: t="
              << free_plan->finish << " — the gates cost "
              << (plan->finish - free_plan->finish) << " ticks of latency.\n";
  }

  // Tightest achievable deadline (feasibility frontier).
  for (Tick d = 2; d <= 40; ++d) {
    InteractingComputation probe("probe", pipeline.actors(),
                                 pipeline.dependencies(), 0, d);
    if (plan_interacting(supply, phi, probe)) {
      std::cout << "earliest workable deadline: d=" << d << "\n";
      break;
    }
  }
  return 0;
}
