// rota_check: a command-line feasibility checker for scenario files.
//
//   ./build/examples/rota_check examples/scenarios/demo.rota
//   ./build/examples/rota_check demo.rota --check '<> satisfy(job1)'
//                                         --check '[] !satisfy(huge by 9)'
//
// Loads the scenario, prints the supply, and for each computation reports
// (a) its standalone feasibility (Theorem 3) and (b) the online admission
// verdict when computations arrive in file order and share the supply
// (Theorem 4). Each --check formula is model-checked (Figure 1 semantics)
// on the idle path over the scenario's supply. With no file argument, runs
// the built-in demo scenario.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "rota/rota.hpp"
#include "rota/util/table.hpp"

namespace {

constexpr const char* kBuiltinDemo = R"(# built-in demo: two nodes, three jobs
supply cpu l1 5 0 30
supply cpu l2 4 0 30
supply network l1 l2 4 0 30
supply network l2 l1 4 0 30

computation render 0 12
  actor render.a l1
    evaluate 3
    send l2 1
    ready
end

computation backup 0 20
  actor backup.a l2
    evaluate 2
    migrate l1 2
    evaluate 1
    ready
end

computation batch 4 14
  actor batch.a l1
    evaluate 4
    ready
end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace rota;

  std::string file;
  std::vector<std::string> checks;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      if (i + 1 >= argc) {
        std::cerr << "error: --check needs a formula\n";
        return 2;
      }
      checks.emplace_back(argv[++i]);
    } else {
      file = arg;
    }
  }

  Scenario scenario;
  try {
    if (!file.empty()) {
      scenario = load_scenario_file(file);
      std::cout << "Loaded " << file << "\n";
    } else {
      scenario = parse_scenario_string(kBuiltinDemo);
      std::cout << "No file given — using the built-in demo scenario.\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "\nSupply (" << scenario.supply.term_count() << " terms):\n";
  for (const ResourceTerm& term : scenario.supply.terms()) {
    std::cout << "  " << term << "\n";
  }

  CostModel phi;
  RotaAdmissionController controller(phi, scenario.supply);

  util::Table table({"computation", "window", "alone", "finish", "admitted (shared)"});
  for (const DistributedComputation& c : scenario.computations) {
    ConcurrentRequirement rho = make_concurrent_requirement(phi, c);

    std::string alone = "infeasible";
    std::string finish = "-";
    if (auto plan = plan_concurrent(scenario.supply, rho, PlanningPolicy::kAsap)) {
      alone = "feasible";
      finish = "t=" + std::to_string(plan->finish);
    }

    AdmissionDecision d = controller.request(c, c.earliest_start());
    table.add_row({c.name(), c.window().to_string(), alone, finish,
                   d.accepted ? "yes" : "no (" + d.reason + ")"});
  }
  std::cout << "\n" << table.to_string();

  std::cout << "\nAdmitted " << controller.ledger().admitted_count() << " of "
            << scenario.computations.size()
            << " computations without disturbing any earlier commitment.\n";

  if (!checks.empty()) {
    // Model-check each formula on the idle path over the raw supply (the
    // "nothing committed yet" evolution the paper's theorems start from).
    const Tick horizon = scenario.supply.horizon().value_or(1);
    ComputationPath idle(SystemState(scenario.supply, 0));
    for (Tick t = 0; t < horizon; ++t) idle.apply(TickStep{});
    ModelChecker checker(idle);

    std::cout << "\nFormula checks (Figure 1 semantics, idle path, t=0):\n";
    bool all_ok = true;
    for (const std::string& text : checks) {
      try {
        FormulaPtr psi = parse_formula(text, scenario, phi);
        const bool sat = checker.satisfies(psi, 0);
        std::cout << "  " << (sat ? "SAT  " : "UNSAT") << "  " << text << "\n";
      } catch (const FormulaParseError& e) {
        std::cout << "  ERROR  " << text << "  (" << e.what() << ")\n";
        all_ok = false;
      }
    }
    if (!all_ok) return 2;
  }
  return 0;
}
