// Cluster admission control: a stream of deadline-constrained jobs arrives
// at a small cluster; ROTA admission (Theorem 4) is compared against an
// optimistic controller on the same workload. Admitted jobs execute in a
// shared work-conserving EDF simulator — over-admission turns into missed
// deadlines, assurance turns into a clean record.
//
// Build & run:  ./build/examples/cluster_admission
#include <iostream>
#include <memory>

#include "rota/rota.hpp"
#include "rota/util/table.hpp"

int main() {
  using namespace rota;
  using util::Table;

  const Tick horizon = 600;
  WorkloadConfig config;
  config.seed = 2026;
  config.num_locations = 4;
  config.cpu_rate = 6;
  config.network_rate = 6;
  config.mean_interarrival = 2.5;  // an overloaded cluster (~1.7x capacity)
  config.laxity = 1.5;

  WorkloadGenerator generator(config, CostModel());
  const ResourceSet supply = generator.base_supply(TimeInterval(0, horizon));
  const auto arrivals = generator.make_arrivals(horizon / 2);

  std::cout << "Cluster: " << config.num_locations << " nodes, "
            << arrivals.size() << " job arrivals over " << horizon / 2
            << " ticks\n\n";

  Table table({"strategy", "execution", "admitted", "met", "missed", "miss-rate",
               "utilization"});

  auto evaluate = [&](AdmissionStrategy& strategy, ExecutionMode mode) {
    Simulator sim(supply, 0, mode, PriorityOrder::kEdf);
    for (const Arrival& a : arrivals) {
      AdmissionDecision d = strategy.request(a.computation, a.at);
      if (!d.accepted) continue;
      sim.schedule_admission(
          a.at, make_concurrent_requirement(generator.phi(), a.computation),
          std::move(d.plan));
    }
    SimReport report = sim.run(horizon);
    table.add_row({strategy.name(), execution_mode_name(mode),
                   std::to_string(report.admitted()), std::to_string(report.met()),
                   std::to_string(report.missed()), util::fixed(report.miss_rate(), 3),
                   util::fixed(report.utilization(), 3)});
  };

  RotaStrategy rota(generator.phi(), supply);
  evaluate(rota, ExecutionMode::kPlanFollowing);

  RotaStrategy rota_edf(generator.phi(), supply);
  evaluate(rota_edf, ExecutionMode::kWorkConserving);

  NaiveTotalQuantityStrategy naive(generator.phi(), supply);
  evaluate(naive, ExecutionMode::kWorkConserving);

  OptimisticStrategy optimistic(generator.phi(), supply);
  evaluate(optimistic, ExecutionMode::kWorkConserving);

  AlwaysAdmitStrategy always;
  evaluate(always, ExecutionMode::kWorkConserving);

  std::cout << table.to_string()
            << "\nROTA admits fewer jobs but every one of them meets its "
               "deadline;\nquantity-only and optimistic admission trade "
               "assurance for volume.\n";
  return 0;
}
