// Quickstart: the ROTA pipeline in one file.
//
//   1. describe resources over time and space (resource terms),
//   2. describe a computation by what it consumes (actor actions + Φ),
//   3. ask the logic whether the deadline can be assured (Theorems 1-4),
//   4. execute the admitted plan and watch it finish on time.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "rota/rota.hpp"

int main() {
  using namespace rota;

  // --- 1. Resources -------------------------------------------------------
  // Two machines. l1 offers 10 cpu-units/tick for 60 ticks; l2 offers 8;
  // the directed link between them carries 6 units/tick.
  Location l1("l1"), l2("l2");
  ResourceSet supply;
  supply.add(10, TimeInterval(0, 60), LocatedType::cpu(l1));
  supply.add(8, TimeInterval(0, 60), LocatedType::cpu(l2));
  supply.add(6, TimeInterval(0, 60), LocatedType::network(l1, l2));
  supply.add(6, TimeInterval(0, 60), LocatedType::network(l2, l1));

  std::cout << "Supply: " << supply << "\n\n";

  // --- 2. A computation, represented by its resource needs ----------------
  // An actor that crunches at l1, ships its state to l2, and finishes there.
  ActorComputation worker = ActorComputationBuilder("worker", l1)
                                .evaluate(5)   // heavy local computation
                                .migrate(l2)   // cpu@l1 + network + cpu@l2
                                .evaluate(2)   // finish up remotely
                                .ready()
                                .build();
  DistributedComputation job("analytics", {worker}, /*s=*/0, /*d=*/25);

  CostModel phi;  // the paper's example cost function
  ConcurrentRequirement rho = make_concurrent_requirement(phi, job);
  std::cout << "Requirement: " << rho << "\n";
  for (const auto& actor : rho.actors()) {
    std::cout << "  " << actor << "\n";
  }

  // --- 3. Reason about the deadline ---------------------------------------
  auto witness = theorem3_witness(supply, rho);
  if (!witness) {
    std::cout << "\nNo computation path meets the deadline — rejecting.\n";
    return 1;
  }
  std::cout << "\nTheorem 3 witness found: finishes at t="
            << witness->back().now() << " (deadline " << job.deadline() << ")\n";

  // Online admission (Theorem 4 as a service).
  RotaAdmissionController controller(phi, supply);
  AdmissionDecision decision = controller.request(job, /*now=*/0);
  std::cout << "Admission: " << (decision.accepted ? "ACCEPTED" : "rejected")
            << "\n";
  if (!decision.accepted) return 1;

  // The plan as a Gantt chart: when the computation uses what.
  std::cout << "\n" << render_gantt(*decision.plan);

  // Negotiation: what if the client had asked for a tighter deadline?
  if (auto earliest = earliest_feasible_deadline(supply, rho, job.deadline())) {
    std::cout << "\ntightest promisable deadline for this job: d=" << *earliest
              << "\n";
  }

  // --- 4. Execute the plan -------------------------------------------------
  Simulator sim(supply, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_admission(0, rho, decision.plan);
  SimReport report = sim.run(60);

  const ComputationOutcome& outcome = report.outcomes.front();
  std::cout << "Execution: finished at t=" << outcome.finished_at.value_or(-1)
            << ", deadline " << (outcome.met_deadline() ? "MET" : "MISSED") << "\n";
  return outcome.met_deadline() ? 0 : 1;
}
