// CyberOrgs in action (the paper's §VI-3): a provider organizes its cluster
// into per-tenant resource encapsulations. Each tenant runs Theorem-4
// admission over its own slice — feasibility questions never leave the
// encapsulation — and when a tenant departs, assimilation folds its unused
// supply and its live commitments back into the provider.
//
// Build & run:  ./build/examples/cyberorg_market
#include <iostream>

#include "rota/rota.hpp"
#include "rota/util/table.hpp"

int main() {
  using namespace rota;

  const Tick horizon = 400;
  WorkloadConfig config;
  config.seed = 77;
  config.num_locations = 4;
  config.cpu_rate = 8;
  config.network_rate = 8;
  config.mean_interarrival = 4.0;
  config.laxity = 2.0;
  config.actors_min = config.actors_max = 1;
  config.p_send = 0;     // keep tenant jobs node-local for clean routing
  config.p_migrate = 0;

  WorkloadGenerator gen(config, CostModel());
  CyberOrg provider("provider", gen.phi(),
                    gen.base_supply(TimeInterval(0, horizon)));

  // Two tenants lease one node each; the provider keeps the rest.
  auto lease = [&](const Location& node) {
    ResourceSet slice;
    slice.add(config.cpu_rate, TimeInterval(0, horizon), LocatedType::cpu(node));
    return slice;
  };
  const Location node1 = gen.locations()[0];
  const Location node2 = gen.locations()[1];
  provider.create_child("tenant-a", lease(node1));
  provider.create_child("tenant-b", lease(node2));
  std::cout << "Hierarchy: " << provider.to_string() << "\n\n";

  // Jobs route to the org that owns their home node; homeless jobs go to
  // the provider's retained pool.
  util::Table table({"org", "requests", "admitted"});
  std::size_t requests_a = 0, admitted_a = 0;
  std::size_t requests_b = 0, admitted_b = 0;
  std::size_t requests_p = 0, admitted_p = 0;
  for (const Arrival& a : gen.make_arrivals(horizon / 2)) {
    const Location home = a.computation.actors()[0].actions()[0].at;
    CyberOrg* org = &provider;
    std::size_t* req = &requests_p;
    std::size_t* adm = &admitted_p;
    if (home == node1) {
      org = provider.find("tenant-a");
      req = &requests_a;
      adm = &admitted_a;
    } else if (home == node2) {
      org = provider.find("tenant-b");
      req = &requests_b;
      adm = &admitted_b;
    }
    ++*req;
    if (org->request(a.computation, a.at).accepted) ++*adm;
  }
  table.add_row({"tenant-a", std::to_string(requests_a), std::to_string(admitted_a)});
  table.add_row({"tenant-b", std::to_string(requests_b), std::to_string(admitted_b)});
  table.add_row({"provider (retained)", std::to_string(requests_p),
                 std::to_string(admitted_p)});
  std::cout << table.to_string() << "\n";

  // Tenant B's lease ends: assimilation returns its unused supply AND adopts
  // its admitted commitments — nothing already promised is dropped.
  const std::size_t before = provider.ledger().admitted_count();
  provider.assimilate("tenant-b");
  std::cout << "After assimilating tenant-b: provider holds "
            << provider.ledger().admitted_count() << " commitments (was " << before
            << "), hierarchy: " << provider.to_string() << "\n";

  // The returned slice is immediately usable for new provider admissions.
  auto gamma = ActorComputationBuilder("reuse.a", node2).evaluate(2).build();
  DistributedComputation reuse("reuse", {gamma}, horizon / 2, horizon / 2 + 40);
  AdmissionDecision d = provider.request(reuse, horizon / 2);
  std::cout << "Provider reusing tenant-b's node: "
            << (d.accepted ? "ACCEPTED" : "rejected") << "\n";
  return d.accepted ? 0 : 1;
}
