// rota_served: the admission daemon.
//
// Wraps an AdmissionService (PlanningKernel + anytime strategy ladder + SLO
// governor + bounded admission queue) behind the framed socket protocol of
// rota/service/server.hpp. Pair it with rota_load for a closed-loop driver.
//
//   ./build/examples/rota_served --socket /tmp/rota.sock
//   ./build/examples/rota_served --tcp 7341 --lanes 4 --queue 128
//
// SIGINT/SIGTERM trigger the clean drain: stop accepting, half-close the
// sessions, answer everything already queued, join the lanes, exit. The exit
// code is non-zero if any revalidation failed (a degraded accept the live
// residual refused — must never happen).
//
// Set ROTA_TRACE=/path/trace.json to record a Chrome trace of the run
// (plan.speculate / plan.commit spans from the lanes; load it in
// chrome://tracing or Perfetto to watch the governor demote under load).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "rota/obs/obs.hpp"
#include "rota/service/federation.hpp"
#include "rota/service/server.hpp"
#include "rota/workload/generator.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --socket PATH    unix socket to listen on (default /tmp/rota_admission.sock)\n"
      << "  --tcp PORT       also listen on loopback TCP (0 = ephemeral)\n"
      << "  --lanes N        planning lanes (default 2)\n"
      << "  --queue N        admission queue capacity (default 64)\n"
      << "  --budget-us N    default planning budget per request (default 20000)\n"
      << "  --slo-ms N       governor p99 latency target (default 20)\n"
      << "  --locations N    supply topology size, must match the client (default 4)\n"
      << "  --horizon T      supply horizon in ticks (default 100000)\n"
      << "  --seed S         supply/workload seed, must match the client (default 2026)\n"
      << "federation (all daemons must share --locations/--seed):\n"
      << "  --node-id N      this daemon's cluster node id (required to federate)\n"
      << "  --peer-listen A  peer listener, unix:<path> or tcp:<port>\n"
      << "  --peer ID=ADDR   a peer daemon (repeatable), e.g. 1=unix:/tmp/rota-1.peer\n"
      << "  --site NAME      this daemon's location (default l1)\n"
      << "  --secret TOKEN   shared session secret for clients and peers\n"
      << "                   (default: ROTA_SERVICE_SECRET env, empty = open)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rota;
  using namespace rota::service;

  std::string socket_path = "/tmp/rota_admission.sock";
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  ServiceConfig config;
  std::size_t locations = 4;
  Tick horizon = 100'000;
  std::uint64_t seed = 2026;

  bool federate = false;
  FederationConfig fconfig;
  fconfig.site = "l1";
  std::string secret;
  if (const char* env = std::getenv("ROTA_SERVICE_SECRET")) secret = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = value();
    else if (arg == "--tcp") { tcp = true; tcp_port = static_cast<std::uint16_t>(std::stoul(value())); }
    else if (arg == "--lanes") config.lanes = std::stoul(value());
    else if (arg == "--queue") config.queue_capacity = std::stoul(value());
    else if (arg == "--budget-us") config.default_budget_us = std::stoull(value());
    else if (arg == "--slo-ms") config.governor.slo_ns = std::stoull(value()) * 1'000'000;
    else if (arg == "--locations") locations = std::stoul(value());
    else if (arg == "--horizon") horizon = static_cast<Tick>(std::stoll(value()));
    else if (arg == "--seed") seed = std::stoull(value());
    else if (arg == "--node-id") {
      federate = true;
      fconfig.transport.local = static_cast<cluster::NodeId>(std::stoul(value()));
    }
    else if (arg == "--peer-listen") { federate = true; fconfig.transport.listen = value(); }
    else if (arg == "--peer") {
      federate = true;
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--peer needs ID=ADDR, got " << spec << "\n";
        return usage(argv[0]);
      }
      fconfig.transport.peers[static_cast<cluster::NodeId>(
          std::stoul(spec.substr(0, eq)))] = spec.substr(eq + 1);
    }
    else if (arg == "--site") fconfig.site = value();
    else if (arg == "--secret") secret = value();
    else return usage(argv[0]);
  }

  // Supply: the workload generator's base topology, so a client built from
  // the same --locations/--seed names the same located types.
  WorkloadConfig wconfig;
  wconfig.seed = seed;
  wconfig.num_locations = locations;
  WorkloadGenerator gen(wconfig, CostModel{});
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, horizon)));

  const std::optional<std::string> trace_path = obs::trace_path_from_env();
  std::optional<obs::TraceRecorder> recorder;
  if (trace_path) {
    obs::enable_metrics(true);
    recorder.emplace();
    recorder->install();
  }

  AdmissionService service(ledger, gen.phi(), config);

  std::unique_ptr<FederatedService> federation;
  if (federate) {
    fconfig.transport.secret = secret;
    federation = std::make_unique<FederatedService>(service, fconfig);
  }

  ServerConfig sconfig;
  sconfig.unix_path = socket_path;
  sconfig.tcp = tcp;
  sconfig.tcp_port = tcp_port;
  sconfig.secret = secret;
  ServiceServer::SubmitFn submit;
  if (federation) {
    submit = [&federation](AdmitRequest request,
                           AdmissionService::ResponseFn done) {
      federation->submit(std::move(request), std::move(done));
    };
  }
  ServiceServer server(service, sconfig, std::move(submit));

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::cout << "rota_served: listening on " << socket_path;
  if (tcp) std::cout << " and tcp 127.0.0.1:" << server.tcp_port();
  std::cout << "  (lanes " << config.lanes << ", queue " << config.queue_capacity
            << ", budget " << config.default_budget_us << "us)";
  if (federation) {
    std::cout << "\nrota_served: federating as node "
              << fconfig.transport.local << " at " << fconfig.site;
    if (!fconfig.transport.listen.empty()) {
      std::cout << ", peers reach me at " << fconfig.transport.listen;
    }
    std::cout << ", " << fconfig.transport.peers.size() << " peer(s)";
  }
  std::cout << "\n" << std::flush;

  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "rota_served: signal " << g_signal.load()
            << " — draining...\n" << std::flush;
  // Federation first (pending forwards get final answers through the still-
  // writable sessions), then the server's clean drain of everything queued.
  if (federation) federation->stop();
  server.stop();  // clean drain: every queued request is answered

  const ServiceStats stats = service.stats();
  std::cout << "rota_served: served " << stats.requests << " requests ("
            << stats.accepted << " accepted, " << stats.rejected << " rejected, "
            << stats.shed() << " shed), demotions " << stats.demotions
            << ", promotions " << stats.promotions << ", max queue depth "
            << stats.max_queue_depth << "\n";
  if (federation) {
    const FederationStats fstats = federation->stats();
    std::cout << "rota_served: federation forwarded " << fstats.forwarded
              << " (" << fstats.forward_accepts << " peer-accepted, "
              << fstats.forward_rejects << " rejected), served "
              << fstats.peer_claims << " peer claims\n";
  }

  if (recorder) {
    const auto metrics = obs::MetricsRegistry::global().snapshot();
    recorder->uninstall();
    if (recorder->write_chrome_json(*trace_path, &metrics)) {
      std::cout << "rota_served: wrote trace to " << *trace_path << "\n";
    }
  }

  if (stats.revalidations_failed != 0) {
    std::cerr << "rota_served: FATAL — " << stats.revalidations_failed
              << " degraded accepts were refused by the live residual\n";
    return 1;
  }
  std::cout << "rota_served: clean drain complete\n";
  return 0;
}
