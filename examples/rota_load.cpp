// rota_load: a closed-loop load driver for the admission daemon.
//
//   ./build/examples/rota_load --socket /tmp/rota.sock --connections 4 --seconds 5
//
// Each connection runs its own closed loop: draw a computation from the
// workload generator (same --locations/--seed topology as the daemon, so the
// requirements name the daemon's supply), send, wait for the decision,
// repeat. Per-decision verdicts and client-observed round-trip latencies are
// aggregated across connections and printed at the end.
//
// Exit codes: 0 on a clean run (protocol intact; the daemon answering —
// including with kOverloaded sheds — is a *successful* load test), 1 on
// protocol errors or zero completed requests.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rota/service/client.hpp"
#include "rota/workload/generator.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [options]\n"
            << "  --socket PATH     daemon unix socket (default /tmp/rota_admission.sock)\n"
            << "  --tcp PORT        connect over loopback TCP instead\n"
            << "  --connections N   concurrent closed loops (default 2)\n"
            << "  --seconds S       run duration (default 5)\n"
            << "  --budget-us N     per-request planning budget (0 = server default)\n"
            << "  --locations N     topology size, must match the daemon (default 4)\n"
            << "  --seed S          workload seed base, must match the daemon (default 2026)\n"
            << "  --secret TOKEN    session token the daemon expects\n"
            << "                    (default: ROTA_SERVICE_SECRET env, empty = none)\n";
  return 2;
}

struct Totals {
  std::mutex mutex;
  std::uint64_t accepted = 0, rejected = 0, overloaded = 0, errors = 0;
  std::vector<std::uint64_t> rtt_ns;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rota;
  using namespace rota::service;

  std::string socket_path = "/tmp/rota_admission.sock";
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  std::size_t connections = 2;
  double seconds = 5.0;
  std::uint64_t budget_us = 0;
  std::size_t locations = 4;
  std::uint64_t seed = 2026;
  std::string secret;
  if (const char* env = std::getenv("ROTA_SERVICE_SECRET")) secret = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = value();
    else if (arg == "--tcp") { tcp = true; tcp_port = static_cast<std::uint16_t>(std::stoul(value())); }
    else if (arg == "--connections") connections = std::stoul(value());
    else if (arg == "--seconds") seconds = std::stod(value());
    else if (arg == "--budget-us") budget_us = std::stoull(value());
    else if (arg == "--locations") locations = std::stoul(value());
    else if (arg == "--seed") seed = std::stoull(value());
    else if (arg == "--secret") secret = value();
    else return usage(argv[0]);
  }

  Totals totals;
  std::atomic<std::uint64_t> next_tick{0};
  const auto stop_at = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);

  std::vector<std::thread> loops;
  for (std::size_t c = 0; c < connections; ++c) {
    loops.emplace_back([&, c] {
      // Distinct per-connection seeds: distinct computations, one topology.
      WorkloadConfig wconfig;
      wconfig.seed = seed + 1 + c;
      wconfig.num_locations = locations;
      WorkloadGenerator gen(wconfig, CostModel{});
      std::uint64_t local_accepted = 0, local_rejected = 0, local_overloaded = 0;
      std::vector<std::uint64_t> local_rtt;
      try {
        ClientOptions options;
        options.token = secret;
        ServiceClient client =
            tcp ? ServiceClient::connect_tcp(tcp_port, options)
                : ServiceClient::connect_unix(socket_path, options);
        std::uint64_t id = c * 10'000'000;
        while (std::chrono::steady_clock::now() < stop_at) {
          AdmitRequest request;
          request.id = ++id;
          request.at = static_cast<Tick>(
              next_tick.fetch_add(1, std::memory_order_relaxed) % 50'000);
          request.budget_us = budget_us;
          request.computation = gen.make_computation(request.at);
          const auto t0 = std::chrono::steady_clock::now();
          const AdmitResponse response = client.call(request);
          local_rtt.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
          switch (response.verdict) {
            case Verdict::kAccepted: ++local_accepted; break;
            case Verdict::kRejected: ++local_rejected; break;
            case Verdict::kOverloaded: ++local_overloaded; break;
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(totals.mutex);
        ++totals.errors;
        std::cerr << "connection " << c << ": " << e.what() << "\n";
      }
      std::lock_guard<std::mutex> lock(totals.mutex);
      totals.accepted += local_accepted;
      totals.rejected += local_rejected;
      totals.overloaded += local_overloaded;
      totals.rtt_ns.insert(totals.rtt_ns.end(), local_rtt.begin(), local_rtt.end());
    });
  }
  for (auto& t : loops) t.join();

  std::sort(totals.rtt_ns.begin(), totals.rtt_ns.end());
  const auto quantile = [&](double p) -> double {
    if (totals.rtt_ns.empty()) return 0.0;
    const std::size_t i = std::min(
        totals.rtt_ns.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(totals.rtt_ns.size())));
    return static_cast<double>(totals.rtt_ns[i]) / 1e6;
  };
  const std::uint64_t total =
      totals.accepted + totals.rejected + totals.overloaded;
  std::cout << "rota_load: " << total << " requests over " << seconds << "s ("
            << totals.accepted << " accepted, " << totals.rejected
            << " rejected, " << totals.overloaded << " overloaded)\n"
            << "rota_load: round-trip p50 " << quantile(0.50) << "ms  p99 "
            << quantile(0.99) << "ms\n";

  if (totals.errors != 0 || total == 0) {
    std::cerr << "rota_load: FAILED (" << totals.errors << " connection errors, "
              << total << " completed requests)\n";
    return 1;
  }
  return 0;
}
