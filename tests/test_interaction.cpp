#include "rota/computation/interaction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class InteractionTest : public ::testing::Test {
 protected:
  Location l1{"in-l1"};
  Location l2{"in-l2"};
  CostModel phi;

  /// Classic RPC shape: client computes, sends a request, blocks; server
  /// computes the answer, replies; client resumes on the reply.
  InteractingComputation rpc(Tick s, Tick d) {
    SegmentedActorBuilder client("client", l1);
    client.evaluate(1).send(l2);
    client.await();            // segment 0 ends: waiting for the reply
    client.evaluate(1).ready();  // segment 1

    SegmentedActorBuilder server("server", l2);
    server.evaluate(2).send(l1);  // segment 0: compute the answer, reply

    // The server only computes after the request arrives, and the client
    // resumes only after the reply: two cross-actor gates.
    return InteractingComputation(
        "rpc", {std::move(client).build(), std::move(server).build()},
        {{/*from_actor=*/0, 0, /*to_actor=*/1, 0}, {1, 0, 0, 1}}, s, d);
  }
};

TEST_F(InteractionTest, BuilderSplitsSegmentsAtAwait) {
  SegmentedActorBuilder b("a", l1);
  b.evaluate(1).send(l2);
  EXPECT_EQ(b.await(), 0u);
  b.evaluate(2);
  b.ready();
  SegmentedActor actor = std::move(b).build();
  ASSERT_EQ(actor.segment_count(), 2u);
  EXPECT_EQ(actor.segments()[0].size(), 2u);
  EXPECT_EQ(actor.segments()[1].size(), 2u);
}

TEST_F(InteractionTest, BuilderTracksLocationAcrossSegments) {
  SegmentedActorBuilder b("a", l1);
  b.migrate(l2);
  b.await();
  b.evaluate(1);
  SegmentedActor actor = std::move(b).build();
  EXPECT_EQ(actor.segments()[1][0].at, l2);
}

TEST_F(InteractionTest, ValidComputationConstructs) {
  InteractingComputation c = rpc(0, 20);
  EXPECT_EQ(c.actors().size(), 2u);
  EXPECT_EQ(c.total_segments(), 3u);
  EXPECT_EQ(c.dependencies().size(), 2u);
  EXPECT_NE(c.to_string().find("3 segments"), std::string::npos);
}

TEST_F(InteractionTest, BadDeadlineThrows) {
  EXPECT_THROW(rpc(10, 10), std::invalid_argument);
}

TEST_F(InteractionTest, DanglingDependencyThrows) {
  SegmentedActorBuilder a("a", l1);
  a.evaluate(1);
  EXPECT_THROW(InteractingComputation("bad", {std::move(a).build()},
                                      {{0, 0, 0, 5}}, 0, 10),
               std::invalid_argument);
  SegmentedActorBuilder b("b", l1);
  b.evaluate(1);
  EXPECT_THROW(InteractingComputation("bad", {std::move(b).build()},
                                      {{0, 0, 3, 0}}, 0, 10),
               std::invalid_argument);
}

TEST_F(InteractionTest, BackwardIntraActorDependencyThrows) {
  SegmentedActorBuilder a("a", l1);
  a.evaluate(1);
  a.await();
  a.evaluate(1);
  EXPECT_THROW(InteractingComputation("bad", {std::move(a).build()},
                                      {{0, 1, 0, 0}}, 0, 10),
               std::invalid_argument);
}

TEST_F(InteractionTest, CrossActorCycleThrows) {
  // a#0 waits for b#0 and b#0 waits for a#0: deadlock by construction.
  SegmentedActorBuilder a("a", l1);
  a.evaluate(1);
  SegmentedActorBuilder b("b", l2);
  b.evaluate(1);
  EXPECT_THROW(
      InteractingComputation("deadlock",
                             {std::move(a).build(), std::move(b).build()},
                             {{0, 0, 1, 0}, {1, 0, 0, 0}}, 0, 10),
      std::invalid_argument);
}

TEST_F(InteractionTest, LongerCycleThroughSegmentsThrows) {
  // a#1 waits on b#0; b#0 waits on a#1's own ancestor chain via b→a gate:
  // a#0 → (intra) a#1 → waits b#0 → waits a#1 : cycle b#0 ← a#1 ← b#0.
  SegmentedActorBuilder a("a", l1);
  a.evaluate(1);
  a.await();
  a.evaluate(1);
  SegmentedActorBuilder b("b", l2);
  b.evaluate(1);
  EXPECT_THROW(
      InteractingComputation("deadlock",
                             {std::move(a).build(), std::move(b).build()},
                             {{1, 0, 0, 1}, {0, 1, 1, 0}}, 0, 10),
      std::invalid_argument);
}

TEST_F(InteractionTest, DagRequirementShape) {
  InteractingComputation c = rpc(0, 20);
  DagRequirement dag = make_dag_requirement(phi, c);
  ASSERT_EQ(dag.nodes.size(), 3u);
  // Node order: client#0, client#1, server#0.
  EXPECT_EQ(dag.nodes[0].actor_index, 0u);
  EXPECT_EQ(dag.nodes[0].segment_index, 0u);
  EXPECT_TRUE(dag.nodes[0].waits_for.empty());
  // client#1 waits for client#0 (intra) and server#0 (reply gate).
  EXPECT_EQ(dag.nodes[1].waits_for.size(), 2u);
  // server#0 waits for client#0 (request gate).
  ASSERT_EQ(dag.nodes[2].waits_for.size(), 1u);
  EXPECT_EQ(dag.nodes[2].waits_for[0], 0u);
}

TEST_F(InteractionTest, DagTotalDemandSumsSegments) {
  InteractingComputation c = rpc(0, 20);
  DagRequirement dag = make_dag_requirement(phi, c);
  // client: evaluate(1)=8 cpu@l1 + send=4 net + evaluate(1)+ready=9 cpu@l1
  // server: evaluate(2)=16 cpu@l2 + send=4 net l2->l1
  DemandSet total = dag.total_demand();
  EXPECT_EQ(total.of(LocatedType::cpu(l1)), 17);
  EXPECT_EQ(total.of(LocatedType::cpu(l2)), 16);
  EXPECT_EQ(total.of(LocatedType::network(l1, l2)), 4);
  EXPECT_EQ(total.of(LocatedType::network(l2, l1)), 4);
}

}  // namespace
}  // namespace rota
