#include "rota/time/allen.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rota {
namespace {

// ------------------------------------------------------------------
// Table I: the thirteen base relations on canonical interval pairs.
// ------------------------------------------------------------------

struct RelationCase {
  TimeInterval a;
  TimeInterval b;
  AllenRelation expected;
};

class AllenRelationTest : public ::testing::TestWithParam<RelationCase> {};

TEST_P(AllenRelationTest, ComputesExpectedRelation) {
  const auto& c = GetParam();
  EXPECT_EQ(allen_relation(c.a, c.b), c.expected);
}

TEST_P(AllenRelationTest, SwappedArgumentsGiveInverse) {
  const auto& c = GetParam();
  EXPECT_EQ(allen_relation(c.b, c.a), inverse(c.expected));
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, AllenRelationTest,
    ::testing::Values(
        RelationCase{{0, 2}, {4, 6}, AllenRelation::kBefore},
        RelationCase{{4, 6}, {0, 2}, AllenRelation::kAfter},
        RelationCase{{0, 3}, {3, 6}, AllenRelation::kMeets},
        RelationCase{{3, 6}, {0, 3}, AllenRelation::kMetBy},
        RelationCase{{0, 4}, {2, 6}, AllenRelation::kOverlaps},
        RelationCase{{2, 6}, {0, 4}, AllenRelation::kOverlappedBy},
        RelationCase{{0, 2}, {0, 6}, AllenRelation::kStarts},
        RelationCase{{0, 6}, {0, 2}, AllenRelation::kStartedBy},
        RelationCase{{2, 4}, {0, 6}, AllenRelation::kDuring},
        RelationCase{{0, 6}, {2, 4}, AllenRelation::kContains},
        RelationCase{{4, 6}, {0, 6}, AllenRelation::kFinishes},
        RelationCase{{0, 6}, {4, 6}, AllenRelation::kFinishedBy},
        RelationCase{{1, 5}, {1, 5}, AllenRelation::kEquals}));

TEST(Allen, EmptyIntervalThrows) {
  EXPECT_THROW(allen_relation(TimeInterval(), TimeInterval(0, 2)),
               std::invalid_argument);
  EXPECT_THROW(allen_relation(TimeInterval(0, 2), TimeInterval()),
               std::invalid_argument);
}

TEST(Allen, ExhaustiveInverseProperty) {
  // For every pair of intervals with endpoints in a small window, the
  // relation of (b, a) is the inverse of the relation of (a, b).
  std::vector<TimeInterval> ivs;
  for (Tick s = 0; s < 6; ++s) {
    for (Tick e = s + 1; e <= 6; ++e) ivs.emplace_back(s, e);
  }
  for (const auto& a : ivs) {
    for (const auto& b : ivs) {
      EXPECT_EQ(inverse(allen_relation(a, b)), allen_relation(b, a))
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(Allen, InverseIsInvolution) {
  for (AllenRelation r : all_allen_relations()) {
    EXPECT_EQ(inverse(inverse(r)), r);
  }
}

TEST(Allen, EqualsIsSelfInverse) {
  EXPECT_EQ(inverse(AllenRelation::kEquals), AllenRelation::kEquals);
}

TEST(Allen, ExactlyOneRelationHolds) {
  // Relations partition the space of non-empty interval pairs.
  std::vector<TimeInterval> ivs;
  for (Tick s = 0; s < 5; ++s) {
    for (Tick e = s + 1; e <= 5; ++e) ivs.emplace_back(s, e);
  }
  for (const auto& a : ivs) {
    for (const auto& b : ivs) {
      // allen_relation is a total function over non-empty pairs; check that
      // its value is one of the 13 (no throw, valid enum).
      const auto r = allen_relation(a, b);
      EXPECT_LT(static_cast<unsigned>(r), static_cast<unsigned>(kNumAllenRelations));
    }
  }
}

TEST(Allen, SymbolsAreUniqueAndNamed) {
  std::vector<std::string> symbols;
  for (AllenRelation r : all_allen_relations()) {
    symbols.push_back(allen_symbol(r));
    EXPECT_FALSE(allen_name(r).empty());
  }
  std::sort(symbols.begin(), symbols.end());
  EXPECT_EQ(std::unique(symbols.begin(), symbols.end()), symbols.end());
}

// ------------------------------------------------------------------
// Predicates mirroring the paper's vocabulary.
// ------------------------------------------------------------------

TEST(AllenPredicates, Before) {
  EXPECT_TRUE(before(TimeInterval(0, 2), TimeInterval(5, 7)));
  EXPECT_FALSE(before(TimeInterval(0, 5), TimeInterval(5, 7)));  // that's meets
}

TEST(AllenPredicates, Meets) {
  EXPECT_TRUE(meets(TimeInterval(0, 5), TimeInterval(5, 7)));
  EXPECT_FALSE(meets(TimeInterval(0, 4), TimeInterval(5, 7)));
}

TEST(AllenPredicates, Overlaps) {
  EXPECT_TRUE(overlaps(TimeInterval(0, 5), TimeInterval(3, 8)));
  EXPECT_FALSE(overlaps(TimeInterval(3, 8), TimeInterval(0, 5)));  // overlapped-by
}

TEST(AllenPredicates, StartsIncludesEquals) {
  EXPECT_TRUE(starts(TimeInterval(0, 3), TimeInterval(0, 8)));
  EXPECT_TRUE(starts(TimeInterval(0, 8), TimeInterval(0, 8)));
  EXPECT_FALSE(starts(TimeInterval(0, 8), TimeInterval(0, 3)));
}

TEST(AllenPredicates, WithinIsInclusiveDuring) {
  // The paper's domination order uses "τ2 during τ1" inclusively.
  EXPECT_TRUE(within(TimeInterval(2, 4), TimeInterval(0, 6)));
  EXPECT_TRUE(within(TimeInterval(0, 6), TimeInterval(0, 6)));
  EXPECT_TRUE(within(TimeInterval(0, 3), TimeInterval(0, 6)));   // starts
  EXPECT_TRUE(within(TimeInterval(3, 6), TimeInterval(0, 6)));   // finishes
  EXPECT_FALSE(within(TimeInterval(0, 7), TimeInterval(0, 6)));
}

TEST(AllenPredicates, FinishesIncludesEquals) {
  EXPECT_TRUE(finishes(TimeInterval(5, 8), TimeInterval(0, 8)));
  EXPECT_TRUE(finishes(TimeInterval(0, 8), TimeInterval(0, 8)));
  EXPECT_FALSE(finishes(TimeInterval(0, 8), TimeInterval(5, 8)));
}

// ------------------------------------------------------------------
// Relation sets.
// ------------------------------------------------------------------

TEST(AllenRelationSet, EmptyAndAll) {
  EXPECT_TRUE(AllenRelationSet::none().empty());
  EXPECT_EQ(AllenRelationSet::all().size(), kNumAllenRelations);
}

TEST(AllenRelationSet, InsertEraseContains) {
  AllenRelationSet s;
  s.insert(AllenRelation::kMeets);
  s.insert(AllenRelation::kBefore);
  EXPECT_TRUE(s.contains(AllenRelation::kMeets));
  EXPECT_TRUE(s.contains(AllenRelation::kBefore));
  EXPECT_FALSE(s.contains(AllenRelation::kAfter));
  EXPECT_EQ(s.size(), 2);
  s.erase(AllenRelation::kMeets);
  EXPECT_FALSE(s.contains(AllenRelation::kMeets));
  EXPECT_EQ(s.size(), 1);
}

TEST(AllenRelationSet, SetOperations) {
  AllenRelationSet a(AllenRelation::kBefore);
  AllenRelationSet b(AllenRelation::kMeets);
  EXPECT_EQ((a | b).size(), 2);
  EXPECT_TRUE((a & b).empty());
  EXPECT_EQ((a | b) & a, a);
}

TEST(AllenRelationSet, Inverted) {
  AllenRelationSet s(AllenRelation::kBefore);
  s.insert(AllenRelation::kDuring);
  AllenRelationSet inv = s.inverted();
  EXPECT_TRUE(inv.contains(AllenRelation::kAfter));
  EXPECT_TRUE(inv.contains(AllenRelation::kContains));
  EXPECT_EQ(inv.size(), 2);
  EXPECT_EQ(inv.inverted(), s);
}

TEST(AllenRelationSet, ToString) {
  AllenRelationSet s(AllenRelation::kBefore);
  EXPECT_EQ(s.to_string(), "{<}");
}

// ------------------------------------------------------------------
// The composition table (derived by enumeration).
// ------------------------------------------------------------------

TEST(AllenComposition, EqualsIsIdentity) {
  for (AllenRelation r : all_allen_relations()) {
    EXPECT_EQ(compose(AllenRelation::kEquals, r), AllenRelationSet(r));
    EXPECT_EQ(compose(r, AllenRelation::kEquals), AllenRelationSet(r));
  }
}

TEST(AllenComposition, BeforeBeforeIsBefore) {
  EXPECT_EQ(compose(AllenRelation::kBefore, AllenRelation::kBefore),
            AllenRelationSet(AllenRelation::kBefore));
}

TEST(AllenComposition, AfterAfterIsAfter) {
  EXPECT_EQ(compose(AllenRelation::kAfter, AllenRelation::kAfter),
            AllenRelationSet(AllenRelation::kAfter));
}

TEST(AllenComposition, MeetsBeforeIsBefore) {
  EXPECT_EQ(compose(AllenRelation::kMeets, AllenRelation::kBefore),
            AllenRelationSet(AllenRelation::kBefore));
}

TEST(AllenComposition, DuringDuringIsDuring) {
  EXPECT_EQ(compose(AllenRelation::kDuring, AllenRelation::kDuring),
            AllenRelationSet(AllenRelation::kDuring));
}

TEST(AllenComposition, BeforeAfterIsUniversal) {
  // A before B and B after C leaves A and C completely unconstrained.
  EXPECT_EQ(compose(AllenRelation::kBefore, AllenRelation::kAfter),
            AllenRelationSet::all());
}

TEST(AllenComposition, MeetsMetByHasThreeOutcomes) {
  // A meets B, B met-by C: A and C share... A ends where B starts, C ends
  // where B starts: so A and C end at the same point — f, fi, or =.
  AllenRelationSet expected;
  expected.insert(AllenRelation::kFinishes);
  expected.insert(AllenRelation::kFinishedBy);
  expected.insert(AllenRelation::kEquals);
  EXPECT_EQ(compose(AllenRelation::kMeets, AllenRelation::kMetBy), expected);
}

TEST(AllenComposition, SoundOnConcreteTriples) {
  // For all concrete triples in a window, the actual relation(a, c) must be
  // a member of compose(relation(a,b), relation(b,c)).
  std::vector<TimeInterval> ivs;
  for (Tick s = 0; s < 6; ++s) {
    for (Tick e = s + 1; e <= 6; ++e) ivs.emplace_back(s, e);
  }
  for (const auto& a : ivs) {
    for (const auto& b : ivs) {
      const auto r1 = allen_relation(a, b);
      for (const auto& c : ivs) {
        const auto r2 = allen_relation(b, c);
        EXPECT_TRUE(compose(r1, r2).contains(allen_relation(a, c)))
            << a.to_string() << ' ' << b.to_string() << ' ' << c.to_string();
      }
    }
  }
}

TEST(AllenComposition, InverseDistributesOverComposition) {
  // (r1 ∘ r2)⁻¹ == r2⁻¹ ∘ r1⁻¹
  for (AllenRelation r1 : all_allen_relations()) {
    for (AllenRelation r2 : all_allen_relations()) {
      EXPECT_EQ(compose(r1, r2).inverted(), compose(inverse(r2), inverse(r1)));
    }
  }
}

TEST(AllenComposition, SetCompositionIsUnionOfMembers) {
  AllenRelationSet s1(AllenRelation::kBefore);
  s1.insert(AllenRelation::kMeets);
  AllenRelationSet s2(AllenRelation::kBefore);
  EXPECT_EQ(compose(s1, s2), compose(AllenRelation::kBefore, AllenRelation::kBefore) |
                                 compose(AllenRelation::kMeets, AllenRelation::kBefore));
}

TEST(AllenComposition, NoCellIsEmpty) {
  for (AllenRelation r1 : all_allen_relations()) {
    for (AllenRelation r2 : all_allen_relations()) {
      EXPECT_FALSE(compose(r1, r2).empty())
          << allen_name(r1) << " o " << allen_name(r2);
    }
  }
}

}  // namespace
}  // namespace rota
