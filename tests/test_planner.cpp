#include "rota/logic/planner.hpp"

#include <gtest/gtest.h>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  Location l1{"pl-l1"};
  Location l2{"pl-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);
  LocatedType net12 = LocatedType::network(l1, l2);

  ComplexRequirement two_phase(Tick s, Tick d) {
    // evaluate (8 cpu@l1) then send (4 net l1->l2).
    auto gamma = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
    return make_complex_requirement(phi, gamma, TimeInterval(s, d));
  }

  /// Checks the invariants any valid plan must have.
  void check_plan(const ActorPlan& plan, const ComplexRequirement& req,
                  const ResourceSet& available) {
    // Usage within availability.
    for (const auto& [type, f] : plan.usage) {
      EXPECT_TRUE(available.availability(type).dominates(f))
          << "usage of " << type.to_string() << " exceeds availability";
      // Usage inside the window.
      EXPECT_EQ(f, f.restricted(req.window()));
    }
    // Cut points strictly inside the window and ordered.
    Tick prev = req.window().start();
    for (Tick cut : plan.cut_points) {
      EXPECT_GE(cut, prev);
      EXPECT_LE(cut, req.window().end());
      prev = cut;
    }
    EXPECT_EQ(plan.cut_points.size() + 1, req.phases().size());
    // Every phase's demand is covered within its slot.
    Tick lo = req.window().start();
    for (std::size_t i = 0; i < req.phases().size(); ++i) {
      const Tick hi =
          i < plan.cut_points.size() ? plan.cut_points[i] : req.window().end();
      for (const auto& [type, q] : req.phases()[i].demand.amounts()) {
        EXPECT_GE(plan.usage.at(type).integral(TimeInterval(lo, hi)), q)
            << "phase " << i << " type " << type.to_string();
      }
      lo = hi;
    }
    EXPECT_LE(plan.finish, req.window().end());
    EXPECT_GE(plan.start, req.window().start());
  }
};

TEST_F(PlannerTest, AsapPlansSimpleChain) {
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);
  avail.add(4, TimeInterval(0, 10), net12);
  ComplexRequirement req = two_phase(0, 10);

  auto plan = plan_actor(avail, req, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  check_plan(*plan, req, avail);
  EXPECT_EQ(plan->finish, 3);  // 8 cpu at rate 4 → 2 ticks; 4 net → 1 tick
  ASSERT_EQ(plan->cut_points.size(), 1u);
  EXPECT_EQ(plan->cut_points[0], 2);
}

TEST_F(PlannerTest, AsapHandlesPartialTicks) {
  ResourceSet avail;
  avail.add(3, TimeInterval(0, 10), cpu1);
  avail.add(4, TimeInterval(0, 10), net12);
  ComplexRequirement req = two_phase(0, 10);

  auto plan = plan_actor(avail, req, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  check_plan(*plan, req, avail);
  // 8 cpu at rate 3: ticks at 3+3+2 → finishes at 3.
  EXPECT_EQ(plan->cut_points[0], 3);
  EXPECT_EQ(plan->usage.at(cpu1).value_at(2), 2);
  EXPECT_EQ(plan->finish, 4);
}

TEST_F(PlannerTest, OrderMattersNotJustTotals) {
  // The paper's key §III point: totals can suffice while order fails.
  // cpu only exists late, network only early: the evaluate→send chain cannot
  // run even though total quantities cover it.
  ResourceSet avail;
  avail.add(8, TimeInterval(5, 9), cpu1);    // 32 cpu, but late
  avail.add(4, TimeInterval(0, 2), net12);   // 8 net, but early
  ComplexRequirement req = two_phase(0, 9);
  EXPECT_GE(avail.quantity(cpu1, req.window()), 8);
  EXPECT_GE(avail.quantity(net12, req.window()), 4);
  EXPECT_FALSE(plan_actor(avail, req, PlanningPolicy::kAsap).has_value());

  // Flip the availability order and it becomes feasible.
  ResourceSet flipped;
  flipped.add(8, TimeInterval(0, 4), cpu1);
  flipped.add(4, TimeInterval(5, 9), net12);
  EXPECT_TRUE(plan_actor(flipped, req, PlanningPolicy::kAsap).has_value());
}

TEST_F(PlannerTest, InfeasibleWhenQuantityShort) {
  ResourceSet avail;
  avail.add(1, TimeInterval(0, 5), cpu1);  // only 5 < 8
  avail.add(4, TimeInterval(0, 5), net12);
  EXPECT_FALSE(plan_actor(avail, two_phase(0, 5), PlanningPolicy::kAsap).has_value());
}

TEST_F(PlannerTest, MultiTypePhaseWaitsForSlowestType) {
  // A lone migrate: cpu@l1 (3), net (6), cpu@l2 (3) all in one phase.
  auto gamma = ActorComputationBuilder("m", l1).migrate(l2).build();
  ComplexRequirement req = make_complex_requirement(phi, gamma, TimeInterval(0, 10));
  ResourceSet avail;
  avail.add(3, TimeInterval(0, 10), cpu1);
  avail.add(1, TimeInterval(0, 10), net12);  // slowest: 6 ticks
  avail.add(3, TimeInterval(0, 10), cpu2);

  auto plan = plan_actor(avail, req, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  check_plan(*plan, req, avail);
  EXPECT_EQ(plan->finish, 6);
}

TEST_F(PlannerTest, AlapFinishesAtDeadline) {
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);
  avail.add(4, TimeInterval(0, 10), net12);
  ComplexRequirement req = two_phase(0, 10);

  auto plan = plan_actor(avail, req, PlanningPolicy::kAlap);
  ASSERT_TRUE(plan.has_value());
  check_plan(*plan, req, avail);
  EXPECT_EQ(plan->finish, 10);
  // Send occupies the last tick; evaluate the two before it.
  EXPECT_EQ(plan->usage.at(net12).value_at(9), 4);
  EXPECT_EQ(plan->usage.at(cpu1).value_at(8), 4);
  EXPECT_EQ(plan->usage.at(cpu1).value_at(7), 4);
  EXPECT_EQ(plan->start, 7);
}

TEST_F(PlannerTest, AsapAndAlapAgreeOnFeasibility) {
  ResourceSet avail;
  avail.add(2, TimeInterval(0, 7), cpu1);
  avail.add(1, TimeInterval(2, 9), net12);
  ComplexRequirement req = two_phase(0, 9);
  EXPECT_EQ(plan_actor(avail, req, PlanningPolicy::kAsap).has_value(),
            plan_actor(avail, req, PlanningPolicy::kAlap).has_value());
}

TEST_F(PlannerTest, UniformCanRejectWhatAsapAccepts) {
  // The send phase's proportional slice is tiny; with network supply only at
  // the very end, uniform fails while ASAP succeeds.
  ResourceSet avail;
  avail.add(8, TimeInterval(0, 2), cpu1);
  avail.add(4, TimeInterval(2, 4), net12);
  ComplexRequirement req = two_phase(0, 4);
  EXPECT_TRUE(plan_actor(avail, req, PlanningPolicy::kAsap).has_value());
  // Uniform slices 4 ticks by demand 8:4 → cpu gets [0,2...], send slice may
  // miss the late network window depending on rounding; accept either
  // verdict but require that an accepted plan is valid.
  auto uplan = plan_actor(avail, req, PlanningPolicy::kUniform);
  if (uplan) check_plan(*uplan, req, avail);
}

TEST_F(PlannerTest, EmptyRequirementIsTriviallyPlanned) {
  ComplexRequirement req("idle", {}, TimeInterval(0, 5));
  auto plan = plan_actor(ResourceSet{}, req, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->usage.empty());
  EXPECT_TRUE(plan->cut_points.empty());
}

TEST_F(PlannerTest, TotalConsumptionMatchesDemand) {
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);
  avail.add(4, TimeInterval(0, 10), net12);
  ComplexRequirement req = two_phase(0, 10);
  for (auto policy :
       {PlanningPolicy::kAsap, PlanningPolicy::kAlap, PlanningPolicy::kUniform}) {
    auto plan = plan_actor(avail, req, policy);
    ASSERT_TRUE(plan.has_value()) << policy_name(policy);
    EXPECT_EQ(plan->total_consumption(), 12) << policy_name(policy);
  }
}

// ------------------------------------------------------------------
// Concurrent planning.
// ------------------------------------------------------------------

TEST_F(PlannerTest, ConcurrentPlansShareSupply) {
  // Two identical actors on one node: rate 4 supply, each needs 8 cpu.
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 10);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);

  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);
  auto plan = plan_concurrent(avail, rho, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  // Combined usage never exceeds supply.
  EXPECT_TRUE(avail.availability(cpu1).dominates(plan->total_usage().at(cpu1)));
  EXPECT_EQ(plan->total_usage().at(cpu1).integral(), 16);
  EXPECT_EQ(plan->finish, 4);  // 16 units at rate 4
}

TEST_F(PlannerTest, ConcurrentRejectsOverload) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate(2).build();  // 16 cpu
  auto g2 = ActorComputationBuilder("a2", l1).evaluate(2).build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 6);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 6), cpu1);  // 24 < 32
  EXPECT_FALSE(plan_concurrent(avail, rho, PlanningPolicy::kAsap).has_value());
}

TEST_F(PlannerTest, ConcurrentHonorsExplicitOrder) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 10);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);

  auto forward = plan_concurrent(avail, rho, PlanningPolicy::kAsap, {0, 1});
  auto backward = plan_concurrent(avail, rho, PlanningPolicy::kAsap, {1, 0});
  ASSERT_TRUE(forward && backward);
  // Planned-first actor finishes first under ASAP.
  EXPECT_LT(forward->actors[0].finish, forward->actors[1].finish);
  EXPECT_LT(backward->actors[1].finish, backward->actors[0].finish);
}

TEST_F(PlannerTest, ConcurrentBadOrderThrows) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  DistributedComputation lambda("solo", {g1}, 0, 10);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  EXPECT_THROW(plan_concurrent(ResourceSet{}, rho, PlanningPolicy::kAsap, {0, 1}),
               std::invalid_argument);
}

TEST_F(PlannerTest, PolicyNames) {
  EXPECT_EQ(policy_name(PlanningPolicy::kAsap), "asap");
  EXPECT_EQ(policy_name(PlanningPolicy::kAlap), "alap");
  EXPECT_EQ(policy_name(PlanningPolicy::kUniform), "uniform");
}

TEST_F(PlannerTest, UsageAsResourcesRoundTrips) {
  ResourceSet avail;
  avail.add(4, TimeInterval(0, 10), cpu1);
  avail.add(4, TimeInterval(0, 10), net12);
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
  DistributedComputation lambda("solo", {g1}, 0, 10);
  auto plan = plan_concurrent(avail, make_concurrent_requirement(phi, lambda),
                              PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  const ResourceSet used = plan->usage_as_resources();
  EXPECT_EQ(used.quantity(cpu1, TimeInterval(0, 10)), 8);
  EXPECT_EQ(used.quantity(net12, TimeInterval(0, 10)), 4);
  // Availability minus usage is defined (usage is dominated).
  EXPECT_TRUE(avail.relative_complement(used).has_value());
}

}  // namespace
}  // namespace rota
