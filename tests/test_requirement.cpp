#include "rota/computation/requirement.hpp"

#include <gtest/gtest.h>

namespace rota {
namespace {

class RequirementTest : public ::testing::Test {
 protected:
  Location l1{"rq-l1"};
  Location l2{"rq-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);
  LocatedType net12 = LocatedType::network(l1, l2);
};

TEST_F(RequirementTest, SimpleRequirementFromAction) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::send(l1, l2), TimeInterval(0, 5));
  EXPECT_EQ(rho.demand().of(net12), 4);
  EXPECT_EQ(rho.window(), TimeInterval(0, 5));
}

TEST_F(RequirementTest, SimpleSatisfactionFunctionF) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::evaluate(l1), TimeInterval(0, 4));
  ResourceSet enough;
  enough.add(2, TimeInterval(0, 4), cpu1);  // 8 total
  EXPECT_TRUE(rho.satisfied_by(enough));

  ResourceSet outside_window;
  outside_window.add(8, TimeInterval(4, 8), cpu1);  // right type, wrong time
  EXPECT_FALSE(rho.satisfied_by(outside_window));
}

// ------------------------------------------------------------------
// Phase decomposition.
// ------------------------------------------------------------------

TEST_F(RequirementTest, SameTypeRunGroupsIntoOnePhase) {
  // "A sequence of actions which require the same single type of resource
  // need not be broken down."
  auto actions = ActorComputationBuilder("a", l1).evaluate().create().ready().build();
  auto phases = decompose_phases(phi, actions.actions());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].demand.of(cpu1), 8 + 5 + 1);
  EXPECT_EQ(phases[0].first_action, 0u);
  EXPECT_EQ(phases[0].action_count, 3u);
}

TEST_F(RequirementTest, TypeChangeForcesNewPhase) {
  auto actions =
      ActorComputationBuilder("a", l1).evaluate().send(l2).evaluate().build();
  auto phases = decompose_phases(phi, actions.actions());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].demand.of(cpu1), 8);
  EXPECT_EQ(phases[1].demand.of(net12), 4);
  EXPECT_EQ(phases[2].demand.of(cpu1), 8);
}

TEST_F(RequirementTest, MigrateIsItsOwnPhase) {
  auto actions = ActorComputationBuilder("a", l1).evaluate().migrate(l2).evaluate().build();
  auto phases = decompose_phases(phi, actions.actions());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[1].demand.size(), 3u);  // cpu@l1 + link + cpu@l2
  // Post-migration evaluate draws on l2's cpu.
  EXPECT_EQ(phases[2].demand.of(cpu2), 8);
}

TEST_F(RequirementTest, ConsecutiveSendsToSameDestinationGroup) {
  auto actions = ActorComputationBuilder("a", l1).send(l2).send(l2).build();
  auto phases = decompose_phases(phi, actions.actions());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].demand.of(net12), 8);
}

TEST_F(RequirementTest, PhasesCoverAllActions) {
  auto actions = ActorComputationBuilder("a", l1)
                     .evaluate()
                     .send(l2)
                     .send(l2)
                     .migrate(l2)
                     .ready()
                     .build();
  auto phases = decompose_phases(phi, actions.actions());
  std::size_t covered = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].first_action, covered);
    covered += phases[i].action_count;
  }
  EXPECT_EQ(covered, actions.action_count());
}

TEST_F(RequirementTest, EmptyActionListYieldsNoPhases) {
  EXPECT_TRUE(decompose_phases(phi, {}).empty());
}

// ------------------------------------------------------------------
// Complex and concurrent requirements.
// ------------------------------------------------------------------

TEST_F(RequirementTest, ComplexRequirementTotals) {
  auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 10));
  EXPECT_EQ(rho.actor(), "a");
  EXPECT_EQ(rho.phase_count(), 2u);
  EXPECT_EQ(rho.total_demand().of(cpu1), 8);
  EXPECT_EQ(rho.total_demand().of(net12), 4);
  EXPECT_EQ(rho.window(), TimeInterval(0, 10));
}

TEST_F(RequirementTest, ConcurrentRequirementFromComputation) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l2).evaluate().ready().build();
  DistributedComputation lambda("job", {g1, g2}, 2, 20);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  EXPECT_EQ(rho.name(), "job");
  EXPECT_EQ(rho.actors().size(), 2u);
  EXPECT_EQ(rho.window(), TimeInterval(2, 20));
  EXPECT_EQ(rho.total_phases(), 2u);
  EXPECT_EQ(rho.total_demand().of(cpu1), 8);
  EXPECT_EQ(rho.total_demand().of(cpu2), 9);
}

TEST_F(RequirementTest, ToStringsAreInformative) {
  auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 10));
  EXPECT_NE(rho.to_string().find("rho(a"), std::string::npos);
  SimpleRequirement simple =
      make_simple_requirement(phi, Action::evaluate(l1), TimeInterval(0, 4));
  EXPECT_NE(simple.to_string().find("rho("), std::string::npos);
}

}  // namespace
}  // namespace rota
