#include "rota/admission/baselines.hpp"

#include <gtest/gtest.h>

namespace rota {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  Location l1{"bl-l1"};
  Location l2{"bl-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 10), cpu1);
    s.add(4, TimeInterval(0, 10), net12);
    return s;
  }

  DistributedComputation job(const std::string& name, Tick s, Tick d,
                             std::int64_t weight = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", l1).evaluate(weight).build();
    return DistributedComputation(name, {gamma}, s, d);
  }

  /// The ordering trap from §III: totals fit, temporal order does not.
  DistributedComputation chain_job(const std::string& name, Tick s, Tick d) {
    auto gamma = ActorComputationBuilder(name + ".a", l1).evaluate().send(l2).build();
    return DistributedComputation(name, {gamma}, s, d);
  }
};

TEST_F(BaselinesTest, Names) {
  EXPECT_EQ(RotaStrategy(phi, supply()).name(), "rota-asap");
  EXPECT_EQ(RotaStrategy(phi, supply(), PlanningPolicy::kAlap).name(), "rota-alap");
  EXPECT_EQ(NaiveTotalQuantityStrategy(phi, supply()).name(), "naive-total");
  EXPECT_EQ(OptimisticStrategy(phi, supply()).name(), "optimistic");
  EXPECT_EQ(AlwaysAdmitStrategy().name(), "always-admit");
}

TEST_F(BaselinesTest, AllAdmitAnEasyJob) {
  RotaStrategy rota(phi, supply());
  NaiveTotalQuantityStrategy naive(phi, supply());
  OptimisticStrategy optimistic(phi, supply());
  AlwaysAdmitStrategy always;
  auto easy = job("easy", 0, 10);
  EXPECT_TRUE(rota.request(easy, 0).accepted);
  EXPECT_TRUE(naive.request(easy, 0).accepted);
  EXPECT_TRUE(optimistic.request(easy, 0).accepted);
  EXPECT_TRUE(always.request(easy, 0).accepted);
}

TEST_F(BaselinesTest, NaiveIsBlindToRates) {
  // A job needing 16 cpu in 2 ticks: the rate cap (4/tick → 8) forbids it,
  // but the aggregate over (0, 10) looks fine to the naive check... so make
  // the window itself tight: quantity in (0, 2) is 8 < 16 — naive catches
  // that. The blindness shows with *rates within* a wide window:
  auto gamma = ActorComputationBuilder("burst.a", l1).evaluate(2).build();  // 16 cpu
  DistributedComputation burst("burst", {gamma}, 0, 3);  // 12 available
  NaiveTotalQuantityStrategy naive(phi, supply());
  EXPECT_FALSE(naive.request(burst, 0).accepted);  // quantity check still works

  // 12 cpu in 3 ticks fits by quantity (12 == 12) and by rate (4×3) — fine
  // for both. Now two such jobs: naive charges quantities and rejects the
  // second; where naive truly over-admits is *disjoint-looking* windows:
  DistributedComputation a = job("a", 0, 2);  // needs 8 = exactly (0,2) supply
  DistributedComputation b = job("b", 1, 3);  // needs 8, overlaps tick 1
  NaiveTotalQuantityStrategy naive2(phi, supply());
  ASSERT_TRUE(naive2.request(a, 0).accepted);
  // b's pool (1,3) holds 8 and a's full 8 is charged → 16 > 8: rejected.
  EXPECT_FALSE(naive2.request(b, 0).accepted);
}

TEST_F(BaselinesTest, NaiveOverAdmitsOnTemporalOrder) {
  // The §III trap: supply has network early and cpu late; the evaluate→send
  // chain is impossible (cpu must come first), but totals cover it.
  ResourceSet misordered;
  misordered.add(8, TimeInterval(6, 10), cpu1);   // late cpu
  misordered.add(4, TimeInterval(0, 4), net12);   // early network
  auto trap = chain_job("trap", 0, 10);

  RotaStrategy rota(phi, misordered);
  EXPECT_FALSE(rota.request(trap, 0).accepted);

  NaiveTotalQuantityStrategy naive(phi, misordered);
  EXPECT_TRUE(naive.request(trap, 0).accepted);  // unsound admission

  OptimisticStrategy optimistic(phi, misordered);
  EXPECT_TRUE(optimistic.request(trap, 0).accepted);
}

TEST_F(BaselinesTest, OptimisticIgnoresOtherCommitments) {
  OptimisticStrategy optimistic(phi, supply());
  // Five jobs exhaust (0,10)'s 40 cpu; optimistic admits all ten.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (optimistic.request(job("j" + std::to_string(i), 0, 10), 0).accepted) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 10);

  RotaStrategy rota(phi, supply());
  accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (rota.request(job("j" + std::to_string(i), 0, 10), 0).accepted) ++accepted;
  }
  EXPECT_EQ(accepted, 5);
}

TEST_F(BaselinesTest, AlwaysAdmitOnlyChecksDeadline) {
  AlwaysAdmitStrategy always;
  EXPECT_TRUE(always.request(job("a", 0, 5, 100), 0).accepted);
  EXPECT_FALSE(always.request(job("b", 0, 5), 6).accepted);
}

TEST_F(BaselinesTest, JoinExpandsBaselinePools) {
  ResourceSet thin;
  thin.add(1, TimeInterval(0, 4), cpu1);
  NaiveTotalQuantityStrategy naive(phi, thin);
  EXPECT_FALSE(naive.request(job("j", 0, 4), 0).accepted);  // 4 < 8
  ResourceSet extra;
  extra.add(2, TimeInterval(0, 4), cpu1);
  naive.on_join(extra);
  EXPECT_TRUE(naive.request(job("j", 0, 4), 0).accepted);  // 12 >= 8

  OptimisticStrategy optimistic(phi, thin);
  EXPECT_FALSE(optimistic.request(job("j", 0, 4), 0).accepted);
  optimistic.on_join(extra);
  EXPECT_TRUE(optimistic.request(job("j", 0, 4), 0).accepted);
}

TEST_F(BaselinesTest, StrategiesRejectExpiredDeadlines) {
  NaiveTotalQuantityStrategy naive(phi, supply());
  OptimisticStrategy optimistic(phi, supply());
  EXPECT_FALSE(naive.request(job("late", 0, 3), 5).accepted);
  EXPECT_FALSE(optimistic.request(job("late", 0, 3), 5).accepted);
}

TEST_F(BaselinesTest, PolymorphicUseThroughInterface) {
  std::vector<std::unique_ptr<AdmissionStrategy>> strategies;
  strategies.push_back(std::make_unique<RotaStrategy>(phi, supply()));
  strategies.push_back(std::make_unique<NaiveTotalQuantityStrategy>(phi, supply()));
  strategies.push_back(std::make_unique<OptimisticStrategy>(phi, supply()));
  strategies.push_back(std::make_unique<AlwaysAdmitStrategy>());
  for (auto& s : strategies) {
    EXPECT_TRUE(s->request(job("poly", 0, 10), 0).accepted) << s->name();
  }
}

}  // namespace
}  // namespace rota
