#include "rota/logic/theorems.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

class TheoremsTest : public ::testing::Test {
 protected:
  Location l1{"th-l1"};
  Location l2{"th-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 12), cpu1);
    s.add(4, TimeInterval(0, 12), net12);
    return s;
  }
};

// ------------------------------------------------------------------
// Theorem 1: Single Action Accommodation.
// ------------------------------------------------------------------

TEST_F(TheoremsTest, T1AcceptsWhenDemandFitsWindow) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::evaluate(l1), TimeInterval(0, 2));
  EXPECT_TRUE(theorem1_single_action(supply(), rho));  // 8 ≤ 8
}

TEST_F(TheoremsTest, T1RejectsWhenWindowTooTight) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::evaluate(l1), TimeInterval(0, 1));
  EXPECT_FALSE(theorem1_single_action(supply(), rho));  // 8 > 4
}

TEST_F(TheoremsTest, T1RejectsWrongLocation) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::evaluate(l2), TimeInterval(0, 12));
  EXPECT_FALSE(theorem1_single_action(supply(), rho));  // no cpu at l2
}

TEST_F(TheoremsTest, T1MultiTypeAction) {
  SimpleRequirement rho =
      make_simple_requirement(phi, Action::migrate(l1, l2), TimeInterval(0, 4));
  ResourceSet s = supply();
  s.add(4, TimeInterval(0, 12), LocatedType::cpu(l2));
  EXPECT_TRUE(theorem1_single_action(s, rho));
  EXPECT_FALSE(theorem1_single_action(supply(), rho));  // missing cpu@l2
}

// ------------------------------------------------------------------
// Theorem 2: Sequential Computation Accommodation.
// ------------------------------------------------------------------

TEST_F(TheoremsTest, T2ProducesOrderedCutPoints) {
  auto gamma =
      ActorComputationBuilder("a", l1).evaluate().send(l2).evaluate().build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 12));
  auto cuts = theorem2_cut_points(supply(), rho);
  ASSERT_TRUE(cuts.has_value());
  ASSERT_EQ(cuts->size(), 2u);  // three phases → two interior cuts
  EXPECT_LT((*cuts)[0], (*cuts)[1]);
  EXPECT_GT((*cuts)[0], 0);
  EXPECT_LT((*cuts)[1], 12);
}

TEST_F(TheoremsTest, T2SinglePhaseNeedsNoCuts) {
  auto gamma = ActorComputationBuilder("a", l1).evaluate().create().build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 12));
  auto cuts = theorem2_cut_points(supply(), rho);
  ASSERT_TRUE(cuts.has_value());
  EXPECT_TRUE(cuts->empty());
}

TEST_F(TheoremsTest, T2RejectsWrongTemporalOrder) {
  // Totals suffice but the order is wrong: network before cpu.
  auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 10));
  ResourceSet misordered;
  misordered.add(8, TimeInterval(6, 10), cpu1);
  misordered.add(4, TimeInterval(0, 4), net12);
  EXPECT_FALSE(theorem2_cut_points(misordered, rho).has_value());
}

TEST_F(TheoremsTest, T2AgreesWithExplorerOnSingleActor) {
  // Greedy cut points are complete for one actor: whenever T2 rejects, the
  // schedule search over transition rules must also fail, and vice versa.
  const std::vector<ResourceSet> supplies = [&] {
    std::vector<ResourceSet> out;
    ResourceSet a;
    a.add(4, TimeInterval(0, 12), cpu1);
    a.add(4, TimeInterval(0, 12), net12);
    out.push_back(a);
    ResourceSet b;
    b.add(2, TimeInterval(0, 6), cpu1);
    b.add(1, TimeInterval(4, 8), net12);
    out.push_back(b);
    ResourceSet c;
    c.add(8, TimeInterval(3, 5), cpu1);
    c.add(4, TimeInterval(0, 3), net12);
    out.push_back(c);
    return out;
  }();

  auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
  for (Tick d : {3, 5, 8, 12}) {
    ComplexRequirement rho =
        make_complex_requirement(phi, gamma, TimeInterval(0, d));
    DistributedComputation lambda("x", {gamma}, 0, d);
    ConcurrentRequirement conc = make_concurrent_requirement(phi, lambda);
    for (const auto& s : supplies) {
      SystemState s0(s, 0);
      s0.accommodate(conc);
      const bool greedy = theorem2_cut_points(s, rho).has_value();
      const bool searched = search_feasible(s0, d).has_value();
      EXPECT_EQ(greedy, searched) << "d=" << d;
    }
  }
}

// ------------------------------------------------------------------
// Theorem 3: Meet Deadline.
// ------------------------------------------------------------------

TEST_F(TheoremsTest, T3WitnessDrainsBeforeDeadline) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("job", {g1, g2}, 0, 12);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);

  auto witness = theorem3_witness(supply(), rho);
  ASSERT_TRUE(witness.has_value());
  const SystemState& final_state = witness->back();
  EXPECT_TRUE(final_state.all_finished());
  EXPECT_LE(final_state.now(), 12);
  for (const auto& p : final_state.commitments()) {
    ASSERT_TRUE(p.finished_at.has_value());
    EXPECT_LE(*p.finished_at, 12);
  }
}

TEST_F(TheoremsTest, T3NoWitnessWhenInfeasible) {
  auto g = ActorComputationBuilder("a", l1).evaluate(10).build();  // 80 cpu
  DistributedComputation lambda("big", {g}, 0, 5);                 // only 20 available
  EXPECT_FALSE(theorem3_witness(supply(), make_concurrent_requirement(phi, lambda))
                   .has_value());
}

TEST_F(TheoremsTest, T3FallsBackToSearchForContendedActors) {
  // Sequential ASAP planning admits these two in either order here, so force
  // a case where planning order matters: two actors, staggered supply.
  // a1 can only run late, a2 only early; planning a1 first against the full
  // profile succeeds, and a2 still fits — but uniform policy may fail while
  // the search recovers it. At minimum the witness, when returned, is valid.
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("duo", {g1, g2}, 0, 4);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  ResourceSet s;
  s.add(4, TimeInterval(0, 4), cpu1);  // exactly 16 for 16 of demand
  auto witness = theorem3_witness(s, rho);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->back().all_finished());
}

// ------------------------------------------------------------------
// realize_plan: plans replayed through the transition rules.
// ------------------------------------------------------------------

TEST_F(TheoremsTest, RealizePlanValidatesEveryRule) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
  DistributedComputation lambda("job", {g1}, 2, 12);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  auto plan = plan_concurrent(supply(), rho, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  ComputationPath path = realize_plan(supply(), rho, *plan, 0);
  EXPECT_TRUE(path.back().all_finished());
  EXPECT_FALSE(path.back().any_missed());
}

TEST_F(TheoremsTest, RealizePlanArityMismatchThrows) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  DistributedComputation lambda("job", {g1}, 0, 12);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  ConcurrentPlan empty_plan;
  EXPECT_THROW(realize_plan(supply(), rho, empty_plan, 0), std::logic_error);
}

// ------------------------------------------------------------------
// Theorem 4: Accommodate Additional Computation.
// ------------------------------------------------------------------

TEST_F(TheoremsTest, T4AdmitsIntoExpiringResources) {
  // Committed job consumes cpu on [0, 2); newcomer needs cpu within (0, 8):
  // the expiring remainder covers it.
  auto busy = ActorComputationBuilder("busy", l1).evaluate().build();
  DistributedComputation lambda1("first", {busy}, 0, 4);
  ConcurrentRequirement rho1 = make_concurrent_requirement(phi, lambda1);
  auto plan1 = plan_concurrent(supply(), rho1, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan1.has_value());
  ComputationPath sigma = realize_plan(supply(), rho1, *plan1, 0);

  auto newcomer = ActorComputationBuilder("new", l1).evaluate().build();
  DistributedComputation lambda2("second", {newcomer}, 0, 8);
  auto plan2 =
      theorem4_accommodate(sigma, 0, make_concurrent_requirement(phi, lambda2));
  ASSERT_TRUE(plan2.has_value());

  // The admission plan must live entirely inside σ's expiring resources.
  const ResourceSet expiring = sigma.expiring_resources(0, TimeInterval(0, 8));
  EXPECT_TRUE(expiring.relative_complement(plan2->usage_as_resources()).has_value());

  // And crucially it does not overlap the committed plan's usage: combined
  // usage still fits raw supply.
  ResourceSet combined = plan1->usage_as_resources().unioned(plan2->usage_as_resources());
  EXPECT_TRUE(supply().relative_complement(combined).has_value());
}

TEST_F(TheoremsTest, T4RejectsWhenExpiringResourcesInsufficient) {
  // Committed computation eats everything in the newcomer's tight window.
  ResourceSet tight;
  tight.add(4, TimeInterval(0, 2), cpu1);
  auto busy = ActorComputationBuilder("busy", l1).evaluate().build();  // 8 cpu
  DistributedComputation lambda1("first", {busy}, 0, 2);
  ConcurrentRequirement rho1 = make_concurrent_requirement(phi, lambda1);
  auto plan1 = plan_concurrent(tight, rho1, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan1.has_value());
  ComputationPath sigma = realize_plan(tight, rho1, *plan1, 0);

  auto newcomer = ActorComputationBuilder("new", l1).evaluate().build();
  DistributedComputation lambda2("second", {newcomer}, 0, 2);
  EXPECT_FALSE(
      theorem4_accommodate(sigma, 0, make_concurrent_requirement(phi, lambda2))
          .has_value());
}

TEST_F(TheoremsTest, T4RejectsPastDeadline) {
  ComputationPath sigma(SystemState(supply(), 0));
  for (int i = 0; i < 6; ++i) sigma.apply(TickStep{});
  auto newcomer = ActorComputationBuilder("new", l1).evaluate().build();
  DistributedComputation lambda("late", {newcomer}, 0, 5);
  EXPECT_FALSE(
      theorem4_accommodate(sigma, 6, make_concurrent_requirement(phi, lambda))
          .has_value());
}

TEST_F(TheoremsTest, T4ComposedPathExecutesBothComputations) {
  // Realize σ' = σ + newcomer plan as one combined run and verify both meet
  // their deadlines — the paper's path-combination argument, executed.
  auto busy = ActorComputationBuilder("busy", l1).evaluate().build();
  DistributedComputation lambda1("first", {busy}, 0, 4);
  ConcurrentRequirement rho1 = make_concurrent_requirement(phi, lambda1);
  auto plan1 = plan_concurrent(supply(), rho1, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan1.has_value());
  ComputationPath sigma = realize_plan(supply(), rho1, *plan1, 0);

  auto newcomer = ActorComputationBuilder("new", l1).evaluate().build();
  DistributedComputation lambda2("second", {newcomer}, 0, 8);
  ConcurrentRequirement rho2 = make_concurrent_requirement(phi, lambda2);
  auto plan2 = theorem4_accommodate(sigma, 0, rho2);
  ASSERT_TRUE(plan2.has_value());

  // Combined replay: accommodate both, consume per both plans.
  SystemState s0(supply(), 0);
  ComputationPath combined(std::move(s0));
  combined.apply(AccommodateStep{rho1});
  combined.apply(AccommodateStep{rho2});
  const Tick end = std::max(plan1->finish, plan2->finish);
  for (Tick t = 0; t < end; ++t) {
    std::vector<ConsumptionLabel> labels;
    for (std::size_t i = 0; i < plan1->actors.size(); ++i) {
      for (const auto& [type, f] : plan1->actors[i].usage) {
        if (f.value_at(t) > 0) labels.push_back({i, type, f.value_at(t)});
      }
    }
    const std::size_t offset = plan1->actors.size();
    for (std::size_t i = 0; i < plan2->actors.size(); ++i) {
      for (const auto& [type, f] : plan2->actors[i].usage) {
        if (f.value_at(t) > 0) labels.push_back({offset + i, type, f.value_at(t)});
      }
    }
    combined.apply(TickStep{labels});  // throws if any rule is violated
  }
  EXPECT_TRUE(combined.back().all_finished());
  EXPECT_FALSE(combined.back().any_missed());
}

}  // namespace
}  // namespace rota
