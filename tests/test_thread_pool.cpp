#include "rota/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace rota {
namespace {

TEST(ThreadPoolTest, ConcurrencyCountsCallerLane) {
  EXPECT_EQ(ThreadPool(0).concurrency(), 1u);
  EXPECT_EQ(ThreadPool(1).concurrency(), 1u);
  EXPECT_EQ(ThreadPool(4).concurrency(), 4u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "lanes=" << lanes << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanLanes) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i) + 1); });
  EXPECT_EQ(sum.load(), 6);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "no iterations expected"; });
}

TEST(ThreadPoolTest, ParallelForIsReusableAcrossRounds) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) { total.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(total.load(), 50L * (64L * 63L / 2));
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing sweep.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerThread) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  pool.parallel_for(16, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

}  // namespace
}  // namespace rota
