#include "rota/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rota {
namespace {

TEST(ThreadPoolTest, ConcurrencyCountsCallerLane) {
  EXPECT_EQ(ThreadPool(0).concurrency(), 1u);
  EXPECT_EQ(ThreadPool(1).concurrency(), 1u);
  EXPECT_EQ(ThreadPool(4).concurrency(), 4u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "lanes=" << lanes << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanLanes) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i) + 1); });
  EXPECT_EQ(sum.load(), 6);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "no iterations expected"; });
}

TEST(ThreadPoolTest, ParallelForIsReusableAcrossRounds) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) { total.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(total.load(), 50L * (64L * 63L / 2));
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing sweep.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

// The clean-shutdown path the admission daemon's SIGINT/SIGTERM handler
// drives: everything submitted before shutdown() runs to completion —
// including tasks a worker has already popped — and nothing submitted after
// is silently swallowed.
TEST(ThreadPoolTest, ShutdownDrainsQueuedAndInFlightWork) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  std::mutex mutex;
  std::condition_variable started_cv;
  int started = 0;
  // Two slow tasks occupy workers (in-flight), the rest queue behind them.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.submit([&] {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++started;
      }
      started_cv.notify_all();
      while (!release.load()) std::this_thread::yield();
      ran.fetch_add(1);
    }));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    started_cv.wait(lock, [&] { return started == 2; });
  }
  std::thread stopper([&] { pool.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_LT(ran.load(), 22) << "shutdown() must wait for in-flight work";
  release.store(true);
  stopper.join();
  EXPECT_EQ(ran.load(), 22);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRefused) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(pool.submit([&] { ran.fetch_add(1); }))
      << "a stopping server must not accept work it cannot finish";
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.concurrency(), 3u) << "lane count is stable across shutdown";
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call (and the destructor's third) must be no-ops
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DrainWaitsForInFlightWithoutStoppingIntake) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      while (!release.load()) std::this_thread::yield();
      ran.fetch_add(1);
    });
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true);
  });
  pool.drain();
  EXPECT_EQ(ran.load(), 8) << "drain() returns only once all work finished";
  releaser.join();
  // drain() is a quiesce point, not a terminal state: intake continues.
  EXPECT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  pool.drain();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerThread) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  pool.parallel_for(16, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

}  // namespace
}  // namespace rota
