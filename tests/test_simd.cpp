// The SIMD kernels must be invisible: every StepFunction combine and
// min_value() answer must be bit-identical with the vector path on and off.
// The fuzz generators supply adversarial segment lists (collisions, negative
// rates, empty functions, sizes straddling the vectorization threshold);
// each case is evaluated twice with simd::set_enabled toggled and compared
// for exact equality. The raw kernels get direct coverage too, including the
// strided gather that scans Segment value lanes in place.
#include "rota/resource/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "rota/fuzz/gen.hpp"
#include "rota/resource/step_function.hpp"

namespace rota {
namespace {

// Toggles both the kernel gate and the (default-off) combine dispatch, so
// "on" really takes the vectorized StepFunction paths; restores the process
// defaults (kernels on, combines off) on exit.
class SimdGuard {
 public:
  explicit SimdGuard(bool on) {
    simd::set_enabled(on);
    simd::set_combine_enabled(on);
  }
  ~SimdGuard() {
    simd::set_enabled(true);
    simd::set_combine_enabled(false);
  }
};

TEST(SimdKernels, ElementwiseOpsMatchScalar) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(0, 67));
    std::vector<std::int64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(-1'000'000, 1'000'000);
      b[i] = rng.uniform(-1'000'000, 1'000'000);
    }
    std::vector<std::int64_t> out(n), ref(n);

    simd::add_i64(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] + b[i];
    EXPECT_EQ(out, ref);

    simd::sub_i64(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] - b[i];
    EXPECT_EQ(out, ref);

    simd::min_i64(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = std::min(a[i], b[i]);
    EXPECT_EQ(out, ref);

    simd::max_i64(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = std::max(a[i], b[i]);
    EXPECT_EQ(out, ref);
  }
}

TEST(SimdKernels, ElementwiseOpsAllowInPlaceOutput) {
  std::vector<std::int64_t> a{5, -3, 9, 0, 12, -7, 1, 8, 100};
  const std::vector<std::int64_t> b{1, 4, -2, 0, 3, -9, 6, 8, -1};
  std::vector<std::int64_t> ref(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) ref[i] = std::min(a[i], b[i]);
  simd::min_i64(a.data(), b.data(), a.data(), a.size());  // out == a
  EXPECT_EQ(a, ref);
}

TEST(SimdKernels, StridedMinScansSegmentValueLanes) {
  // Layout mirrors StepFunction::Segment: {start, end, value} as 3 int64s;
  // offset 2 selects the value lane.
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform(0, 23));
    std::vector<std::int64_t> flat(3 * n);
    std::int64_t expected = 0;  // mirrors min_value()'s implicit-zero floor
    for (std::size_t i = 0; i < n; ++i) {
      flat[3 * i + 0] = static_cast<std::int64_t>(i);
      flat[3 * i + 1] = static_cast<std::int64_t>(i) + 1;
      flat[3 * i + 2] = rng.uniform(-500, 500);
      expected = std::min(expected, flat[3 * i + 2]);
    }
    EXPECT_EQ(simd::strided_min_i64(flat.data(), n, 3, 2, 0), expected);
  }
}

TEST(SimdKernels, StridedMinHonoursFloorOnEmptyInput) {
  EXPECT_EQ(simd::strided_min_i64(nullptr, 0, 3, 2, 42), 42);
}

TEST(SimdKernels, DisableForcesScalarPath) {
  SimdGuard off(false);
  EXPECT_FALSE(simd::enabled());
  // Kernels still answer correctly through the scalar fallback.
  const std::vector<std::int64_t> a{1, 2, 3, 4, 5};
  const std::vector<std::int64_t> b{5, 4, 3, 2, 1};
  std::vector<std::int64_t> out(a.size());
  simd::max_i64(a.data(), b.data(), out.data(), a.size());
  EXPECT_EQ(out, (std::vector<std::int64_t>{5, 4, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// End-to-end parity: StepFunction combines answer identically with the
// vector path on and off, over fuzz-generated pairs. max_terms 24 puts most
// pairs over the 16-combined-segment vectorization threshold while keeping a
// tail of small inputs that exercise the scalar gate.

TEST(SimdStepFunctionParity, CombinesMatchScalarOnFuzzPairs) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    fuzz::Gen gen(seed);
    const StepFunction a = gen.step_function(24, true).first;
    const StepFunction b = gen.step_function(24, true).first;

    StepFunction plus_v, minus_v, min_v, max_v;
    Rate floor_a_v, floor_b_v;
    {
      SimdGuard on(true);
      plus_v = a.plus(b);
      minus_v = a.minus(b);
      min_v = a.min(b);
      max_v = a.max(b);
      floor_a_v = a.min_value();
      floor_b_v = b.min_value();
    }
    SimdGuard off(false);
    EXPECT_EQ(plus_v, a.plus(b)) << "seed " << seed;
    EXPECT_EQ(minus_v, a.minus(b)) << "seed " << seed;
    EXPECT_EQ(min_v, a.min(b)) << "seed " << seed;
    EXPECT_EQ(max_v, a.max(b)) << "seed " << seed;
    EXPECT_EQ(floor_a_v, a.min_value()) << "seed " << seed;
    EXPECT_EQ(floor_b_v, b.min_value()) << "seed " << seed;
  }
}

TEST(SimdStepFunctionParity, ThresholdStraddlingSizes) {
  // Build exact sizes around kVectorizeThreshold (16 combined segments) so
  // both sides of the dispatch gate run with the same seeds.
  for (int terms : {4, 8, 12, 16, 24}) {
    fuzz::Gen gen(static_cast<std::uint64_t>(100 + terms));
    StepFunction a, b;
    for (int i = 0; i < terms; ++i) {
      a = a.plus(gen.step_function(2, true).first);
      b = b.plus(gen.step_function(2, true).first);
    }
    StepFunction sum_v, diff_v;
    {
      SimdGuard on(true);
      sum_v = a.plus(b);
      diff_v = a.minus(b);
    }
    SimdGuard off(false);
    EXPECT_EQ(sum_v, a.plus(b)) << terms << " terms";
    EXPECT_EQ(diff_v, a.minus(b)) << terms << " terms";
  }
}

TEST(SimdStepFunctionParity, ExtremeValuesSurviveTheValuePass) {
  // Rates near the int64 midrange: the kernels must not widen, saturate, or
  // reorder anything. (Full-range rates would overflow plus() in both paths
  // equally, which is UB the calculus itself forbids.)
  const Rate big = std::numeric_limits<Rate>::max() / 4;
  StepFunction a, b;
  for (int i = 0; i < 12; ++i) {
    a = a.plus(StepFunction(TimeInterval(2 * i, 2 * i + 1), (i % 2 ? big : -big)));
    b = b.plus(StepFunction(TimeInterval(2 * i + 1, 2 * i + 2), (i % 2 ? -big : big)));
  }
  StepFunction sum_v, min_vv;
  Rate floor_v;
  {
    SimdGuard on(true);
    sum_v = a.plus(b);
    min_vv = a.min(b);
    floor_v = a.min_value();
  }
  SimdGuard off(false);
  EXPECT_EQ(sum_v, a.plus(b));
  EXPECT_EQ(min_vv, a.min(b));
  EXPECT_EQ(floor_v, a.min_value());
}

}  // namespace
}  // namespace rota
