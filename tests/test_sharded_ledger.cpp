// The sharded ledger's contract: per-shard revision counters must (a) move
// exactly when their locations' types change, (b) let the kernel salvage
// commits whose shard footprint is untouched while refusing ones whose
// footprint moved, and (c) never change a decision — the batched pipeline on
// a mixed-location workload must remain bit-identical to the monolithic
// sequential controller. Runs in the tsan-labeled runtime suite so the
// lock-free commit queue underneath admit_batch is exercised under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rota/admission/ledger.hpp"
#include "rota/admission/shard.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/plan/kernel.hpp"
#include "rota/plan/snapshot.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

class ShardedLedgerTest : public ::testing::Test {
 protected:
  Location l1{"sl-l1"};
  Location l2{"sl-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);

  ResourceSet two_node_supply() {
    ResourceSet s;
    s.add(8, TimeInterval(0, 100), cpu1);
    s.add(8, TimeInterval(0, 100), cpu2);
    s.add(8, TimeInterval(0, 100), LocatedType::network(l1, l2));
    return s;
  }

  ConcurrentRequirement cpu_job(const std::string& name, Location at, Tick s,
                                Tick d, std::int64_t weight = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", at).evaluate(weight).build();
    return make_concurrent_requirement(phi,
                                       DistributedComputation(name, {gamma}, s, d));
  }

  ConcurrentRequirement link_job(const std::string& name, Tick s, Tick d) {
    auto gamma = ActorComputationBuilder(name + ".a", l1)
                     .evaluate(1)
                     .send(l2, 2)
                     .build();
    return make_concurrent_requirement(phi,
                                       DistributedComputation(name, {gamma}, s, d));
  }
};

TEST_F(ShardedLedgerTest, MutationsBumpOnlyTouchedShards) {
  // The two test locations must land on distinct shards for the test to
  // observe isolation; the interned ids are small, so with 16 shards this
  // holds unless the suite creates hundreds of locations first.
  ASSERT_NE(shard_of(cpu1), shard_of(cpu2));

  CommitmentLedger ledger(two_node_supply(), 0);
  const ShardRevisions before = ledger.shard_revisions();
  const std::uint64_t global_before = ledger.revision();

  ResourceSet extra;
  extra.add(2, TimeInterval(10, 20), cpu1);
  ledger.join(extra);

  EXPECT_EQ(ledger.revision(), global_before + 1);
  EXPECT_EQ(ledger.shard_revision(shard_of(cpu1)), before[shard_of(cpu1)] + 1);
  EXPECT_EQ(ledger.shard_revision(shard_of(cpu2)), before[shard_of(cpu2)]);
}

TEST_F(ShardedLedgerTest, AdmitBumpsTheShardsOfThePlanUsage) {
  CommitmentLedger ledger(two_node_supply(), 0);
  PlanningKernel kernel;
  const ShardRevisions before = ledger.shard_revisions();

  const AdmissionDecision d = kernel.decide(ledger, cpu_job("x", l2, 0, 50), 0);
  ASSERT_TRUE(d.accepted);

  EXPECT_GT(ledger.shard_revision(shard_of(cpu2)), before[shard_of(cpu2)]);
  EXPECT_EQ(ledger.shard_revision(shard_of(cpu1)), before[shard_of(cpu1)]);
}

TEST_F(ShardedLedgerTest, TouchedMaskCoversEveryDemandedLocation) {
  const ConcurrentRequirement rho = link_job("move", 0, 50);
  const ShardMask mask = touched_shard_mask(rho);
  EXPECT_TRUE(mask & (ShardMask{1} << shard_of(cpu1)));
  EXPECT_TRUE(mask & (ShardMask{1} << shard_of(LocatedType::network(l1, l2))));
}

TEST_F(ShardedLedgerTest, CommitSalvagedAcrossForeignShardTraffic) {
  CommitmentLedger ledger(two_node_supply(), 0);
  PlanningKernel kernel;

  // Speculate a job on l2, then admit unrelated traffic on l1 behind its
  // back. The global revision moves; the l2 shard does not.
  const ConcurrentRequirement on_l2 = cpu_job("later", l2, 0, 60);
  const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(ledger);
  PlanResult spec = kernel.speculate(on_l2, 0, snap);
  ASSERT_TRUE(spec.feasible());
  ASSERT_TRUE(spec.sharded);

  ASSERT_TRUE(kernel.decide(ledger, cpu_job("first", l1, 0, 60), 0).accepted);
  ASSERT_NE(spec.revision, ledger.revision());

  // Reference: what a fresh sequential decision would say *now*.
  CommitmentLedger reference = ledger;
  const AdmissionDecision expected = kernel.decide(reference, on_l2, 0);

  AdmissionDecision actual;
  EXPECT_EQ(kernel.commit(spec, ledger, actual), CommitStatus::kCommitted);
  EXPECT_EQ(expected.accepted, actual.accepted);
  ASSERT_TRUE(actual.plan.has_value());
  EXPECT_EQ(*expected.plan, *actual.plan);
  EXPECT_EQ(ledger.residual(), reference.residual());
}

TEST_F(ShardedLedgerTest, CommitStaleWhenOwnShardMoved) {
  CommitmentLedger ledger(two_node_supply(), 0);
  PlanningKernel kernel;

  const ConcurrentRequirement on_l1 = cpu_job("later", l1, 0, 60);
  const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(ledger);
  PlanResult spec = kernel.speculate(on_l1, 0, snap);
  ASSERT_TRUE(spec.feasible());

  // Same-shard traffic invalidates the speculation.
  ASSERT_TRUE(kernel.decide(ledger, cpu_job("first", l1, 0, 60), 0).accepted);

  AdmissionDecision ignored;
  EXPECT_EQ(kernel.commit(spec, ledger, ignored), CommitStatus::kStale);
}

TEST_F(ShardedLedgerTest, DeadlinePassedResultSurvivesAnyLedgerMotion) {
  CommitmentLedger ledger(two_node_supply(), 0);
  PlanningKernel kernel;

  // Arrives after its own deadline: reads nothing from the residual.
  const ConcurrentRequirement late = cpu_job("late", l1, 0, 5);
  const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(ledger);
  PlanResult spec = kernel.speculate(late, 10, snap);
  ASSERT_EQ(spec.status, PlanStatus::kDeadlinePassed);

  ASSERT_TRUE(kernel.decide(ledger, cpu_job("first", l1, 10, 60), 10).accepted);

  AdmissionDecision d;
  EXPECT_EQ(kernel.commit(spec, ledger, d), CommitStatus::kCommitted);
  EXPECT_FALSE(d.accepted);
  EXPECT_NE(d.reason.find("deadline"), std::string::npos);
}

TEST_F(ShardedLedgerTest, DetachedSnapshotsNeverSalvage) {
  CommitmentLedger ledger(two_node_supply(), 0);
  PlanningKernel kernel;

  // over() views carry no shard stamps; their results must stay
  // speculation-only even though the shard sums trivially "match".
  const ResourceSet supply = ledger.residual();
  const FeasibilitySnapshot detached = FeasibilitySnapshot::over(supply, 0);
  PlanResult spec = kernel.speculate(cpu_job("probe", l1, 0, 60), 0, detached);
  ASSERT_TRUE(spec.feasible());
  EXPECT_FALSE(spec.sharded);

  ASSERT_TRUE(kernel.decide(ledger, cpu_job("first", l2, 0, 60), 0).accepted);
  AdmissionDecision ignored;
  EXPECT_EQ(kernel.commit(spec, ledger, ignored), CommitStatus::kStale);
}

// ---------------------------------------------------------------------------
// Pipeline equivalence: sharded optimistic concurrency vs the monolithic
// sequential controller, on workloads that mix locations (so cross-shard and
// same-shard conflicts both occur). These are the tsan hammer cases: many
// lanes, many requests, accept-heavy and reject-heavy mixes.

std::vector<BatchRequest> generated_requests(WorkloadConfig config, Tick horizon,
                                             const CostModel& phi) {
  WorkloadGenerator gen(config, phi);
  std::vector<BatchRequest> out;
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    out.push_back(BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  return out;
}

void expect_equivalent_to_sequential(WorkloadConfig config, Tick horizon,
                                     std::size_t lanes) {
  CostModel phi;
  const auto requests = generated_requests(config, horizon, phi);
  ASSERT_GT(requests.size(), 50u);
  const ResourceSet supply =
      WorkloadGenerator(config, phi).base_supply(TimeInterval(0, horizon));

  RotaAdmissionController sequential(phi, supply);
  std::vector<AdmissionDecision> expected;
  expected.reserve(requests.size());
  for (const auto& r : requests) expected.push_back(sequential.request(r.rho, r.at));

  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, lanes);
  const auto actual = batch.admit_batch(requests);

  ASSERT_EQ(expected.size(), actual.size());
  std::size_t accepts = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].accepted, actual[i].accepted) << "request #" << i;
    EXPECT_EQ(expected[i].reason, actual[i].reason) << "request #" << i;
    ASSERT_EQ(expected[i].plan.has_value(), actual[i].plan.has_value())
        << "request #" << i;
    if (expected[i].plan) {
      EXPECT_EQ(*expected[i].plan, *actual[i].plan);
    }
    accepts += expected[i].accepted ? 1 : 0;
  }
  // The workload must exercise both outcomes or the equivalence is vacuous.
  EXPECT_GT(accepts, 0u);
  EXPECT_LT(accepts, expected.size());

  // Monolithic and sharded bookkeeping agree on the final state, including
  // FCFS admission order.
  EXPECT_EQ(sequential.ledger().residual(), batch.ledger().residual());
  ASSERT_EQ(sequential.ledger().admitted().size(), batch.ledger().admitted().size());
  for (std::size_t i = 0; i < sequential.ledger().admitted().size(); ++i) {
    EXPECT_EQ(sequential.ledger().admitted()[i].name,
              batch.ledger().admitted()[i].name)
        << "FCFS order diverged at admitted #" << i;
  }
}

TEST(ShardedPipelineEquivalence, MixedLocationsManyLanes) {
  for (std::uint64_t seed : {2u, 13u, 29u}) {
    WorkloadConfig config;
    config.seed = seed;
    config.num_locations = 6;  // spreads demand across shards
    config.mean_interarrival = 3.0;
    config.laxity = 1.5;
    expect_equivalent_to_sequential(config, 400, 8);
  }
}

TEST(ShardedPipelineEquivalence, SaturatedSameShardContention) {
  // One location: every accept invalidates every in-flight speculation —
  // maximal stale-redo pressure on the commit queue.
  WorkloadConfig config;
  config.seed = 5;
  config.num_locations = 1;
  config.mean_interarrival = 2.0;
  config.laxity = 1.3;
  expect_equivalent_to_sequential(config, 300, 8);
}

TEST(ShardedPipelineEquivalence, AcceptHeavyCrossShardPipeline) {
  // Light traffic over many locations: most speculations commit via the
  // salvage path (foreign-shard accepts between speculation and commit).
  WorkloadConfig config;
  config.seed = 17;
  config.num_locations = 8;
  config.mean_interarrival = 8.0;
  config.laxity = 2.0;
  expect_equivalent_to_sequential(config, 600, 4);
}

}  // namespace
}  // namespace rota
