// The symbolic cut-point feasibility engine: exactness on instances the
// greedy planner misjudges, agreement with the explorer where both decide,
// witness validity, verdict semantics (kUnknown under a starved budget), and
// the wiring into search_feasible, the model checker, and the planning
// kernel's multi-actor admission probe.
#include "rota/logic/symbolic/feasibility.hpp"

#include <gtest/gtest.h>

#include "rota/admission/controller.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/logic/planner.hpp"

namespace rota {
namespace {

class SymbolicTest : public ::testing::Test {
 protected:
  Location l1{"sy-l1"};
  LocatedType cpu1 = LocatedType::cpu(l1);

  ResourceSet supply(Rate rate, Tick until) {
    ResourceSet s;
    s.add(rate, TimeInterval(0, until), cpu1);
    return s;
  }

  Phase cpu_phase(Quantity q) {
    Phase p;
    p.demand.add(cpu1, q);
    p.first_action = 0;
    p.action_count = 1;
    return p;
  }

  ComplexRequirement actor(const std::string& name, Quantity q,
                           const TimeInterval& window, Rate cap = 0) {
    return ComplexRequirement(name, {cpu_phase(q)}, window, cap);
  }

  /// supply 2/tick over [0, 3); A wants 3 uncapped, B wants 3 at cap 1.
  /// Feasible exactly one way (B drips 1 every tick, A absorbs the rest), but
  /// the sequential planner plans A first, lets it gulp 2+1, and starves B —
  /// the canonical greedy-rejection the symbolic engine must overturn.
  ConcurrentRequirement rescue_rho() {
    const TimeInterval w(0, 3);
    return ConcurrentRequirement(
        "rescue", {actor("rescue.a", 3, w, 0), actor("rescue.b", 3, w, 1)}, w);
  }

  SystemState rescue_state() {
    SystemState s(supply(2, 3), 0);
    s.accommodate(rescue_rho());
    return s;
  }

  /// One uncapped hog (12 cpu) ranked first, then n-1 drips (12 cpu at cap 1
  /// over [0, 12) — zero slack); supply n/tick. Feasible only when every
  /// drip outranks the hog, so every greedy order (all tie on deadline and
  /// laxity, falling back to index order) fails, and the permutation sweep
  /// refuses to brute-force above max_permuted.
  SystemState drip_hog_state(std::size_t n) {
    const TimeInterval w(0, 12);
    std::vector<ComplexRequirement> actors;
    actors.push_back(actor("hog", 12, w, 0));
    for (std::size_t i = 0; i + 1 < n; ++i) {
      actors.push_back(actor("drip" + std::to_string(i), 12, w, 1));
    }
    SystemState s(supply(static_cast<Rate>(n), 12), 0);
    s.accommodate(ConcurrentRequirement("dh", std::move(actors), w));
    return s;
  }
};

TEST_F(SymbolicTest, SingleActorAgreesWithPlanner) {
  const TimeInterval w(0, 6);
  for (const Rate cap : {Rate{0}, Rate{1}, Rate{2}}) {
    for (const Quantity q : {Quantity{3}, Quantity{6}, Quantity{9}}) {
      const ComplexRequirement a = actor("solo", q, w, cap);
      const ResourceSet avail = supply(2, 6);
      const bool planned = plan_actor(avail, a, PlanningPolicy::kAsap).has_value();
      SystemState s(avail, 0);
      s.accommodate(ConcurrentRequirement("solo", {a}, w));
      const FeasibilityResult r = decide_feasibility(s, 6);
      ASSERT_NE(r.verdict, FeasibilityVerdict::kUnknown);
      EXPECT_EQ(r.feasible(), planned)
          << "cap " << cap << ", q " << q << ": planner and symbolic disagree";
    }
  }
}

TEST_F(SymbolicTest, OverturnsOrderSensitiveGreedyRejection) {
  // The greedy planner rejects the [A, B] order…
  EXPECT_FALSE(plan_concurrent(supply(2, 3), rescue_rho(), PlanningPolicy::kAsap));
  // …but the instance is feasible, and the witness replays.
  const SystemState s = rescue_state();
  const FeasibilityResult r = decide_feasibility(s, 3);
  ASSERT_EQ(r.verdict, FeasibilityVerdict::kFeasible);
  const auto path = realize_feasibility(s, r);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->back().all_finished());
}

TEST_F(SymbolicTest, WitnessScheduleMeetsDemandsAndBoundaries) {
  const SystemState s = rescue_state();
  const FeasibilityResult r = decide_feasibility(s, 3);
  ASSERT_TRUE(r.feasible());
  // Single-phase actors: boundaries are [release, deadline], no free cuts.
  ASSERT_EQ(r.boundaries.size(), 2u);
  for (const auto& cuts : r.boundaries) {
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_EQ(cuts.front(), 0);
    EXPECT_EQ(cuts.back(), 3);
  }
  EXPECT_EQ(r.stats.free_cuts, 0u);
  // Per-commitment totals match the demands; B never exceeds its cap.
  Quantity got_a = 0, got_b = 0;
  for (std::size_t t = 0; t < r.schedule.size(); ++t) {
    for (const ConsumptionLabel& label : r.schedule[t]) {
      EXPECT_EQ(label.type, cpu1);
      if (label.commitment == 0) got_a += label.rate;
      if (label.commitment == 1) {
        got_b += label.rate;
        EXPECT_LE(label.rate, 1);
      }
    }
  }
  EXPECT_EQ(got_a, 3);
  EXPECT_EQ(got_b, 3);
}

TEST_F(SymbolicTest, AgreesOnInfeasibleInstances) {
  // Total demand 7 > total supply 6: both engines must say no.
  const TimeInterval w(0, 3);
  SystemState s(supply(2, 3), 0);
  s.accommodate(ConcurrentRequirement(
      "over", {actor("over.a", 4, w), actor("over.b", 3, w, 1)}, w));
  const FeasibilityResult r = decide_feasibility(s, 3);
  EXPECT_EQ(r.verdict, FeasibilityVerdict::kInfeasible);
  EXPECT_FALSE(search_feasible(s, 3).has_value());
}

TEST_F(SymbolicTest, DecidesAboveThePermutationCeiling) {
  const SystemState s = drip_hog_state(8);  // 8 commitments > max_permuted 6

  SearchOptions explorer_only;
  explorer_only.engine = FeasibilityEngine::kExplorer;
  EXPECT_FALSE(search_feasible(s, 12, explorer_only).has_value())
      << "the sweep should refuse 8 commitments, not brute-force 8!";

  const FeasibilityResult r = decide_feasibility(s, 12);
  ASSERT_EQ(r.verdict, FeasibilityVerdict::kFeasible);
  // Single-phase actors: the whole decision is one polynomial flow check.
  EXPECT_EQ(r.stats.nodes, 0u);

  // The kAuto ladder turns that verdict into a concrete path.
  const auto path = search_feasible(s, 12);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->back().all_finished());
}

// Fuzz-minimized (feasibility family): a rate cap can make a feasible
// single-phase instance need a priority *switch* between ticks — give the
// capped actor its cap first, then yield the remainder — which no static
// permutation expresses. Supply 5/tick; A wants 8 at cap 3 over [0, 3); B
// wants 5 uncapped over [0, 2). The only schedules interleave A=3,B=2 then
// B=3,A=2 then A=3, but every static order starves one of them: B-first lets
// B gulp 5 and leaves A at most 6, A-first drips B 2+2 < 5. The sweep must
// refuse, the symbolic engine must decide feasible with a replayable
// witness, and the kAuto ladder must turn it into a path.
TEST_F(SymbolicTest, CappedSinglePhaseBeyondStaticOrdersIsDecidedFeasible) {
  const TimeInterval w(0, 3);
  SystemState s(supply(5, 3), 0);
  s.accommodate(ConcurrentRequirement(
      "cap", {actor("cap.a", 8, w, 3), actor("cap.b", 5, TimeInterval(0, 2))},
      w));

  SearchOptions explorer_only;
  explorer_only.engine = FeasibilityEngine::kExplorer;
  EXPECT_FALSE(search_feasible(s, 3, explorer_only).has_value())
      << "a static order that schedules this instance would be news";

  const FeasibilityResult r = decide_feasibility(s, 3);
  ASSERT_EQ(r.verdict, FeasibilityVerdict::kFeasible);
  EXPECT_TRUE(realize_feasibility(s, r).has_value());

  const auto path = search_feasible(s, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->back().all_finished());
}

TEST_F(SymbolicTest, StarvedBudgetReportsUnknownAndAutoFallsBack) {
  // Two-phase variant of the rescue instance: every greedy order still lets
  // A starve B, and A's second phase adds a free cut, so the DFS must expand
  // at least one node — which a zero budget forbids.
  const TimeInterval w(0, 3);
  ComplexRequirement two_phase("tp.a", {cpu_phase(2), cpu_phase(1)}, w, 0);
  SystemState s(supply(2, 3), 0);
  s.accommodate(
      ConcurrentRequirement("tp", {two_phase, actor("tp.b", 3, w, 1)}, w));

  FeasibilityOptions starved;
  starved.node_budget = 0;
  EXPECT_EQ(decide_feasibility(s, 3, starved).verdict,
            FeasibilityVerdict::kUnknown);
  EXPECT_EQ(decide_feasibility(s, 3).verdict, FeasibilityVerdict::kFeasible);

  // kAuto with the starved budget still decides via the permutation sweep;
  // kSymbolic alone must give up.
  SearchOptions auto_opts;
  auto_opts.symbolic = starved;
  EXPECT_TRUE(search_feasible(s, 3, auto_opts).has_value());
  SearchOptions symbolic_only;
  symbolic_only.engine = FeasibilityEngine::kSymbolic;
  symbolic_only.symbolic = starved;
  EXPECT_FALSE(search_feasible(s, 3, symbolic_only).has_value());
}

TEST_F(SymbolicTest, OversizedTickSpanReportsUnknown) {
  const TimeInterval w(0, 600);
  SystemState s(supply(1, 600), 0);
  s.accommodate(ConcurrentRequirement("long", {actor("long.a", 4, w)}, w));
  FeasibilityOptions narrow;
  narrow.max_ticks = 16;
  EXPECT_EQ(decide_feasibility(s, 600, narrow).verdict,
            FeasibilityVerdict::kUnknown);
}

TEST_F(SymbolicTest, ModelCheckerEngineSelectorChangesTheVerdict) {
  const ResourceSet avail = supply(2, 3);
  ComputationPath path(SystemState(avail, 0));
  const FormulaPtr f = f_satisfy(rescue_rho());

  const ModelChecker greedy_only(path, PlanningPolicy::kAsap,
                                 FeasibilityEngine::kGreedy);
  EXPECT_FALSE(greedy_only.satisfies(f, 0));

  const ModelChecker exact(path);  // kAuto default
  EXPECT_TRUE(exact.satisfies(f, 0));
}

TEST_F(SymbolicTest, KernelAdmissionProbeRescuesContendedRequests) {
  // The admission surface shares the verdict: a controller must accept the
  // rescue instance even though the sequential planner rejects its order.
  RotaAdmissionController ctl(CostModel{}, supply(2, 3));
  const AdmissionDecision d = ctl.request(rescue_rho(), 0);
  EXPECT_TRUE(d.accepted) << d.reason;
  ASSERT_TRUE(d.plan.has_value());
  EXPECT_LE(d.plan->finish, 3);

  // The kAlap ablation deliberately keeps its own (incomplete) behavior.
  RotaAdmissionController alap(CostModel{}, supply(2, 3),
                               PlanningPolicy::kAlap);
  EXPECT_FALSE(alap.request(rescue_rho(), 0).accepted);
}

TEST_F(SymbolicTest, SymbolicPlanCoversDemandWithinWindows) {
  const auto plan = symbolic_concurrent_plan(supply(2, 3), rescue_rho(), 0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->actors.size(), 2u);
  EXPECT_LE(plan->finish, 3);
  for (std::size_t i = 0; i < plan->actors.size(); ++i) {
    const ActorPlan& ap = plan->actors[i];
    Quantity total = 0;
    for (const auto& [type, usage] : ap.usage) {
      EXPECT_EQ(type, cpu1);
      total += usage.integral();
    }
    EXPECT_EQ(total, 3) << "actor " << ap.actor;
  }
}

}  // namespace
}  // namespace rota
