#include "rota/workload/generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

WorkloadConfig small_config(std::uint64_t seed) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_locations = 3;
  c.actors_min = 1;
  c.actors_max = 3;
  c.actions_min = 2;
  c.actions_max = 6;
  return c;
}

TEST(Workload, InvalidConfigsThrow) {
  WorkloadConfig c = small_config(1);
  c.num_locations = 0;
  EXPECT_THROW(WorkloadGenerator(c, CostModel()), std::invalid_argument);
  c = small_config(1);
  c.actors_min = 0;
  EXPECT_THROW(WorkloadGenerator(c, CostModel()), std::invalid_argument);
  c = small_config(1);
  c.actions_min = 5;
  c.actions_max = 2;
  EXPECT_THROW(WorkloadGenerator(c, CostModel()), std::invalid_argument);
}

TEST(Workload, LocationsAreNamedAndDistinct) {
  WorkloadGenerator gen(small_config(1), CostModel());
  ASSERT_EQ(gen.locations().size(), 3u);
  EXPECT_NE(gen.locations()[0], gen.locations()[1]);
  EXPECT_NE(gen.locations()[1], gen.locations()[2]);
}

TEST(Workload, BaseSupplyCoversAllNodesAndLinks) {
  WorkloadGenerator gen(small_config(1), CostModel());
  ResourceSet supply = gen.base_supply(TimeInterval(0, 100));
  // 3 cpu types + 6 directed links.
  EXPECT_EQ(supply.types().size(), 9u);
  for (const Location& l : gen.locations()) {
    EXPECT_EQ(supply.availability(LocatedType::cpu(l)).value_at(50), 10);
  }
}

TEST(Workload, SameSeedSameWorkload) {
  WorkloadGenerator a(small_config(7), CostModel());
  WorkloadGenerator b(small_config(7), CostModel());
  auto arrivals_a = a.make_arrivals(500);
  auto arrivals_b = b.make_arrivals(500);
  ASSERT_EQ(arrivals_a.size(), arrivals_b.size());
  for (std::size_t i = 0; i < arrivals_a.size(); ++i) {
    EXPECT_EQ(arrivals_a[i].at, arrivals_b[i].at);
    EXPECT_EQ(arrivals_a[i].computation, arrivals_b[i].computation);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadGenerator a(small_config(7), CostModel());
  WorkloadGenerator b(small_config(8), CostModel());
  auto arrivals_a = a.make_arrivals(500);
  auto arrivals_b = b.make_arrivals(500);
  bool differs = arrivals_a.size() != arrivals_b.size();
  for (std::size_t i = 0; !differs && i < arrivals_a.size(); ++i) {
    differs = arrivals_a[i].at != arrivals_b[i].at ||
              !(arrivals_a[i].computation == arrivals_b[i].computation);
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, ComputationShapeRespectsBounds) {
  WorkloadGenerator gen(small_config(3), CostModel());
  for (int i = 0; i < 50; ++i) {
    DistributedComputation c = gen.make_computation(10);
    EXPECT_GE(c.actors().size(), 1u);
    EXPECT_LE(c.actors().size(), 3u);
    for (const auto& g : c.actors()) {
      EXPECT_GE(g.action_count(), 2u);
      EXPECT_LE(g.action_count(), 6u);
    }
    EXPECT_EQ(c.earliest_start(), 10);
    EXPECT_GT(c.deadline(), 10);
  }
}

TEST(Workload, ArrivalsAreMonotoneAndBounded) {
  WorkloadGenerator gen(small_config(5), CostModel());
  auto arrivals = gen.make_arrivals(300);
  EXPECT_FALSE(arrivals.empty());
  Tick prev = 0;
  for (const auto& a : arrivals) {
    EXPECT_GE(a.at, prev);
    EXPECT_LT(a.at, 300);
    EXPECT_EQ(a.computation.earliest_start(), a.at);
    prev = a.at;
  }
}

TEST(Workload, LaxityScalesWindows) {
  WorkloadConfig tight = small_config(11);
  tight.laxity = 1.0;
  WorkloadConfig loose = small_config(11);
  loose.laxity = 4.0;
  WorkloadGenerator tg(tight, CostModel());
  WorkloadGenerator lg(loose, CostModel());
  // Same seed → same structure; windows differ by the laxity factor.
  Tick tight_total = 0, loose_total = 0;
  for (int i = 0; i < 20; ++i) {
    tight_total += tg.make_computation(0).window().length();
    loose_total += lg.make_computation(0).window().length();
  }
  EXPECT_LT(tight_total * 2, loose_total);
}

TEST(Workload, ChurnEventsSortedWithLifetimes) {
  WorkloadGenerator gen(small_config(9), CostModel());
  ChurnTrace trace = gen.make_churn(200, 0.5, 30.0, 6);
  EXPECT_FALSE(trace.empty());
  Tick prev = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.at, prev);
    EXPECT_LT(e.at, 200);
    EXPECT_EQ(e.term.interval().start(), e.at);
    EXPECT_GT(e.term.interval().length(), 0);
    EXPECT_GE(e.term.rate(), 1);
    EXPECT_LE(e.term.rate(), 6);
    prev = e.at;
  }
}

TEST(Workload, ChurnParametersValidated) {
  WorkloadGenerator gen(small_config(9), CostModel());
  EXPECT_THROW(gen.make_churn(100, 0.0, 30.0, 6), std::invalid_argument);
  EXPECT_THROW(gen.make_churn(100, 0.5, -1.0, 6), std::invalid_argument);
  EXPECT_THROW(gen.make_churn(100, 0.5, 30.0, 0), std::invalid_argument);
}

TEST(Workload, ChurnTotalSupplyAggregates) {
  ChurnTrace trace;
  Location l{"wk-agg"};
  trace.add(0, ResourceTerm(2, TimeInterval(0, 10), LocatedType::cpu(l)));
  trace.add(5, ResourceTerm(3, TimeInterval(5, 10), LocatedType::cpu(l)));
  ResourceSet total = trace.total_supply();
  EXPECT_EQ(total.availability(LocatedType::cpu(l)).value_at(7), 5);
}

TEST(Workload, SingleLocationWorkloadNeverSendsRemotely) {
  WorkloadConfig c = small_config(13);
  c.num_locations = 1;
  c.p_send = 0.9;     // would mostly send, but there is nowhere to send to
  c.p_migrate = 0.1;  // likewise
  WorkloadGenerator gen(c, CostModel());
  for (int i = 0; i < 20; ++i) {
    DistributedComputation comp = gen.make_computation(0);
    for (const auto& g : comp.actors()) {
      for (const auto& action : g.actions()) {
        EXPECT_NE(action.kind, ActionKind::kMigrate);
        if (action.kind == ActionKind::kSend) {
          EXPECT_EQ(action.at, action.to);
        }
      }
    }
  }
}

// ---- time-varying arrival patterns (diurnal + flash crowd) ----------------

TEST(ArrivalPattern, RateComposesDiurnalAndFlash) {
  ArrivalPattern p;
  p.base_mean_interarrival = 10.0;  // base rate 0.1/tick
  p.diurnal_amplitude = 0.5;
  p.diurnal_period = 400;
  p.flash_multiplier = 4.0;
  p.flash_at = 500;
  p.flash_duration = 100;
  EXPECT_DOUBLE_EQ(p.rate_at(0), 0.1);                // sin(0) = 0
  EXPECT_NEAR(p.rate_at(100), 0.1 * 1.5, 1e-12);      // diurnal crest
  EXPECT_NEAR(p.rate_at(300), 0.1 * 0.5, 1e-12);      // diurnal trough
  EXPECT_NEAR(p.rate_at(500), 4.0 * p.rate_at(100),   // flash multiplies;
              1e-12);                                  // 500 ≡ 100 mod 400
  EXPECT_DOUBLE_EQ(p.rate_at(600), 0.1);              // window is half-open
  EXPECT_NEAR(p.peak_rate(), 0.1 * 1.5 * 4.0, 1e-12);
  for (Tick t = 0; t < 1200; t += 7) {
    EXPECT_LE(p.rate_at(t), p.peak_rate() + 1e-12) << "t=" << t;
  }
}

TEST(ArrivalPattern, InvalidPatternsThrow) {
  WorkloadGenerator gen(small_config(5), CostModel());
  ArrivalPattern p;
  p.base_mean_interarrival = 0.0;
  EXPECT_THROW(gen.make_arrivals(100, p), std::invalid_argument);
  p = ArrivalPattern{};
  p.diurnal_amplitude = 1.0;  // would zero the trough rate
  p.diurnal_period = 100;
  EXPECT_THROW(gen.make_arrivals(100, p), std::invalid_argument);
  p = ArrivalPattern{};
  p.flash_multiplier = 0.5;  // a flash *crowd*, not a flash drought
  p.flash_duration = 10;
  EXPECT_THROW(gen.make_arrivals(100, p), std::invalid_argument);
}

TEST(ArrivalPattern, SeededTracesAreReproducible) {
  ArrivalPattern p;
  p.base_mean_interarrival = 5.0;
  p.diurnal_amplitude = 0.4;
  p.diurnal_period = 200;
  p.flash_multiplier = 6.0;
  p.flash_at = 300;
  p.flash_duration = 50;
  WorkloadGenerator a(small_config(99), CostModel());
  WorkloadGenerator b(small_config(99), CostModel());
  const auto ta = a.make_arrivals(600, p);
  const auto tb = b.make_arrivals(600, p);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].computation, tb[i].computation);
  }
  ASSERT_FALSE(ta.empty());
  for (std::size_t i = 1; i < ta.size(); ++i) {
    EXPECT_LE(ta[i - 1].at, ta[i].at);
  }
}

TEST(ArrivalPattern, FlashWindowIsDenserThanBaseline) {
  ArrivalPattern p;
  p.base_mean_interarrival = 10.0;
  p.flash_multiplier = 10.0;
  p.flash_at = 1000;
  p.flash_duration = 1000;
  WorkloadGenerator gen(small_config(7), CostModel());
  const auto arrivals = gen.make_arrivals(3000, p);
  std::size_t in_flash = 0, outside = 0;
  for (const Arrival& a : arrivals) {
    (a.at >= 1000 && a.at < 2000 ? in_flash : outside)++;
  }
  // Expected ~100 inside vs ~200 outside the 1000-tick window; even at
  // Poisson noise the 10x rate dominates per-tick density.
  EXPECT_GT(in_flash, 2 * outside)
      << "flash " << in_flash << " vs outside " << outside;
}

TEST(ArrivalPattern, HomogeneousPatternMatchesPlainArrivalStats) {
  // With no diurnal and no flash the pattern is a plain Poisson process:
  // thinning accepts everything (rate == peak), so the gap distribution
  // must match make_arrivals' within sampling noise.
  WorkloadGenerator gen(small_config(21), CostModel());
  ArrivalPattern p;
  p.base_mean_interarrival = 5.0;
  const auto arrivals = gen.make_arrivals(5000, p);
  ASSERT_GT(arrivals.size(), 500u);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1000.0, 200.0);
}

}  // namespace
}  // namespace rota
