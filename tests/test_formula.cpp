#include "rota/logic/formula.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  Location l1{"fm-l1"};
  LocatedType cpu1 = LocatedType::cpu(l1);

  SimpleRequirement simple() {
    DemandSet d;
    d.add(cpu1, 4);
    return SimpleRequirement(d, TimeInterval(0, 5));
  }
};

TEST_F(FormulaTest, Atoms) {
  EXPECT_TRUE(std::holds_alternative<TrueAtom>(f_true()->node()));
  EXPECT_TRUE(std::holds_alternative<FalseAtom>(f_false()->node()));
  EXPECT_TRUE(std::holds_alternative<SatisfySimple>(f_satisfy(simple())->node()));
}

TEST_F(FormulaTest, SatisfyOverloadsPickRightAlternative) {
  ComplexRequirement complex("a", {}, TimeInterval(0, 5));
  ConcurrentRequirement concurrent("j", {}, TimeInterval(0, 5));
  EXPECT_TRUE(std::holds_alternative<SatisfyComplex>(f_satisfy(complex)->node()));
  EXPECT_TRUE(
      std::holds_alternative<SatisfyConcurrent>(f_satisfy(concurrent)->node()));
}

TEST_F(FormulaTest, Composition) {
  FormulaPtr psi = f_always(f_not(f_eventually(f_satisfy(simple()))));
  EXPECT_EQ(psi->size(), 4u);
  const auto* always = std::get_if<AlwaysOp>(&psi->node());
  ASSERT_NE(always, nullptr);
  EXPECT_TRUE(std::holds_alternative<NotOp>(always->operand->node()));
}

TEST_F(FormulaTest, SizeCountsNodes) {
  EXPECT_EQ(f_true()->size(), 1u);
  EXPECT_EQ(f_not(f_true())->size(), 2u);
  EXPECT_EQ(f_eventually(f_not(f_false()))->size(), 3u);
}

TEST_F(FormulaTest, NullOperandsThrow) {
  EXPECT_THROW(f_not(nullptr), std::invalid_argument);
  EXPECT_THROW(f_eventually(nullptr), std::invalid_argument);
  EXPECT_THROW(f_always(nullptr), std::invalid_argument);
}

TEST_F(FormulaTest, ToString) {
  EXPECT_EQ(f_true()->to_string(), "true");
  EXPECT_EQ(f_false()->to_string(), "false");
  EXPECT_EQ(f_not(f_true())->to_string(), "!(true)");
  EXPECT_EQ(f_eventually(f_true())->to_string(), "<>(true)");
  EXPECT_EQ(f_always(f_false())->to_string(), "[](false)");
  EXPECT_NE(f_satisfy(simple())->to_string().find("satisfy("), std::string::npos);
}

TEST_F(FormulaTest, SharedSubformulas) {
  FormulaPtr atom = f_satisfy(simple());
  FormulaPtr a = f_eventually(atom);
  FormulaPtr b = f_always(atom);  // same child shared
  EXPECT_EQ(std::get<EventuallyOp>(a->node()).operand.get(),
            std::get<AlwaysOp>(b->node()).operand.get());
}

}  // namespace
}  // namespace rota
