#include "rota/io/scenario.hpp"

#include <gtest/gtest.h>

#include "rota/computation/requirement.hpp"
#include "rota/logic/planner.hpp"

namespace rota {
namespace {

const char* kDemo = R"(
# A two-node system.
supply cpu l1 5 0 10
supply cpu l2 4 0 12
supply network l1 l2 4 0 12

computation job1 0 20
  actor a1 l1
    evaluate 2
    send l2 1
    ready
end

computation job2 5 25
  actor b1 l2
    evaluate 1
  actor b2 l1
    create 1
    ready
end
)";

TEST(ScenarioIo, ParsesSupply) {
  Scenario s = parse_scenario_string(kDemo);
  EXPECT_EQ(s.supply.availability(LocatedType::cpu(Location("l1"))).value_at(3), 5);
  EXPECT_EQ(s.supply.availability(LocatedType::cpu(Location("l2"))).value_at(11), 4);
  EXPECT_EQ(s.supply
                .availability(LocatedType::network(Location("l1"), Location("l2")))
                .value_at(0),
            4);
}

TEST(ScenarioIo, ParsesComputations) {
  Scenario s = parse_scenario_string(kDemo);
  ASSERT_EQ(s.computations.size(), 2u);
  const DistributedComputation& job1 = s.computations[0];
  EXPECT_EQ(job1.name(), "job1");
  EXPECT_EQ(job1.window(), TimeInterval(0, 20));
  ASSERT_EQ(job1.actors().size(), 1u);
  ASSERT_EQ(job1.actors()[0].action_count(), 3u);
  EXPECT_EQ(job1.actors()[0].actions()[0].kind, ActionKind::kEvaluate);
  EXPECT_EQ(job1.actors()[0].actions()[0].size, 2);
  EXPECT_EQ(job1.actors()[0].actions()[1].to, Location("l2"));

  const DistributedComputation& job2 = s.computations[1];
  EXPECT_EQ(job2.actors().size(), 2u);
  EXPECT_EQ(job2.actors()[1].actor(), "b2");
}

TEST(ScenarioIo, MigrateUpdatesLocation) {
  Scenario s = parse_scenario_string(R"(
computation hop 0 20
  actor a l1
    migrate l2 2
    evaluate 1
end
)");
  const auto& actions = s.computations[0].actors()[0].actions();
  EXPECT_EQ(actions[0].kind, ActionKind::kMigrate);
  EXPECT_EQ(actions[0].size, 2);
  EXPECT_EQ(actions[1].at, Location("l2"));
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  Scenario s = parse_scenario_string(
      "# full line comment\n\nsupply cpu lx 1 0 5  # trailing comment\n");
  EXPECT_EQ(s.supply.term_count(), 1u);
}

TEST(ScenarioIo, RoundTrips) {
  Scenario original = parse_scenario_string(kDemo);
  Scenario reparsed = parse_scenario_string(scenario_to_string(original));
  EXPECT_EQ(original, reparsed);
}

TEST(ScenarioIo, ParsedScenarioIsPlannable) {
  Scenario s = parse_scenario_string(kDemo);
  CostModel phi;
  ConcurrentRequirement rho = make_concurrent_requirement(phi, s.computations[0]);
  EXPECT_TRUE(plan_concurrent(s.supply, rho, PlanningPolicy::kAsap).has_value());
}

// ------------------------------------------------------------------
// Error reporting.
// ------------------------------------------------------------------

void expect_error(const std::string& text, std::size_t line) {
  try {
    parse_scenario_string(text);
    FAIL() << "expected a parse error";
  } catch (const ScenarioParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
  }
}

TEST(ScenarioIo, ErrorsCarryLineNumbers) {
  expect_error("supply cpu l1 five 0 10\n", 1);
  expect_error("\nbogus keyword\n", 2);
}

TEST(ScenarioIo, SupplyInsideComputationRejected) {
  expect_error("computation c 0 10\nsupply cpu l1 1 0 5\nend\n", 2);
}

TEST(ScenarioIo, UnclosedComputationRejected) {
  expect_error("computation c 0 10\n  actor a l1\n    ready\n", 1);
}

TEST(ScenarioIo, NestedComputationRejected) {
  expect_error("computation a 0 10\ncomputation b 0 10\n", 2);
}

TEST(ScenarioIo, ActionBeforeActorRejected) {
  expect_error("computation c 0 10\n  evaluate 1\nend\n", 2);
}

TEST(ScenarioIo, EndWithoutComputationRejected) { expect_error("end\n", 1); }

TEST(ScenarioIo, BadDeadlineRejected) {
  expect_error("computation c 10 10\nend\n", 1);
}

TEST(ScenarioIo, SelfLinkRejected) {
  expect_error("supply network l1 l1 4 0 12\n", 1);
}

TEST(ScenarioIo, MigrateToSelfRejected) {
  expect_error("computation c 0 10\n  actor a l1\n    migrate l1 1\nend\n", 3);
}

TEST(ScenarioIo, UnknownKindRejected) {
  expect_error("supply gpu l1 4 0 12\n", 1);
}

TEST(ScenarioIo, WrongArityRejected) {
  expect_error("supply cpu l1 4 0\n", 1);
  expect_error("computation c 0\n", 1);
}

TEST(ScenarioIo, MissingFileThrows) {
  EXPECT_THROW(load_scenario_file("/nonexistent/path.rota"), std::runtime_error);
}

TEST(ScenarioIo, NonCpuKindsParse) {
  Scenario s = parse_scenario_string(
      "supply memory m1 6 0 10\n"
      "supply disk m1 3 0 10\n"
      "supply custom m1 2 0 10\n"
      "supply custom m1 m2 9 0 10\n");  // a custom *link*
  EXPECT_EQ(
      s.supply.availability(LocatedType::node(ResourceKind::kMemory, Location("m1")))
          .value_at(5),
      6);
  EXPECT_EQ(s.supply
                .availability(LocatedType::link(ResourceKind::kCustom, Location("m1"),
                                                Location("m2")))
                .value_at(5),
            9);
}

TEST(ScenarioIo, EveryKindRoundTripsThroughTheWriter) {
  Location a("rt-a"), b("rt-b");
  Scenario original;
  original.supply.add(5, TimeInterval(0, 10), LocatedType::cpu(a));
  original.supply.add(4, TimeInterval(0, 10), LocatedType::memory(a));
  original.supply.add(3, TimeInterval(0, 10),
                      LocatedType::node(ResourceKind::kDisk, a));
  original.supply.add(2, TimeInterval(0, 10), LocatedType::network(a, b));
  original.supply.add(1, TimeInterval(0, 10),
                      LocatedType::link(ResourceKind::kCustom, a, b));
  original.supply.add(7, TimeInterval(0, 10),
                      LocatedType::link(ResourceKind::kDisk, a, b));  // SAN-ish
  EXPECT_EQ(parse_scenario_string(scenario_to_string(original)), original);
}

TEST(ScenarioIo, NetworkIsLinkOnly) {
  expect_error("supply network l1 5 0 10\n", 1);
}

}  // namespace
}  // namespace rota
