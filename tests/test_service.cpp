// The admission service: codec, bounded queue, anytime strategy ladder, SLO
// governor, shedding, clean drain, and the socket round trip.
//
// The load-bearing suite is the strategy/governor set: an injected slow
// kExact must drive demotion under a tight budget, degraded strategies must
// never be unsafely optimistic (every degraded accept re-validated against
// the exact kernel and the live residual), the governor must promote back
// once pressure clears, and shed requests must be answered with kOverloaded
// — never silence. Runs in rota_runtime_tests, so ThreadSanitizer covers the
// lanes/session/governor interleavings.
#include "rota/service/service.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "rota/runtime/bounded_queue.hpp"
#include "rota/service/client.hpp"
#include "rota/service/server.hpp"
#include "rota/workload/generator.hpp"

namespace rota::service {
namespace {

constexpr Tick kHorizon = 2000;

WorkloadGenerator make_generator(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 3;
  config.laxity = 2.5;
  return WorkloadGenerator(config, CostModel{});
}

AdmitRequest make_request(WorkloadGenerator& gen, std::uint64_t id, Tick at,
                          std::uint64_t budget_us = 0) {
  AdmitRequest request;
  request.id = id;
  request.at = at;
  request.budget_us = budget_us;
  request.computation = gen.make_computation(at);
  return request;
}

// ---- codec ----------------------------------------------------------------

TEST(ServiceCodec, RequestRoundTripsThroughTheDsl) {
  WorkloadGenerator gen = make_generator(1);
  const AdmitRequest request = make_request(gen, 42, 7, 1500);
  const AdmitRequest back = parse_request(request_payload(request));
  EXPECT_EQ(back, request);
}

TEST(ServiceCodec, ResponseRoundTripsWithAndWithoutReason) {
  AdmitResponse r;
  r.id = 9;
  r.verdict = Verdict::kAccepted;
  r.strategy = "digest";
  r.planning_ns = 123456;
  r.queue_ns = 789;
  EXPECT_EQ(parse_response(response_payload(r)), r);

  r.verdict = Verdict::kOverloaded;
  r.strategy.clear();  // shed responses carry no strategy ("-" on the wire)
  r.reason = "admission queue full";
  EXPECT_EQ(parse_response(response_payload(r)), r);
}

TEST(ServiceCodec, MalformedPayloadsThrow) {
  EXPECT_THROW(parse_request("admit 1 2\nend\n"), CodecError);  // short header
  EXPECT_THROW(parse_request("admit x 2 3\n"), CodecError);     // bad id
  EXPECT_THROW(parse_request("admit 1 2 3\n"), CodecError);     // no computation
  WorkloadGenerator gen = make_generator(2);
  // A request body smuggling a supply section is refused outright.
  std::string payload = request_payload(make_request(gen, 1, 0));
  payload += "supply\n  cpu l1 1 0 10\nend\n";
  EXPECT_THROW(parse_request(payload), CodecError);
  EXPECT_THROW(parse_response("decision 1 accepted\n"), CodecError);
  EXPECT_THROW(parse_response("decision 1 maybe - 0 0\n"), CodecError);
}

TEST(ServiceCodec, FrameReaderReassemblesArbitraryChunks) {
  WorkloadGenerator gen = make_generator(3);
  const std::string a = request_payload(make_request(gen, 1, 0));
  const std::string b = request_payload(make_request(gen, 2, 5));
  const std::string stream = frame(a) + frame(b);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, stream.size()}) {
    FrameReader reader;
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      reader.feed(stream.data() + i, std::min(chunk, stream.size() - i));
      while (auto p = reader.next()) payloads.push_back(*p);
    }
    ASSERT_EQ(payloads.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(payloads[0], a);
    EXPECT_EQ(payloads[1], b);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(ServiceCodec, OversizeFrameIsRejectedNotBuffered) {
  FrameReader reader;
  const std::uint32_t huge = kMaxFramePayload + 1;
  char header[4] = {static_cast<char>(huge & 0xff),
                    static_cast<char>((huge >> 8) & 0xff),
                    static_cast<char>((huge >> 16) & 0xff),
                    static_cast<char>((huge >> 24) & 0xff)};
  reader.feed(header, 4);
  EXPECT_THROW(reader.next(), CodecError);
  EXPECT_THROW(frame(std::string(kMaxFramePayload + 1, 'x')), CodecError);
}

// ---- bounded queue --------------------------------------------------------

TEST(BoundedQueueTest, TryPushRefusesWhenFullAndPreservesTheItem) {
  BoundedQueue<std::unique_ptr<int>> queue(1);
  EXPECT_TRUE(queue.try_push(std::make_unique<int>(1)));
  auto second = std::make_unique<int>(2);
  EXPECT_FALSE(queue.try_push(std::move(second)));
  // The refused item was NOT consumed: the caller can still answer with it
  // (in the service: the shed response travels through the preserved
  // callback).
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(BoundedQueueTest, CloseWakesConsumersAndDrainsAcceptedItems) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3)) << "closed queue refuses intake";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt) << "closed and drained";

  BoundedQueue<int> empty(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    empty.close();
  });
  EXPECT_EQ(empty.pop(), std::nullopt) << "close() wakes a blocked pop";
  closer.join();
}

// ---- strategy registry & governor -----------------------------------------

/// Wraps the real exact strategy with a controllable delay — the test's
/// stand-in for "exact planning became expensive under this workload".
class SlowExact final : public AnytimeStrategy {
 public:
  SlowExact(const PlanningKernel& kernel, std::atomic<int>& delay_ms)
      : kernel_(kernel), delay_ms_(delay_ms) {}
  const char* name() const override { return "exact"; }
  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const CancellationToken& cancel) override {
    const int ms = delay_ms_.load();
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    SpeculateOptions options;
    options.cancel = &cancel;
    return kernel_.speculate(rho, at, snapshot, options);
  }

 private:
  const PlanningKernel& kernel_;
  std::atomic<int>& delay_ms_;
};

/// Blocks inside speculate() until released — holds a lane mid-request so
/// shedding and drain behavior can be observed deterministically.
class LatchedExact final : public AnytimeStrategy {
 public:
  explicit LatchedExact(const PlanningKernel& kernel) : kernel_(kernel) {}
  const char* name() const override { return "exact"; }
  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const CancellationToken& cancel) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      released_cv_.wait(lock, [this] { return released_; });
    }
    SpeculateOptions options;
    options.cancel = &cancel;
    return kernel_.speculate(rho, at, snapshot, options);
  }
  void await_entered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_ > 0; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    released_cv_.notify_all();
  }

 private:
  const PlanningKernel& kernel_;
  std::mutex mutex_;
  std::condition_variable entered_cv_, released_cv_;
  int entered_ = 0;
  bool released_ = false;
};

TEST(ServiceGovernor, SlowExactForcesDemotionUnderTightBudget) {
  WorkloadGenerator gen = make_generator(10);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  config.default_budget_us = 3'000;       // 3ms budget...
  config.governor.slo_ns = 1'000'000;     // ...and a 1ms SLO,
  config.governor.demote_after = 2;       // demoting fast
  AdmissionService svc(ledger, gen.phi(), config);
  static std::atomic<int> delay_ms{8};    // against an 8ms exact strategy
  svc.registry().replace(
      StrategyKind::kExact,
      std::make_unique<SlowExact>(PlanningKernel{}, delay_ms));

  std::vector<AdmitResponse> responses;
  for (std::uint64_t i = 0; i < 8; ++i) {
    responses.push_back(svc.admit(make_request(gen, i + 1, static_cast<Tick>(i))));
  }
  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.demotions, 1u) << "sustained overruns must demote";
  EXPECT_NE(svc.governor().level(), StrategyKind::kExact);
  // Early requests burned their budget inside the slow exact rung and were
  // shed — explicitly, with a reason, never silently.
  ASSERT_EQ(responses.front().verdict, Verdict::kOverloaded);
  EXPECT_EQ(responses.front().reason, "planning budget exhausted");
  // Once demoted, requests are decided by a degraded rung within budget.
  const AdmitResponse& last = responses.back();
  EXPECT_NE(last.verdict, Verdict::kOverloaded);
  EXPECT_TRUE(last.strategy == "digest" || last.strategy == "greedy")
      << last.strategy;
  EXPECT_EQ(stats.revalidations_failed, 0u);
}

TEST(ServiceGovernor, CostModelStopsPickingExactOnceItLearnsTheCost) {
  WorkloadGenerator gen = make_generator(11);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  config.default_budget_us = 500'000;  // generous: the slow exact rung fits
  AdmissionService svc(ledger, gen.phi(), config);
  static std::atomic<int> delay_ms2{6};
  svc.registry().replace(
      StrategyKind::kExact,
      std::make_unique<SlowExact>(PlanningKernel{}, delay_ms2));

  // Served by exact (EWMA learns ~6ms), still within the generous budget.
  const AdmitResponse first = svc.admit(make_request(gen, 1, 0));
  EXPECT_EQ(first.strategy, "exact");
  // A tight-budget request must now be steered away from exact *before*
  // burning its budget — the EWMA predicted the overrun. (Tight relative to
  // the ≥ 6 ms exact EWMA, roomy enough for a degraded rung on slow hosts.)
  const AdmitResponse tight = svc.admit(make_request(gen, 2, 1, /*budget_us=*/5'000));
  EXPECT_NE(tight.verdict, Verdict::kOverloaded);
  EXPECT_TRUE(tight.strategy == "digest" || tight.strategy == "greedy")
      << tight.strategy;
  EXPECT_EQ(svc.stats().demotions, 0u)
      << "per-request steering, not governor demotion";
}

TEST(ServiceGovernor, PromotesBackAfterPressureClears) {
  WorkloadGenerator gen = make_generator(12);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  config.default_budget_us = 3'000;
  config.governor.slo_ns = 1'000'000;
  config.governor.demote_after = 2;
  config.governor.promote_after = 4;
  config.governor.latency_window = 8;  // short memory: recovery is visible
  AdmissionService svc(ledger, gen.phi(), config);
  static std::atomic<int> delay_ms3{8};
  svc.registry().replace(
      StrategyKind::kExact,
      std::make_unique<SlowExact>(PlanningKernel{}, delay_ms3));

  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i) {
    svc.admit(make_request(gen, ++id, static_cast<Tick>(i)));
  }
  ASSERT_NE(svc.governor().level(), StrategyKind::kExact) << "setup: demoted";

  delay_ms3.store(0);  // pressure clears: exact is fast again
  for (int i = 0; i < 40 && svc.governor().level() != StrategyKind::kExact; ++i) {
    svc.admit(make_request(gen, ++id, static_cast<Tick>(i)));
  }
  EXPECT_EQ(svc.governor().level(), StrategyKind::kExact)
      << "sustained calm must promote back to the top rung";
  EXPECT_GE(svc.stats().promotions, 1u);
}

// Degraded strategies may be pessimistic, never optimistic: anything kDigest
// or kGreedy calls feasible, the exact kernel must also call feasible, and
// the plan must fit the live snapshot it was computed against.
TEST(ServiceStrategies, DegradedAcceptsAreNeverUnsafelyOptimistic) {
  WorkloadGenerator gen = make_generator(13);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  const PlanningKernel kernel;
  StrategyRegistry registry(kernel, /*digest_max_segments=*/8);
  const CancellationToken never;

  std::size_t degraded_accepts = 0, degraded_pessimistic = 0;
  for (const Arrival& a : gen.make_arrivals(kHorizon)) {
    const ConcurrentRequirement rho =
        make_concurrent_requirement(gen.phi(), a.computation);
    const FeasibilitySnapshot snapshot = FeasibilitySnapshot::capture(
        ledger, effective_window(rho, a.at), touched_shard_mask(rho));
    const PlanResult exact = kernel.speculate(rho, a.at, snapshot);
    for (const StrategyKind kind : {StrategyKind::kDigest, StrategyKind::kGreedy}) {
      const PlanResult degraded =
          registry.strategy(kind).speculate(rho, a.at, snapshot, never);
      if (degraded.feasible()) {
        ++degraded_accepts;
        EXPECT_TRUE(exact.feasible())
            << strategy_name(kind) << " accepted what exact rejects: " << rho.name();
        // Re-validation: the degraded plan must fit the snapshot's residual
        // (minus() refuses plans the view does not cover — the same check
        // CommitmentLedger::admit makes at commit).
        EXPECT_TRUE(snapshot.minus(*degraded.plan).has_value())
            << strategy_name(kind) << " plan not covered for " << rho.name();
      } else if (exact.feasible()) {
        ++degraded_pessimistic;  // allowed: degradation costs acceptance rate
      }
    }
    // Evolve the ledger with the exact decision so later snapshots see a
    // progressively fragmented residual.
    AdmissionDecision ignored;
    kernel.commit(exact, ledger, ignored);
  }
  EXPECT_GT(degraded_accepts, 0u) << "workload never exercised degraded accepts";
}

// ---- shedding & drain -----------------------------------------------------

TEST(ServiceShedding, QueueFullAnswersOverloadedImmediatelyNeverSilence) {
  WorkloadGenerator gen = make_generator(14);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  config.queue_capacity = 1;
  AdmissionService svc(ledger, gen.phi(), config);
  auto latched = std::make_unique<LatchedExact>(PlanningKernel{});
  LatchedExact* latch = latched.get();
  svc.registry().replace(StrategyKind::kExact, std::move(latched));

  std::mutex mutex;
  std::vector<AdmitResponse> responses;
  const auto collect = [&](const AdmitResponse& r) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(r);
  };

  svc.submit(make_request(gen, 1, 0), collect);  // occupies the single lane
  latch->await_entered();
  svc.submit(make_request(gen, 2, 1), collect);  // fills the queue
  for (std::uint64_t id = 3; id <= 6; ++id) {    // these must shed inline
    svc.submit(make_request(gen, id, 2), collect);
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(responses.size(), 4u) << "sheds answer synchronously";
    for (const AdmitResponse& r : responses) {
      EXPECT_EQ(r.verdict, Verdict::kOverloaded);
      EXPECT_EQ(r.reason, "admission queue full");
      EXPECT_GE(r.id, 3u);
    }
  }
  latch->release();
  svc.drain_and_stop();
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(responses.size(), 6u) << "every submitted request was answered";
  EXPECT_EQ(svc.stats().shed_queue, 4u);
}

TEST(ServiceShedding, DrainAnswersEverythingAndStopsIntake) {
  WorkloadGenerator gen = make_generator(15);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 2;
  config.queue_capacity = 64;
  AdmissionService svc(ledger, gen.phi(), config);

  std::atomic<std::size_t> answered{0};
  const std::size_t n = 32;
  for (std::uint64_t i = 0; i < n; ++i) {
    svc.submit(make_request(gen, i + 1, static_cast<Tick>(i)),
               [&](const AdmitResponse&) { answered.fetch_add(1); });
  }
  svc.drain_and_stop();
  EXPECT_EQ(answered.load(), n) << "clean drain abandons nothing";

  // Post-stop submissions are shed, not swallowed.
  AdmitResponse late;
  svc.submit(make_request(gen, 99, 0),
             [&](const AdmitResponse& r) { late = r; });
  EXPECT_EQ(late.verdict, Verdict::kOverloaded);
}

// ---- socket round trip ----------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/rota_svc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServiceSocket, UnixRoundTripStreamsOutOfOrderDecisionsById) {
  WorkloadGenerator gen = make_generator(16);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService svc(ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = test_socket_path("unix");
  ServiceServer server(svc, sconfig);

  ServiceClient client = ServiceClient::connect_unix(server.unix_path());
  // Pipeline a burst, then collect by id: decisions may stream back in any
  // order (two lanes), every id must be answered exactly once. Generous
  // per-request budgets so the whole burst is decided, not budget-shed,
  // even on a slow (sanitized, single-core) host.
  const std::size_t n = 16;
  for (std::uint64_t i = 0; i < n; ++i) {
    client.send(make_request(gen, i + 1, static_cast<Tick>(i),
                             /*budget_us=*/10'000'000));
  }
  std::set<std::uint64_t> seen;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto response = client.receive();
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(seen.insert(response->id).second) << "duplicate " << response->id;
    EXPECT_GE(response->id, 1u);
    EXPECT_LE(response->id, n);
    if (response->verdict == Verdict::kAccepted) ++accepted;
    EXPECT_NE(response->verdict, Verdict::kOverloaded);
    EXPECT_FALSE(response->strategy.empty());
  }
  EXPECT_GT(accepted, 0u);
  server.stop();
}

TEST(ServiceSocket, TcpRoundTripAndEphemeralPort) {
  WorkloadGenerator gen = make_generator(17);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService svc(ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.tcp = true;  // ephemeral port, no unix listener
  ServiceServer server(svc, sconfig);
  ASSERT_NE(server.tcp_port(), 0);

  ServiceClient client = ServiceClient::connect_tcp(server.tcp_port());
  const AdmitResponse response =
      client.call(make_request(gen, 7, 0, /*budget_us=*/10'000'000));
  EXPECT_EQ(response.id, 7u);
  EXPECT_NE(response.verdict, Verdict::kOverloaded);
  server.stop();
}

TEST(ServiceSocket, MalformedFrameGetsAProtocolErrorThenHangUp) {
  WorkloadGenerator gen = make_generator(18);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService svc(ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = test_socket_path("mal");
  ServiceServer server(svc, sconfig);

  // Raw socket: a well-framed but unparsable payload. The server must answer
  // an explicit rejection (id 0 — the frame carried no trustworthy id) with
  // a protocol-error reason, then hang up. Never a silent close.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                server.unix_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string garbage = frame("this is not an admit request\n");
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  FrameReader reader;
  std::vector<std::string> payloads;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // the hang-up
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto p = reader.next()) payloads.push_back(*p);
  }
  ::close(fd);

  ASSERT_EQ(payloads.size(), 1u);
  const AdmitResponse response = parse_response(payloads.front());
  EXPECT_EQ(response.id, 0u);
  EXPECT_EQ(response.verdict, Verdict::kRejected);
  EXPECT_NE(response.reason.find("protocol error"), std::string::npos)
      << response.reason;
  server.stop();
}

TEST(ServiceSocket, StopDrainsInFlightRequestsBeforeClosing) {
  WorkloadGenerator gen = make_generator(19);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  config.queue_capacity = 64;
  AdmissionService svc(ledger, gen.phi(), config);
  ServerConfig sconfig;
  sconfig.unix_path = test_socket_path("drain");
  ServiceServer server(svc, sconfig);

  ServiceClient client = ServiceClient::connect_unix(server.unix_path());
  const std::size_t n = 24;
  for (std::uint64_t i = 0; i < n; ++i) {
    client.send(make_request(gen, i + 1, static_cast<Tick>(i)));
  }
  // Give the session thread a moment to move the burst into the service,
  // then stop: the drain must answer every accepted request before the
  // sockets close.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread stopper([&] { server.stop(); });
  std::size_t answered = 0;
  while (auto response = client.receive()) {
    ++answered;
    EXPECT_GE(response->id, 1u);
  }
  stopper.join();
  EXPECT_EQ(answered, n) << "stop() abandoned queued requests";
  EXPECT_EQ(svc.stats().requests, n);
}

// ---- session tokens & client bounds ---------------------------------------

TEST(ServiceAuth, SecretAdmitsMatchingTokenAndRefusesTheRest) {
  WorkloadGenerator gen = make_generator(20);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService svc(ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = test_socket_path("auth");
  sconfig.secret = "sesame";
  ServiceServer server(svc, sconfig);

  // The right token: hello → ok, then requests flow normally.
  ClientOptions good;
  good.token = "sesame";
  good.connect_timeout_ms = 2000;
  ServiceClient authed = ServiceClient::connect_unix(server.unix_path(), good);
  const AdmitResponse response =
      authed.call(make_request(gen, 1, 0, /*budget_us=*/10'000'000));
  EXPECT_EQ(response.id, 1u);
  EXPECT_NE(response.verdict, Verdict::kOverloaded);

  // A wrong token: the hello is answered with an explicit error and a
  // hang-up, which the connecting factory surfaces as a refusal.
  ClientOptions bad = good;
  bad.token = "wrong";
  EXPECT_THROW(ServiceClient::connect_unix(server.unix_path(), bad),
               std::runtime_error);

  // No token at all: the connection opens (nothing to refuse yet), but the
  // first request is answered with an unauthorized protocol error, then EOF.
  ServiceClient anon = ServiceClient::connect_unix(server.unix_path());
  anon.send(make_request(gen, 2, 0));
  auto refused = anon.receive();
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->verdict, Verdict::kRejected);
  EXPECT_NE(refused->reason.find("unauthorized"), std::string::npos)
      << refused->reason;
  EXPECT_EQ(anon.receive(), std::nullopt) << "server hung up after refusing";
  server.stop();
}

TEST(ServiceClientBounds, ReadTimeoutThrowsAndTheStreamSurvives) {
  WorkloadGenerator gen = make_generator(21);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  ServiceConfig config;
  config.lanes = 1;
  AdmissionService svc(ledger, gen.phi(), config);
  auto latched = std::make_unique<LatchedExact>(PlanningKernel{});
  LatchedExact* latch = latched.get();
  svc.registry().replace(StrategyKind::kExact, std::move(latched));
  ServerConfig sconfig;
  sconfig.unix_path = test_socket_path("timeout");
  ServiceServer server(svc, sconfig);

  ClientOptions options;
  options.read_timeout_ms = 100;
  ServiceClient client = ServiceClient::connect_unix(server.unix_path(), options);
  client.send(make_request(gen, 1, 0, /*budget_us=*/10'000'000));
  latch->await_entered();  // the lane is held: no decision is coming yet
  EXPECT_THROW(client.receive(), std::system_error)
      << "a held decision must bound receive(), not block it forever";
  // The timeout is a bound, not a teardown: release the lane and the same
  // connection still delivers the decision.
  latch->release();
  auto response = client.receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 1u);
  server.stop();
}

TEST(ServiceClientBounds, SendRedialsExactlyOnceAfterAServerRestart) {
  WorkloadGenerator gen = make_generator(22);
  const std::string path = test_socket_path("redial");
  CommitmentLedger first_ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  auto first_service = std::make_unique<AdmissionService>(
      first_ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = path;
  auto first_server = std::make_unique<ServiceServer>(*first_service, sconfig);

  ServiceClient client = ServiceClient::connect_unix(path);
  EXPECT_NE(client.call(make_request(gen, 1, 0, /*budget_us=*/10'000'000)).verdict,
            Verdict::kOverloaded);
  EXPECT_EQ(client.reconnects(), 0u);

  // Restart: the old sockets die, a new daemon binds the same path. The next
  // send() hits the dead socket, re-dials once, and the request is served by
  // the new server.
  first_server.reset();
  first_service.reset();
  CommitmentLedger second_ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService second_service(second_ledger, gen.phi(), ServiceConfig{});
  ServiceServer second_server(second_service, sconfig);

  client.send(make_request(gen, 2, 0, /*budget_us=*/10'000'000));
  auto response = client.receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 2u);
  EXPECT_EQ(client.reconnects(), 1u) << "exactly one bounded reconnect";
  second_server.stop();
}

TEST(ServiceClientBounds, PipelinedStormAcrossARestartRedialsExactlyOnce) {
  // The retry-storm shape: a pipelining client with requests in flight when
  // the daemon restarts. Contract under fire: (a) every pre-restart request
  // resolves — a drained decision or a clean EOF, never a silent drop and
  // never a hang; (b) the redial happens exactly once, no matter how many
  // sends pile onto the dead socket afterwards.
  WorkloadGenerator gen = make_generator(24);
  const std::string path = test_socket_path("storm");
  CommitmentLedger first_ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  auto first_service = std::make_unique<AdmissionService>(
      first_ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = path;
  auto first_server = std::make_unique<ServiceServer>(*first_service, sconfig);

  ServiceClient client = ServiceClient::connect_unix(path);
  // Pipeline a burst and leave the last decision unread when the server dies.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    client.send(make_request(gen, id, 0, /*budget_us=*/10'000'000));
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.receive().has_value());
  }
  first_server.reset();  // drains in-flight work, then closes the sockets
  first_service.reset();

  // The drained decision is still in the stream, then EOF surfaces as an
  // explicit nullopt — the pre-restart request is never silently dropped.
  auto drained = client.receive();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->id, 3u);
  EXPECT_EQ(client.receive(), std::nullopt) << "EOF must be reported";
  EXPECT_EQ(client.reconnects(), 0u);

  // New daemon, same path. The storm: six sends pile up, the first one hits
  // the dead socket and redials, the rest ride the replacement connection.
  CommitmentLedger second_ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  AdmissionService second_service(second_ledger, gen.phi(), ServiceConfig{});
  ServiceServer second_server(second_service, sconfig);
  for (std::uint64_t id = 10; id < 16; ++id) {
    client.send(make_request(gen, id, 0, /*budget_us=*/10'000'000));
  }
  std::size_t answered = 0;
  for (int i = 0; i < 6; ++i) {
    const auto response = client.receive();
    ASSERT_TRUE(response.has_value());
    EXPECT_GE(response->id, 10u);
    EXPECT_LT(response->id, 16u);
    ++answered;
  }
  EXPECT_EQ(answered, 6u);
  EXPECT_EQ(client.reconnects(), 1u)
      << "one restart, one redial — the storm must not multiply reconnects";
  second_server.stop();
}

TEST(ServiceClientBounds, ReconnectDisabledSurfacesTheDeadSocket) {
  WorkloadGenerator gen = make_generator(23);
  const std::string path = test_socket_path("noredial");
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  auto svc = std::make_unique<AdmissionService>(ledger, gen.phi(), ServiceConfig{});
  ServerConfig sconfig;
  sconfig.unix_path = path;
  auto server = std::make_unique<ServiceServer>(*svc, sconfig);

  ClientOptions options;
  options.reconnect = false;
  ServiceClient client = ServiceClient::connect_unix(path, options);
  server.reset();
  svc.reset();
  EXPECT_THROW(client.send(make_request(gen, 1, 0)), std::system_error);
  EXPECT_EQ(client.reconnects(), 0u);
}

}  // namespace
}  // namespace rota::service
