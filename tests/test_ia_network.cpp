#include "rota/time/ia_network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/util/rng.hpp"

namespace rota {
namespace {

TEST(IaNetwork, FreshNetworkIsUniversal) {
  IaNetwork net(3);
  EXPECT_EQ(net.relation(0, 1), AllenRelationSet::all());
  EXPECT_EQ(net.relation(0, 0), AllenRelationSet(AllenRelation::kEquals));
}

TEST(IaNetwork, ZeroVariablesThrows) {
  EXPECT_THROW(IaNetwork(0), std::invalid_argument);
}

TEST(IaNetwork, ConstrainKeepsInverseEdgeConsistent) {
  IaNetwork net(2);
  net.constrain(0, 1, AllenRelation::kBefore);
  EXPECT_EQ(net.relation(0, 1), AllenRelationSet(AllenRelation::kBefore));
  EXPECT_EQ(net.relation(1, 0), AllenRelationSet(AllenRelation::kAfter));
}

TEST(IaNetwork, OutOfRangeThrows) {
  IaNetwork net(2);
  EXPECT_THROW(net.constrain(0, 5, AllenRelation::kBefore), std::out_of_range);
  EXPECT_THROW(net.relation(5, 0), std::out_of_range);
}

TEST(IaNetwork, TransitiveBeforePropagates) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(1, 2, AllenRelation::kBefore);
  ASSERT_TRUE(net.propagate());
  EXPECT_EQ(net.relation(0, 2), AllenRelationSet(AllenRelation::kBefore));
}

TEST(IaNetwork, MeetsChainPropagatesToBefore) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kMeets);
  net.constrain(1, 2, AllenRelation::kMeets);
  ASSERT_TRUE(net.propagate());
  EXPECT_EQ(net.relation(0, 2), AllenRelationSet(AllenRelation::kBefore));
}

TEST(IaNetwork, DetectsDirectContradiction) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(1, 2, AllenRelation::kBefore);
  net.constrain(0, 2, AllenRelation::kAfter);  // contradicts transitivity
  EXPECT_FALSE(net.propagate());
}

TEST(IaNetwork, DetectsCycleOfBefores) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(1, 2, AllenRelation::kBefore);
  net.constrain(2, 0, AllenRelation::kBefore);
  EXPECT_FALSE(net.propagate());
}

TEST(IaNetwork, DuringChainStaysConsistent) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kDuring);
  net.constrain(1, 2, AllenRelation::kDuring);
  ASSERT_TRUE(net.propagate());
  EXPECT_EQ(net.relation(0, 2), AllenRelationSet(AllenRelation::kDuring));
}

TEST(IaNetwork, PropagationTightensDisjunctions) {
  IaNetwork net(3);
  AllenRelationSet before_or_meets(AllenRelation::kBefore);
  before_or_meets.insert(AllenRelation::kMeets);
  net.constrain(0, 1, before_or_meets);
  net.constrain(1, 2, before_or_meets);
  ASSERT_TRUE(net.propagate());
  // before/meets composed with before/meets can only yield before.
  EXPECT_EQ(net.relation(0, 2), AllenRelationSet(AllenRelation::kBefore));
}

TEST(IaNetwork, SolveScenarioProducesAtomicNetwork) {
  IaNetwork net(4);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(2, 3, AllenRelation::kDuring);
  ASSERT_TRUE(net.solve_scenario());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(net.relation(i, j).size(), 1)
          << "edge " << i << "," << j << " = " << net.relation(i, j).to_string();
    }
  }
  EXPECT_TRUE(net.propagate());
}

TEST(IaNetwork, SolveScenarioFailsOnInconsistent) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(1, 2, AllenRelation::kBefore);
  net.constrain(2, 0, AllenRelation::kBefore);
  EXPECT_FALSE(net.solve_scenario());
}

TEST(IaNetwork, ResourceSchedulingUseCase) {
  // Two requirement windows inside one supply window, requirement A strictly
  // before requirement B (a two-phase computation): consistent, and the
  // supply window must contain... at least, not be before/after either.
  IaNetwork net(3);  // 0 = supply, 1 = phase A, 2 = phase B
  net.constrain(1, 0, AllenRelation::kDuring);
  net.constrain(2, 0, AllenRelation::kDuring);
  net.constrain(1, 2, AllenRelation::kBefore);
  ASSERT_TRUE(net.propagate());
  EXPECT_TRUE(net.solve_scenario());
}

TEST(IaNetwork, RealizeSimpleChain) {
  IaNetwork net(3);
  net.constrain(0, 1, AllenRelation::kBefore);
  net.constrain(1, 2, AllenRelation::kMeets);
  ASSERT_TRUE(net.solve_scenario());
  auto intervals = net.realize_intervals();
  ASSERT_TRUE(intervals.has_value());
  ASSERT_EQ(intervals->size(), 3u);
  // The realized intervals exhibit exactly the solved relations.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(net.relation(i, j).contains(
          allen_relation((*intervals)[i], (*intervals)[j])))
          << i << " vs " << j;
    }
  }
}

TEST(IaNetwork, RealizeRequiresAtomicNetwork) {
  IaNetwork net(2);  // universal edge: 13 relations
  EXPECT_THROW(net.realize_intervals(), std::logic_error);
}

TEST(IaNetwork, RealizeEveryBaseRelation) {
  // For each base relation r: a two-node atomic network with edge r realizes
  // intervals actually related by r.
  for (AllenRelation r : all_allen_relations()) {
    IaNetwork net(2);
    net.constrain(0, 1, r);
    ASSERT_TRUE(net.propagate()) << allen_name(r);
    auto intervals = net.realize_intervals();
    ASSERT_TRUE(intervals.has_value()) << allen_name(r);
    EXPECT_EQ(allen_relation((*intervals)[0], (*intervals)[1]), r);
  }
}

TEST(IaNetwork, RealizeRandomSolvedNetworks) {
  // Random consistent networks: solve, realize, verify every edge concretely.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    // Build a network from concrete intervals (guaranteed consistent), then
    // forget the intervals and re-derive them.
    util::Rng rng(seed * 97 + 5);
    const std::size_t n = 4;
    std::vector<TimeInterval> truth;
    for (std::size_t i = 0; i < n; ++i) {
      const Tick s = rng.uniform(0, 10);
      truth.emplace_back(s, s + rng.uniform(1, 6));
    }
    IaNetwork net(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        net.constrain(i, j, allen_relation(truth[i], truth[j]));
      }
    }
    ASSERT_TRUE(net.solve_scenario()) << "seed " << seed;
    auto realized = net.realize_intervals();
    ASSERT_TRUE(realized.has_value()) << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        EXPECT_EQ(allen_relation((*realized)[i], (*realized)[j]),
                  allen_relation(truth[i], truth[j]))
            << "seed " << seed << ": " << i << " vs " << j;
      }
    }
  }
}

TEST(IaNetwork, ToStringListsEdges) {
  IaNetwork net(2);
  net.constrain(0, 1, AllenRelation::kMeets);
  const std::string s = net.to_string();
  EXPECT_NE(s.find("I0 {m} I1"), std::string::npos);
}

}  // namespace
}  // namespace rota
