// Cluster churn under real thread parallelism.
//
// The cluster control loop is single-threaded by design; the threads live
// inside each node's BatchAdmissionController (multi-lane speculative
// planning). This suite drives nodes with several lanes through bursty
// same-tick batches while nodes crash, recover, and join mid-run — the
// combination the tsan job builds with -DROTA_SANITIZE=thread to prove the
// planning lanes share no unsynchronized state, and that determinism
// survives the parallelism (FCFS decision parity makes lane count
// unobservable in the decision log).
#include <gtest/gtest.h>

#include "rota/cluster/cluster.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace rota::cluster {
namespace {

ClusterReport churn_run(std::size_t lanes) {
  WorkloadConfig wc;
  wc.seed = 77;
  wc.num_locations = 4;
  wc.mean_interarrival = 1.5;  // bursty: frequent same-tick batches
  WorkloadGenerator gen(wc, CostModel());

  ClusterConfig config;
  config.seed = 77;
  config.node.lanes = lanes;
  config.default_link.jitter = 1;
  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < 3; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, 400)));
  }

  // Jobs keep arriving while node 1 crashes and recovers, node 2 crashes and
  // restarts cold, and a fourth node joins the admission pool mid-run.
  for (const ClusterArrivalSpec& a : gen.make_cluster_arrivals(120, 3, 0.5)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
  }
  sim.schedule_crash(30, 1);
  sim.schedule_restart(38, 1, /*recover=*/true);
  sim.schedule_crash(60, 2);
  sim.schedule_restart(70, 2, /*recover=*/false);
  sim.add_node(gen.locations()[3], gen.node_supply(3, TimeInterval(0, 400)));

  return sim.run(200);
}

TEST(ClusterChurn, ParallelLanesSurviveCrashRestartChurn) {
  const ClusterReport report = churn_run(/*lanes=*/4);
  EXPECT_FALSE(report.decisions.empty());
  EXPECT_GT(report.accepted_total(), 0u);
  // Every submitted job reached a final decision despite the churn.
  for (const JobDecision& d : report.decisions) {
    if (d.outcome == Placement::kRejected) {
      EXPECT_FALSE(d.reason.empty()) << d.to_string();
    }
  }
}

TEST(ClusterChurn, DeterministicAcrossRunsAndLaneCounts) {
  const ClusterReport a = churn_run(4);
  const ClusterReport b = churn_run(4);
  EXPECT_EQ(a.decision_log(), b.decision_log());

  // Lane count changes scheduling, not decisions: the batched controller's
  // FCFS parity keeps the decision sequence identical.
  const ClusterReport sequential = churn_run(1);
  EXPECT_EQ(a.decision_log(), sequential.decision_log());
}

ClusterReport fault_storm_run(std::size_t lanes) {
  WorkloadConfig wc;
  wc.seed = 91;
  wc.num_locations = 4;
  wc.mean_interarrival = 1.5;
  WorkloadGenerator gen(wc, CostModel());

  ClusterConfig config;
  config.seed = 91;
  config.node.lanes = lanes;
  config.default_link.jitter = 1;
  config.default_link.drop = 0.05;
  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < 4; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, 400)));
  }

  // A generated hostile schedule (crash/restart chains plus partition
  // blips, same-tick bounces allowed) and closed-loop retry clients, all on
  // top of multi-lane planning — the densest interleaving the tsan build
  // sees.
  faults::FaultProfile profile;
  profile.crash_rate = 0.9;
  profile.min_outage = 0;
  profile.partition_rate = 0.8;
  profile.min_cut = 0;
  util::Rng rng(91);
  sim.apply(faults::make_fault_schedule(rng, 4, 160, profile));
  faults::RetryPolicy policy;
  policy.max_attempts = 4;
  sim.set_retry_policy(policy, /*seed=*/91);

  for (const ClusterArrivalSpec& a : gen.make_cluster_arrivals(120, 4, 0.6)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
  }
  return sim.run(200);
}

TEST(ClusterChurn, RetryStormUnderGeneratedFaultScheduleIsDeterministic) {
  const ClusterReport a = fault_storm_run(/*lanes=*/4);
  EXPECT_FALSE(a.decisions.empty());
  // Every original job and every minted retry reached a final decision.
  for (const JobDecision& d : a.decisions) {
    if (d.outcome == Placement::kRejected) {
      EXPECT_FALSE(d.reason.empty()) << d.to_string();
    }
  }
  const ClusterReport b = fault_storm_run(/*lanes=*/4);
  EXPECT_EQ(a.decision_log(), b.decision_log());
  EXPECT_EQ(a.resubmissions, b.resubmissions);

  // Lane count stays unobservable in the decision log even with retries in
  // the arrival stream.
  const ClusterReport sequential = fault_storm_run(/*lanes=*/1);
  EXPECT_EQ(a.decision_log(), sequential.decision_log());
}

}  // namespace
}  // namespace rota::cluster
