// Property tests for the extension modules:
//   Q1  DAG plans respect every gate and cover every segment, on random DAGs;
//   Q2  negotiation answers are exact boundaries (d-1 infeasible, d feasible);
//   Q3  scenario files round-trip through the writer for random scenarios;
//   Q4  rate-capped plans never exceed the cap and replay cleanly;
//   Q5  CyberOrg isolate/assimilate conserves supply and commitments.
#include <gtest/gtest.h>

#include "rota/admission/negotiation.hpp"
#include "rota/cyberorgs/cyberorg.hpp"
#include "rota/io/scenario.hpp"
#include "rota/logic/dag_planner.hpp"
#include "rota/logic/theorems.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

class ExtensionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// ------------------------------------------------------------------
// Q1: random DAGs.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q1_RandomDagPlansRespectGates) {
  util::Rng rng(GetParam() * 37 + 3);
  std::vector<Location> sites = {Location("xp-s0"), Location("xp-s1"),
                                 Location("xp-s2")};
  CostModel phi;

  ResourceSet supply;
  for (const Location& l : sites) {
    supply.add(8, TimeInterval(0, 500), LocatedType::cpu(l));
  }

  for (int round = 0; round < 6; ++round) {
    // Random forward-edge DAG over n single-segment actors.
    const std::size_t n = static_cast<std::size_t>(rng.uniform(2, 6));
    std::vector<SegmentedActor> actors;
    for (std::size_t i = 0; i < n; ++i) {
      SegmentedActorBuilder b("n" + std::to_string(i), sites[rng.index(3)]);
      b.evaluate(rng.uniform(1, 3));
      actors.push_back(std::move(b).build());
    }
    std::vector<MessageDependency> deps;
    for (std::size_t j = 1; j < n; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (rng.chance(0.4)) deps.push_back({i, 0, j, 0});
      }
    }
    InteractingComputation c("dag", actors, deps, 0, 400);
    DagRequirement dag = make_dag_requirement(phi, c);
    auto plan = plan_dag(supply, dag);
    ASSERT_TRUE(plan.has_value()) << "round " << round;

    for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
      const SegmentPlan& seg = plan->segments[i];
      for (std::size_t dep : dag.nodes[i].waits_for) {
        EXPECT_GE(seg.start, plan->segments[dep].finish);
      }
      const DemandSet demand = dag.nodes[i].requirement.total_demand();
      for (const auto& [type, q] : demand.amounts()) {
        EXPECT_GE(seg.usage.at(type).integral(TimeInterval(seg.start, seg.finish)), q);
      }
    }
    // Aggregate usage within supply.
    for (const auto& [type, f] : plan->total_usage()) {
      EXPECT_TRUE(supply.availability(type).dominates(f));
    }
    // And the whole plan replays through the transition rules.
    ComputationPath path = realize_interacting_plan(supply, dag, *plan, 0);
    EXPECT_TRUE(path.back().all_finished());
  }
}

// ------------------------------------------------------------------
// Q2: negotiation boundaries are exact.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q2_NegotiationBoundariesAreExact) {
  WorkloadConfig config;
  config.seed = GetParam() * 101 + 7;
  config.num_locations = 3;
  config.cpu_rate = 6;
  config.network_rate = 6;
  config.actors_min = config.actors_max = 1;
  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 600));

  for (int round = 0; round < 6; ++round) {
    DistributedComputation lambda = gen.make_computation(0);
    ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), lambda);

    auto d = earliest_feasible_deadline(supply, rho, 500);
    if (d) {
      auto probe = [&](Tick deadline) {
        std::vector<ComplexRequirement> actors;
        for (const auto& a : rho.actors()) {
          actors.emplace_back(a.actor(), a.phases(), TimeInterval(0, deadline));
        }
        return plan_concurrent(supply,
                               ConcurrentRequirement("p", std::move(actors),
                                                     TimeInterval(0, deadline)),
                               PlanningPolicy::kAsap)
            .has_value();
      };
      EXPECT_TRUE(probe(*d));
      if (*d > 1) {
        EXPECT_FALSE(probe(*d - 1));
      }
    }

    auto s = latest_feasible_start(supply, rho);
    if (s) {
      auto probe = [&](Tick start) {
        std::vector<ComplexRequirement> actors;
        for (const auto& a : rho.actors()) {
          actors.emplace_back(a.actor(), a.phases(),
                              TimeInterval(start, rho.window().end()));
        }
        return plan_concurrent(
                   supply,
                   ConcurrentRequirement("p", std::move(actors),
                                         TimeInterval(start, rho.window().end())),
                   PlanningPolicy::kAsap)
            .has_value();
      };
      EXPECT_TRUE(probe(*s));
      if (*s + 1 < rho.window().end()) {
        EXPECT_FALSE(probe(*s + 1));
      }
    }
  }
}

// ------------------------------------------------------------------
// Q3: random scenarios round-trip.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q3_ScenarioRoundTrip) {
  WorkloadConfig config;
  config.seed = GetParam() * 57 + 11;
  config.num_locations = 4;
  WorkloadGenerator gen(config, CostModel());

  Scenario scenario;
  scenario.supply = gen.base_supply(TimeInterval(0, 200));
  for (int i = 0; i < 5; ++i) {
    scenario.computations.push_back(gen.make_computation(i * 13));
  }

  const std::string text = scenario_to_string(scenario);
  const Scenario reparsed = parse_scenario_string(text);
  EXPECT_EQ(scenario, reparsed);
  // And idempotent: writing again yields the same text.
  EXPECT_EQ(text, scenario_to_string(reparsed));
}

// ------------------------------------------------------------------
// Q4: rate caps.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q4_CappedPlansNeverExceedCap) {
  WorkloadConfig config;
  config.seed = GetParam() * 73 + 19;
  config.num_locations = 3;
  config.cpu_rate = 12;
  config.network_rate = 12;
  config.actors_min = 1;
  config.actors_max = 2;
  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 800));
  util::Rng rng(GetParam());

  for (int round = 0; round < 6; ++round) {
    DistributedComputation lambda = gen.make_computation(0);
    const Rate cap = rng.uniform(1, 4);
    // Generous deadline so the capped plan has room.
    DistributedComputation relaxed(lambda.name(), lambda.actors(),
                                   lambda.earliest_start(),
                                   lambda.earliest_start() + 600);
    ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), relaxed, cap);
    auto plan = plan_concurrent(supply, rho, PlanningPolicy::kAsap);
    ASSERT_TRUE(plan.has_value());
    for (const auto& actor : plan->actors) {
      for (const auto& [type, f] : actor.usage) {
        for (const auto& seg : f.segments()) {
          EXPECT_LE(seg.value, cap) << type.to_string();
        }
      }
    }
    // Replay validates the cap against the transition rules too.
    ComputationPath path = realize_plan(supply, rho, *plan, relaxed.earliest_start());
    EXPECT_TRUE(path.back().all_finished());
  }
}

// ------------------------------------------------------------------
// Q5: CyberOrg conservation.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q5_IsolateAssimilateConserves) {
  util::Rng rng(GetParam() * 7 + 1);
  Location l1("xp-co1"), l2("xp-co2");
  CostModel phi;

  ResourceSet supply;
  supply.add(8, TimeInterval(0, 100), LocatedType::cpu(l1));
  supply.add(8, TimeInterval(0, 100), LocatedType::cpu(l2));

  CyberOrg root("root", phi, supply);
  const Quantity total_before =
      root.ledger().supply().quantity(LocatedType::cpu(l1), TimeInterval(0, 100)) +
      root.ledger().supply().quantity(LocatedType::cpu(l2), TimeInterval(0, 100));

  // Random sequence of isolate / admit / assimilate.
  std::size_t child_id = 0;
  std::vector<std::string> live_children;
  std::size_t admitted = 0;
  for (int step = 0; step < 12; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.4) {
      ResourceSet slice;
      slice.add(1, TimeInterval(0, 100),
                LocatedType::cpu(rng.chance(0.5) ? l1 : l2));
      try {
        const std::string name = "c" + std::to_string(child_id++);
        root.create_child(name, slice);
        live_children.push_back(name);
      } catch (const std::invalid_argument&) {
        // Residual could not cover the slice — fine.
      }
    } else if (roll < 0.7 && !live_children.empty()) {
      EXPECT_TRUE(root.assimilate(live_children.back()));
      live_children.pop_back();
    } else {
      auto gamma = ActorComputationBuilder("a" + std::to_string(step),
                                           rng.chance(0.5) ? l1 : l2)
                       .evaluate()
                       .build();
      DistributedComputation job("job" + std::to_string(step), {gamma}, 0, 100);
      if (root.request(job, 0).accepted) ++admitted;
    }
  }
  // Dissolve everything back into the root.
  while (!live_children.empty()) {
    EXPECT_TRUE(root.assimilate(live_children.back()));
    live_children.pop_back();
  }
  // Supply is conserved and every admission is accounted for.
  const Quantity total_after =
      root.ledger().supply().quantity(LocatedType::cpu(l1), TimeInterval(0, 100)) +
      root.ledger().supply().quantity(LocatedType::cpu(l2), TimeInterval(0, 100));
  EXPECT_EQ(total_before, total_after);
  EXPECT_EQ(root.ledger().admitted_count(), admitted);
  EXPECT_EQ(root.subtree_size(), 1u);
}

// ------------------------------------------------------------------
// Q6: coarse-granularity reasoning is sound on the fine supply.
// ------------------------------------------------------------------

TEST_P(ExtensionPropertyTest, Q6_CoarsePlansAreValidOnFineSupply) {
  util::Rng rng(GetParam() * 211 + 13);
  WorkloadConfig config;
  config.seed = GetParam() * 19 + 3;
  config.num_locations = 3;
  config.cpu_rate = 2;
  config.network_rate = 4;
  WorkloadGenerator gen(config, CostModel());

  ResourceSet fine = gen.base_supply(TimeInterval(0, 400));
  const ChurnTrace churn = gen.make_churn(400, 0.5, 30.0, 6);
  for (const auto& e : churn.events()) fine.add(e.term);

  for (int round = 0; round < 5; ++round) {
    const Tick factor = rng.uniform(2, 8);
    const ResourceSet coarse = fine.coarsened(factor);
    // Conservatism: the fine supply dominates the coarse view everywhere.
    EXPECT_TRUE(fine.dominates(coarse)) << "factor=" << factor;

    DistributedComputation lambda = gen.make_computation(rng.uniform(0, 50));
    ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), lambda);
    auto plan = plan_concurrent(coarse, rho, PlanningPolicy::kAsap);
    if (!plan) continue;
    // A plan made at coarse granularity replays cleanly on the fine supply.
    ComputationPath path = realize_plan(fine, rho, *plan, lambda.earliest_start());
    EXPECT_TRUE(path.back().all_finished());
    EXPECT_FALSE(path.back().any_missed());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rota
