// Observability layer: metrics registry correctness under the pool's lanes
// (this file runs under the tsan ctest label), and the shape of the Chrome
// trace JSON a traced admission run emits — every B paired with its E,
// timestamps monotone per thread.
#include "rota/obs/obs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/runtime/thread_pool.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&c, &registry.counter("c"));  // stable handle

  registry.gauge("g").set(-7);
  EXPECT_EQ(registry.gauge("g").value(), -7);

  obs::Histogram& h = registry.histogram("h");
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1003u);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("c"), 42u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 4u);
  EXPECT_GE(snap.histograms.at("h").quantile_upper_bound(1.0), 1000u);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramBucketEdges) {
  // Bucket i holds v in (2^(i-1), 2^i]; bucket 0 holds v <= 1.
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(5), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t{1} << 40), 40u);
  // Values past the last bucket clamp instead of indexing out of range.
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), obs::Histogram::kBuckets - 1);
}

TEST(Metrics, HammeredFromThreadPoolLanesStaysExact) {
  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter("hits");
  obs::Histogram& lat = registry.histogram("lat");
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 5000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kPerTask; ++k) {
      hits.add();
      lat.record(i);
      // Registration races too: every lane asks for the same named counter.
      registry.counter("shared").add();
    }
  });
  EXPECT_EQ(hits.value(), kTasks * kPerTask);
  EXPECT_EQ(registry.counter("shared").value(), kTasks * kPerTask);
  EXPECT_EQ(lat.count(), kTasks * kPerTask);
  const obs::MetricsSnapshot snap = registry.snapshot();
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.histograms.at("lat").buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST(Metrics, SnapshotJsonHasStableShape) {
  obs::MetricsRegistry registry;
  registry.counter("a.b").add(3);
  registry.gauge("g").set(5);
  registry.histogram("h").record(7);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\": {\"a.b\": 3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\": {\"g\": 5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\": {\"count\": 1"), std::string::npos) << json;
}

// --------------------------------------------------------------------------
// Trace golden shape.

struct ParsedEvent {
  std::string name;
  char phase = '?';
  double ts = 0.0;
  int tid = -1;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return {};
  auto begin = pos + tag.size();
  auto end = begin;
  if (line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  return line.substr(begin, end - begin);
}

std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::size_t pos = 0;
  while ((pos = json.find("{\"name\": ", pos)) != std::string::npos) {
    // One event per line; the flat fields all precede any "args" object, so
    // field() never has to look past a nested comma.
    const std::size_t end = json.find('\n', pos);
    std::string line =
        json.substr(pos, end == std::string::npos ? end : end - pos);
    ParsedEvent e;
    e.name = field(line, "name");
    const std::string ph = field(line, "ph");
    e.phase = ph.empty() ? '?' : ph[0];
    e.ts = std::stod(field(line, "ts"));
    e.tid = std::stoi(field(line, "tid"));
    events.push_back(std::move(e));
    pos = end == std::string::npos ? json.size() : end + 1;
  }
  return events;
}

TEST(Trace, TracedBatchRunEmitsWellFormedChromeJson) {
  WorkloadConfig config;
  config.seed = 11;
  config.mean_interarrival = 4.0;
  config.laxity = 1.4;
  CostModel phi;
  WorkloadGenerator gen(config, phi);
  const Tick horizon = 200;
  std::vector<BatchRequest> requests;
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    requests.push_back(BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  ASSERT_GT(requests.size(), 10u);

  obs::MetricsRegistry::global().reset();
  obs::enable_metrics(true);
  obs::TraceRecorder recorder;
  recorder.install();
  BatchAdmissionController ctl(phi, gen.base_supply(TimeInterval(0, horizon)),
                               PlanningPolicy::kAsap, 4);
  const auto decisions = ctl.admit_batch(requests);
  recorder.uninstall();
  obs::enable_metrics(false);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();

  // Counters reconcile with the decision vector.
  std::size_t accepted = 0;
  for (const auto& d : decisions) accepted += d.accepted ? 1 : 0;
  EXPECT_EQ(snap.counter("plan.commit.accepted"), accepted);
  EXPECT_EQ(snap.counter("plan.commit.accepted") +
                snap.counter("plan.commit.rejected.deadline_passed") +
                snap.counter("plan.commit.rejected.no_plan") +
                snap.counter("plan.commit.rejected.conflict"),
            decisions.size());
  EXPECT_GT(snap.counter("batch.rounds"), 0u);
  EXPECT_GE(snap.counter("plan.speculate.count"), decisions.size());
  EXPECT_EQ(snap.histograms.at("batch.round_ns").count, snap.counter("batch.rounds"));

  const std::string json = recorder.to_chrome_json(&snap);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": "), std::string::npos);

  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_GT(events.size(), 4u);

  // Spans for every pipeline stage are present.
  std::map<std::string, std::size_t> names;
  for (const auto& e : events) names[e.name]++;
  EXPECT_GT(names["batch.round"], 0u);
  EXPECT_GT(names["plan.snapshot"], 0u);
  EXPECT_GT(names["plan.speculate"], 0u);
  EXPECT_GT(names["batch.commit"], 0u);
  EXPECT_GT(names["plan.commit"], 0u);
  EXPECT_GT(names["ledger.admit"], 0u);

  // Per thread: timestamps monotone, B/E properly nested and balanced.
  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> stacks;
  for (const auto& e : events) {
    ASSERT_TRUE(e.phase == 'B' || e.phase == 'E' || e.phase == 'i') << e.phase;
    auto [it, inserted] = last_ts.try_emplace(e.tid, e.ts);
    if (!inserted) {
      EXPECT_GE(e.ts, it->second) << "ts regressed on tid " << e.tid;
      it->second = e.ts;
    }
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack.empty()) << "E without B on tid " << e.tid;
      EXPECT_EQ(stack.back(), e.name) << "mismatched E on tid " << e.tid;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(Trace, NoSinkMeansNoEventsAndNoCrash) {
  ASSERT_EQ(obs::TraceRecorder::current(), nullptr);
  { ROTA_OBS_SPAN("orphan"); }
  obs::TraceRecorder recorder;  // never installed
  { ROTA_OBS_SPAN("still-orphan"); }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Trace, ReinstallingRecordersKeepsLogsSeparate) {
  obs::TraceRecorder first;
  first.install();
  { ROTA_OBS_SPAN("one"); }
  first.uninstall();

  obs::TraceRecorder second;
  second.install();
  { ROTA_OBS_SPAN("two"); }
  second.uninstall();

  EXPECT_EQ(first.event_count(), 2u);   // one B + one E
  EXPECT_EQ(second.event_count(), 2u);
  EXPECT_NE(first.to_chrome_json().find("\"one\""), std::string::npos);
  EXPECT_EQ(first.to_chrome_json().find("\"two\""), std::string::npos);
  EXPECT_NE(second.to_chrome_json().find("\"two\""), std::string::npos);
}

}  // namespace
}  // namespace rota
