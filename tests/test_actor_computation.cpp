#include "rota/computation/actor_computation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class ActorComputationTest : public ::testing::Test {
 protected:
  Location l1{"ac-l1"};
  Location l2{"ac-l2"};
  Location l3{"ac-l3"};
};

TEST_F(ActorComputationTest, BuilderRecordsSequence) {
  ActorComputation gamma = ActorComputationBuilder("a1", l1)
                               .evaluate(2)
                               .send(l2, 3)
                               .create()
                               .ready()
                               .build();
  EXPECT_EQ(gamma.actor(), "a1");
  ASSERT_EQ(gamma.action_count(), 4u);
  EXPECT_EQ(gamma.actions()[0].kind, ActionKind::kEvaluate);
  EXPECT_EQ(gamma.actions()[0].size, 2);
  EXPECT_EQ(gamma.actions()[1].kind, ActionKind::kSend);
  EXPECT_EQ(gamma.actions()[1].to, l2);
  EXPECT_EQ(gamma.actions()[2].kind, ActionKind::kCreate);
  EXPECT_EQ(gamma.actions()[3].kind, ActionKind::kReady);
}

TEST_F(ActorComputationTest, BuilderTracksLocationAcrossMigration) {
  ActorComputationBuilder builder("a1", l1);
  builder.evaluate();
  EXPECT_EQ(builder.current_location(), l1);
  builder.migrate(l2);
  EXPECT_EQ(builder.current_location(), l2);
  builder.evaluate();
  builder.migrate(l3);
  builder.send(l1);

  ActorComputation gamma = std::move(builder).build();
  ASSERT_EQ(gamma.action_count(), 5u);
  EXPECT_EQ(gamma.actions()[0].at, l1);
  EXPECT_EQ(gamma.actions()[1].at, l1);  // migrate executes at the source
  EXPECT_EQ(gamma.actions()[1].to, l2);
  EXPECT_EQ(gamma.actions()[2].at, l2);  // post-migration work happens at l2
  EXPECT_EQ(gamma.actions()[3].at, l2);
  EXPECT_EQ(gamma.actions()[4].at, l3);  // and after the second hop, at l3
}

TEST_F(ActorComputationTest, PossibleActionDefinitionOne) {
  ActorComputation gamma =
      ActorComputationBuilder("a1", l1).evaluate().send(l2).ready().build();
  // The first action is possible with nothing completed.
  EXPECT_TRUE(gamma.is_possible(0, 0));
  // A later action is possible exactly when all predecessors completed.
  EXPECT_FALSE(gamma.is_possible(1, 0));
  EXPECT_TRUE(gamma.is_possible(1, 1));
  EXPECT_FALSE(gamma.is_possible(2, 1));
  EXPECT_TRUE(gamma.is_possible(2, 2));
  // Out-of-range indices are never possible.
  EXPECT_FALSE(gamma.is_possible(3, 3));
}

TEST_F(ActorComputationTest, EmptyComputation) {
  ActorComputation gamma("idle", {});
  EXPECT_TRUE(gamma.empty());
  EXPECT_FALSE(gamma.is_possible(0, 0));
}

TEST_F(ActorComputationTest, AppendExtends) {
  ActorComputation gamma("a1", {});
  gamma.append(Action::evaluate(l1));
  EXPECT_EQ(gamma.action_count(), 1u);
}

TEST_F(ActorComputationTest, ToStringMentionsActorAndActions) {
  ActorComputation gamma = ActorComputationBuilder("worker", l1).evaluate().build();
  const std::string s = gamma.to_string();
  EXPECT_NE(s.find("worker"), std::string::npos);
  EXPECT_NE(s.find("evaluate"), std::string::npos);
}

TEST_F(ActorComputationTest, DistributedComputationAccessors) {
  ActorComputation g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  ActorComputation g2 = ActorComputationBuilder("a2", l2).evaluate().ready().build();
  DistributedComputation lambda("job", {g1, g2}, 5, 25);
  EXPECT_EQ(lambda.name(), "job");
  EXPECT_EQ(lambda.earliest_start(), 5);
  EXPECT_EQ(lambda.deadline(), 25);
  EXPECT_EQ(lambda.window(), TimeInterval(5, 25));
  EXPECT_EQ(lambda.actors().size(), 2u);
  EXPECT_EQ(lambda.total_actions(), 3u);
}

TEST_F(ActorComputationTest, DeadlineMustFollowStart) {
  ActorComputation g = ActorComputationBuilder("a1", l1).evaluate().build();
  EXPECT_THROW(DistributedComputation("bad", {g}, 10, 10), std::invalid_argument);
  EXPECT_THROW(DistributedComputation("bad", {g}, 10, 5), std::invalid_argument);
}

TEST_F(ActorComputationTest, DistributedToString) {
  ActorComputation g = ActorComputationBuilder("a1", l1).evaluate().build();
  DistributedComputation lambda("job7", {g}, 0, 9);
  const std::string s = lambda.to_string();
  EXPECT_NE(s.find("job7"), std::string::npos);
  EXPECT_NE(s.find("d=9"), std::string::npos);
}

}  // namespace
}  // namespace rota
