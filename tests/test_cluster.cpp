#include "rota/cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/cluster/digest.hpp"
#include "rota/cluster/fabric.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/io/scenario.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/workload/generator.hpp"

namespace rota::cluster {
namespace {

// ---------------------------------------------------------------------------
// MessageFabric

Message probe_msg(NodeId from, NodeId to, std::uint64_t job) {
  Message m;
  m.kind = MsgKind::kProbe;
  m.from = from;
  m.to = to;
  m.job = job;
  return m;
}

TEST(MessageFabric, DeliversAfterLinkLatency) {
  MessageFabric fabric(2, /*seed=*/7);
  fabric.send(probe_msg(0, 1, 1), /*now=*/0);
  EXPECT_TRUE(fabric.deliver_due(0).empty());  // latency >= 1
  const auto due = fabric.deliver_due(1);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].job, 1u);
  EXPECT_EQ(fabric.total_delivered(), 1u);
  EXPECT_EQ(fabric.in_flight(), 0u);
}

TEST(MessageFabric, RejectsSelfSends) {
  MessageFabric fabric(2, 7);
  EXPECT_THROW(fabric.send(probe_msg(0, 0, 1), 0), std::invalid_argument);
}

TEST(MessageFabric, SameSeedSameDeliverySequence) {
  LinkParams lossy;
  lossy.latency = 2;
  lossy.jitter = 3;
  lossy.drop = 0.2;
  lossy.reorder = 0.3;
  auto run = [&] {
    MessageFabric fabric(3, /*seed=*/42, lossy);
    std::vector<std::uint64_t> seen;
    std::uint64_t next_job = 0;
    for (Tick now = 0; now < 50; ++now) {
      for (const Message& m : fabric.deliver_due(now)) seen.push_back(m.job);
      fabric.send(probe_msg(0, 1, next_job++), now);
      fabric.send(probe_msg(1, 2, next_job++), now);
    }
    return seen;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(MessageFabric, PartitionDropsBothDirectionsUntilHealed) {
  MessageFabric fabric(2, 7);
  fabric.partition(0, 1);
  EXPECT_TRUE(fabric.partitioned(1, 0));
  fabric.send(probe_msg(0, 1, 1), 0);
  fabric.send(probe_msg(1, 0, 2), 0);
  EXPECT_EQ(fabric.total_dropped(), 2u);
  fabric.heal(0, 1);
  fabric.send(probe_msg(0, 1, 3), 0);
  EXPECT_EQ(fabric.deliver_due(10).size(), 1u);
}

TEST(MessageFabric, DownNodeDropsAtSendAndAtDelivery) {
  MessageFabric fabric(2, 7);
  fabric.send(probe_msg(0, 1, 1), 0);  // on the wire...
  fabric.set_down(1, true);
  EXPECT_TRUE(fabric.deliver_due(10).empty());  // ...died before delivery
  fabric.send(probe_msg(0, 1, 2), 10);          // dropped at send
  EXPECT_EQ(fabric.total_dropped(), 2u);
  fabric.set_down(1, false);
  fabric.send(probe_msg(0, 1, 3), 20);
  EXPECT_EQ(fabric.deliver_due(30).size(), 1u);
}

TEST(MessageFabric, DropProbabilityValidatedAndApplied) {
  LinkParams always_drop;
  always_drop.drop = 1.0;
  MessageFabric fabric(2, 7, always_drop);
  for (int i = 0; i < 10; ++i) fabric.send(probe_msg(0, 1, i), 0);
  EXPECT_EQ(fabric.total_dropped(), 10u);
  EXPECT_TRUE(fabric.deliver_due(100).empty());
}

TEST(MessageFabric, PartitionPurgesInFlightCrossingMessages) {
  // Regression: a cut that lands after send but before delivery must behave
  // like the wire went dead — queued messages crossing the new partition are
  // dropped and counted exactly once, traffic on other pairs survives.
  MessageFabric fabric(3, 7);
  fabric.send(probe_msg(0, 1, 1), 0);
  fabric.send(probe_msg(1, 0, 2), 0);  // same cut, opposite direction
  fabric.send(probe_msg(0, 2, 3), 0);  // different pair: untouched
  ASSERT_EQ(fabric.in_flight(), 3u);
  fabric.partition(0, 1);
  EXPECT_EQ(fabric.total_dropped(), 2u);
  EXPECT_EQ(fabric.in_flight(), 1u);
  // Re-cutting an already-partitioned pair is idempotent: nothing new to
  // purge, nothing double-counted.
  fabric.partition(1, 0);
  EXPECT_EQ(fabric.total_dropped(), 2u);
  const auto due = fabric.deliver_due(10);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].job, 3u);
}

// ---------------------------------------------------------------------------
// Supply digests

TEST(SupplyDigest, HullIsConservativeAndCompact) {
  Location site("dg-l1");
  ResourceSet supply;
  // A sawtooth with many segments.
  for (Tick t = 0; t < 64; t += 2) {
    supply.add(1 + (t / 2) % 5, TimeInterval(t, t + 2), LocatedType::cpu(site));
  }
  const ResourceSet hull = compact_hull(supply, /*max_segments=*/4);
  for (const LocatedType& type : hull.types()) {
    EXPECT_LE(hull.availability(type).segments().size(), 4u);
    // Never overstates: the true profile dominates the digest everywhere.
    EXPECT_TRUE(supply.availability(type).dominates(hull.availability(type)));
  }
}

TEST(SupplyDigest, MadeFromLedgerResidual) {
  Location site("dg-l2");
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 32), LocatedType::cpu(site));
  CommitmentLedger ledger(supply, 0);
  const SupplyDigest digest = make_digest(ledger, site, /*now=*/4, 8);
  EXPECT_EQ(digest.site, site);
  EXPECT_EQ(digest.as_of, 4);
  EXPECT_EQ(digest.revision, ledger.revision());
  // from(now) trims history: nothing before tick 4 is advertised.
  for (const LocatedType& type : digest.free.types()) {
    EXPECT_GE(digest.free.availability(type).segments().front().interval.start(), 4);
  }
}

// ---------------------------------------------------------------------------
// ClusterSim end-to-end

WorkSpec chunk_job(const std::string& name, std::vector<std::int64_t> chunks,
                   Tick s, Tick d) {
  WorkSpec w;
  w.actor = name;
  w.chunk_weights = std::move(chunks);
  w.state_size = 1;
  w.earliest_start = s;
  w.deadline = d;
  return w;
}

/// Two nodes: a starved origin and a fast peer one hop away.
ClusterSim two_node_cluster(std::uint64_t seed = 1) {
  ClusterConfig config;
  config.seed = seed;
  ClusterSim sim(CostModel(), config);
  ResourceSet slow, fast;
  slow.add(1, TimeInterval(0, 200), LocatedType::cpu(Location("cl-a")));
  fast.add(16, TimeInterval(0, 200), LocatedType::cpu(Location("cl-b")));
  sim.add_node(Location("cl-a"), slow);
  sim.add_node(Location("cl-b"), fast);
  return sim;
}

TEST(ClusterSim, LocalAdmissionWhenCapacitySuffices) {
  ClusterSim sim = two_node_cluster();
  // 8 cpu at rate 1 takes 8 ticks; window 40 is plenty.
  sim.submit(0, 0, chunk_job("local", {1}, 0, 40));
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kLocal);
  EXPECT_EQ(report.decisions[0].placed, 0u);
  EXPECT_EQ(report.forwarded_fraction(), 0.0);
}

TEST(ClusterSim, ForwardsOverflowToFastPeer) {
  ClusterSim sim = two_node_cluster();
  // 16 cpu at rate 1 needs 16 ticks but the window is 12 — locally
  // infeasible; the fast peer does it in one tick after a 2-tick transfer.
  sim.submit(10, 0, chunk_job("overflow", {2}, 10, 22));
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  const JobDecision& d = report.decisions[0];
  EXPECT_EQ(d.outcome, Placement::kRemote) << d.to_string();
  EXPECT_EQ(d.placed, 1u);
  EXPECT_GE(d.remote_rounds, 1u);
  EXPECT_LE(d.planned_finish, 22);
  EXPECT_EQ(report.forwarded_fraction(), 1.0);
  // The placement is recorded at the target.
  ASSERT_EQ(report.placements.size(), 1u);
  EXPECT_EQ(report.placements[0].node, 1u);
}

TEST(ClusterSim, RejectsWhenDeadlineBudgetExcludesEveryPeer) {
  ClusterConfig config;
  ClusterSim sim(CostModel(), config);
  ResourceSet slow, fast;
  slow.add(1, TimeInterval(0, 200), LocatedType::cpu(Location("db-a")));
  fast.add(16, TimeInterval(0, 200), LocatedType::cpu(Location("db-b")));
  sim.add_node(Location("db-a"), slow);
  sim.add_node(Location("db-b"), fast);
  LinkParams far;
  far.latency = 30;  // transfer alone overruns the 12-tick window
  sim.set_link(0, 1, far);
  sim.submit(10, 0, chunk_job("doomed", {2}, 10, 22));
  const ClusterReport report = sim.run(80);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kRejected);
  EXPECT_NE(report.decisions[0].reason.find("deadline budget"), std::string::npos)
      << report.decisions[0].reason;
  // The budget check fired before any probe went out for this job.
  EXPECT_EQ(report.decisions[0].remote_rounds, 0u);
}

TEST(ClusterSim, LocalOnlyModeNeverForwards) {
  ClusterConfig config;
  config.node.max_remote_rounds = 0;
  ClusterSim sim(CostModel(), config);
  ResourceSet slow, fast;
  slow.add(1, TimeInterval(0, 200), LocatedType::cpu(Location("lo-a")));
  fast.add(16, TimeInterval(0, 200), LocatedType::cpu(Location("lo-b")));
  sim.add_node(Location("lo-a"), slow);
  sim.add_node(Location("lo-b"), fast);
  sim.submit(10, 0, chunk_job("stuck", {2}, 10, 22));
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kRejected);
  EXPECT_EQ(report.forwarded_fraction(), 0.0);
}

TEST(ClusterSim, StaleOfferIsRevalidatedAtClaimTime) {
  // Both origins race for the same fast peer in the same tick. Probes are
  // speculative, so both get offers; the claims serialize at the target and
  // the loser must live with a claim-reject (stale) — never a double-commit.
  ClusterConfig config;
  ClusterSim sim(CostModel(), config);
  ResourceSet none_a, none_b, fast;
  none_a.add(1, TimeInterval(0, 200), LocatedType::cpu(Location("st-a")));
  none_b.add(1, TimeInterval(0, 200), LocatedType::cpu(Location("st-b")));
  // Room for exactly one of the two 16-cpu jobs within their windows.
  fast.add(2, TimeInterval(0, 200), LocatedType::cpu(Location("st-c")));
  sim.add_node(Location("st-a"), none_a);
  sim.add_node(Location("st-b"), none_b);
  sim.add_node(Location("st-c"), fast);
  sim.submit(10, 0, chunk_job("race0", {2}, 10, 24));
  sim.submit(10, 1, chunk_job("race1", {2}, 10, 24));
  const ClusterReport report = sim.run(80);
  ASSERT_EQ(report.decisions.size(), 2u);
  std::size_t remote = 0;
  for (const JobDecision& d : report.decisions) {
    if (d.outcome == Placement::kRemote) ++remote;
  }
  EXPECT_LE(remote, 1u);  // the target never over-commits
  EXPECT_LE(report.placements.size(), 1u);
}

TEST(ClusterSim, SameSeedSameDecisionLog) {
  auto run = [] {
    WorkloadConfig wc;
    wc.seed = 11;
    wc.num_locations = 4;
    wc.mean_interarrival = 4.0;
    WorkloadGenerator gen(wc, CostModel());
    ClusterConfig config;
    config.seed = 11;
    config.default_link.jitter = 2;
    config.default_link.drop = 0.05;
    ClusterSim sim(CostModel(), config);
    for (std::size_t i = 0; i < 4; ++i) {
      sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, 400)));
    }
    sim.schedule_partition(60, 0, 1);
    sim.schedule_heal(100, 0, 1);
    for (const ClusterArrivalSpec& a :
         gen.make_cluster_arrivals(200, 4, /*hot_fraction=*/0.6)) {
      sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
    }
    return sim.run(300);
  };
  const ClusterReport a = run();
  const ClusterReport b = run();
  EXPECT_FALSE(a.decisions.empty());
  EXPECT_EQ(a.decision_log(), b.decision_log());
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
}

TEST(ClusterSim, AdmittedPlacementsMeetDeadlinesInSimulator) {
  // End-to-end soundness: every placement the cluster committed (and no
  // crash destroyed) executes to its deadline in the plan-following sim.
  WorkloadConfig wc;
  wc.seed = 23;
  wc.num_locations = 3;
  wc.mean_interarrival = 5.0;
  WorkloadGenerator gen(wc, CostModel());
  ClusterConfig config;
  config.seed = 23;
  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < 3; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, 400)));
  }
  for (const ClusterArrivalSpec& a : gen.make_cluster_arrivals(150, 3, 0.5)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
  }
  const ResourceSet total = sim.total_supply();
  const ClusterReport report = sim.run(250);
  ASSERT_GT(report.accepted_total(), 0u);

  Simulator exec(total, 0, ExecutionMode::kPlanFollowing);
  report.schedule_into(exec);
  const SimReport outcome = exec.run(400);
  EXPECT_EQ(outcome.met(), outcome.outcomes.size());
  EXPECT_DOUBLE_EQ(outcome.miss_rate(), 0.0);
}

TEST(ClusterSim, CrashLosesPlacementsUnlessRecovered) {
  auto build = [] {
    ClusterSim sim = two_node_cluster();
    sim.submit(0, 1, chunk_job("victim", {8, 8}, 0, 60));
    return sim;
  };
  {
    ClusterSim sim = build();
    sim.schedule_crash(3, 1);  // mid-plan, never restarted
    const ClusterReport report = sim.run(80);
    ASSERT_EQ(report.decisions.size(), 1u);
    EXPECT_EQ(report.decisions[0].outcome, Placement::kLocal);
    EXPECT_TRUE(report.decisions[0].lost);
    EXPECT_EQ(report.lost(), 1u);
  }
  {
    ClusterSim sim = build();
    sim.schedule_crash(3, 1);
    sim.schedule_restart(5, 1, /*recover=*/true);  // audit-log replay
    const ClusterReport report = sim.run(80);
    ASSERT_EQ(report.decisions.size(), 1u);
    EXPECT_FALSE(report.decisions[0].lost);
    EXPECT_EQ(report.lost(), 0u);
  }
}

TEST(ClusterSim, SameTickCrashRestartBounceKeepsSameTickPlacements) {
  // Faults apply at the head of the tick: a crash→restart bounce at tick t
  // finishes before tick-t arrivals are decided, so a placement stamped at t
  // can only postdate the outage and must survive. The cluster fuzz family's
  // independent loss referee flushed out the old `>=` comparison that marked
  // such placements lost.
  ClusterSim sim = two_node_cluster();
  sim.submit(3, 1, chunk_job("bounce", {4}, 3, 40));
  sim.schedule_crash(3, 1);
  sim.schedule_restart(3, 1, /*recover=*/false);
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kLocal);
  EXPECT_FALSE(report.decisions[0].lost);
  EXPECT_EQ(report.lost(), 0u);
}

TEST(ClusterSim, ApplyFaultScheduleMatchesManualScheduling) {
  const auto run = [](bool via_schedule) {
    ClusterSim sim = two_node_cluster();
    sim.submit(0, 1, chunk_job("wal", {1, 1}, 0, 60));
    sim.submit(10, 0, chunk_job("cut", {2}, 10, 26));
    if (via_schedule) {
      faults::FaultSchedule s;
      s.crash(4, 1);
      s.restart(6, 1, /*recover=*/true);
      s.partition(8, 0, 1);
      s.heal(30, 0, 1);
      sim.apply(s);
    } else {
      sim.schedule_crash(4, 1);
      sim.schedule_restart(6, 1, /*recover=*/true);
      sim.schedule_partition(8, 0, 1);
      sim.schedule_heal(30, 0, 1);
    }
    return sim.run(80);
  };
  const ClusterReport manual = run(false);
  const ClusterReport applied = run(true);
  EXPECT_FALSE(applied.decisions.empty());
  EXPECT_EQ(applied.decision_log(), manual.decision_log());
  EXPECT_EQ(applied.messages_sent, manual.messages_sent);
  EXPECT_EQ(applied.messages_dropped, manual.messages_dropped);
}

TEST(ClusterSim, ApplyValidatesAgainstClusterSize) {
  ClusterSim sim = two_node_cluster();
  faults::FaultSchedule s;
  s.crash(4, 7);  // no such node
  EXPECT_THROW(sim.apply(s), std::invalid_argument);
}

TEST(ClusterSim, RecoveredLedgerMatchesPreCrashState) {
  ClusterSim sim = two_node_cluster();
  sim.submit(0, 1, chunk_job("wal", {1, 1}, 0, 60));
  sim.schedule_crash(4, 1);
  sim.schedule_restart(6, 1, /*recover=*/true);
  sim.run(40);
  const ClusterNode& node = sim.node(1);
  // The replayed ledger carries the pre-crash commitment, and replaying the
  // surviving audit log onto a second fresh ledger reproduces it exactly.
  ASSERT_EQ(node.ledger().admitted().size(), 1u);
  ResourceSet supply;
  supply.add(16, TimeInterval(0, 200), LocatedType::cpu(Location("cl-b")));
  CommitmentLedger reference(supply, 0);
  EXPECT_EQ(node.audit().replay_into(reference), 1u);
  EXPECT_EQ(reference.revision(), node.ledger().revision());
  EXPECT_EQ(reference.residual(), node.ledger().residual());
}

TEST(ClusterSim, CrashedOriginRejectsInFlightConversations) {
  ClusterSim sim = two_node_cluster();
  // Locally infeasible; the origin starts probing, then dies before the
  // claim can conclude.
  sim.submit(10, 0, chunk_job("orphaned", {2}, 10, 22));
  sim.schedule_crash(11, 0);
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kRejected);
  EXPECT_NE(report.decisions[0].reason.find("crashed"), std::string::npos);
}

TEST(ClusterSim, PartitionDegradesToLocalOnlyBehaviour) {
  ClusterSim sim = two_node_cluster();
  sim.schedule_partition(0, 0, 1);
  sim.submit(10, 0, chunk_job("cut-off", {2}, 10, 26));
  const ClusterReport report = sim.run(80);
  ASSERT_EQ(report.decisions.size(), 1u);
  // Probes vanish into the partition; retries burn out; the job ends
  // rejected rather than hanging forever.
  EXPECT_EQ(report.decisions[0].outcome, Placement::kRejected);
  EXPECT_GT(report.messages_dropped, 0u);
}

TEST(ClusterSim, RetryStormResubmitsUntilThePeerComesBack) {
  // Closed-loop clients: the job is locally infeasible at the starved origin
  // and the fast peer is down, so the first attempts reject. Retries carry a
  // fresh job id, inherit the root's deadline, and keep resubmitting with
  // capped backoff until the peer restarts and a forward lands.
  const auto run = [] {
    ClusterSim sim = two_node_cluster();
    sim.schedule_crash(0, 1);
    sim.schedule_restart(24, 1, /*recover=*/true);
    faults::RetryPolicy policy;
    policy.max_attempts = 8;
    policy.backoff_base = 1;
    policy.backoff_cap = 4;
    policy.jitter = 1;
    sim.set_retry_policy(policy, /*seed=*/5);
    // 64 cpu-ticks of work: the 1-cpu origin can't finish before tick 74,
    // but the 16-cpu peer clears it in 4 once it is back.
    sim.submit(10, 0, chunk_job("storm", {8}, 10, 60));
    return sim.run(120);
  };
  const ClusterReport report = run();
  ASSERT_GT(report.resubmissions, 0u);
  EXPECT_EQ(report.retry_root.size(), report.resubmissions);
  // Every decision is accounted for: one per original job plus one per retry.
  EXPECT_EQ(report.decisions.size(), 1u + report.resubmissions);
  for (const auto& [retry, root] : report.retry_root) {
    EXPECT_EQ(root, 0u);
    EXPECT_GT(retry, 0u);
  }
  // The storm converges: some attempt of the root job was accepted and ran.
  EXPECT_DOUBLE_EQ(report.root_hit_rate(), 1.0);

  // Same schedule, same policy, same seeds — byte-identical replay.
  const ClusterReport replay = run();
  EXPECT_EQ(replay.decision_log(), report.decision_log());
  EXPECT_EQ(replay.resubmissions, report.resubmissions);
  EXPECT_EQ(replay.messages_sent, report.messages_sent);
}

TEST(ClusterSim, RetryPolicyRefusedAfterRun) {
  ClusterSim sim = two_node_cluster();
  sim.run(10);
  EXPECT_THROW(sim.set_retry_policy(faults::RetryPolicy{}, 1),
               std::logic_error);
}

TEST(ClusterSim, GossipPopulatesPeerDigests) {
  ClusterSim sim = two_node_cluster();
  sim.submit(30, 0, chunk_job("late", {1}, 30, 70));
  sim.run(60);
  // Default gossip period 8: by tick 60 both nodes have heard from each
  // other repeatedly.
  EXPECT_EQ(sim.node(0).digests().size(), 1u);
  EXPECT_EQ(sim.node(1).digests().size(), 1u);
  EXPECT_GT(sim.node(0).digests().at(1).as_of, 0);
}

// ---------------------------------------------------------------------------
// Scenario round trip + construction

TEST(ClusterScenario, NodesAndLinksRoundTrip) {
  const std::string text =
      "supply cpu sa 4 0 100\n"
      "supply cpu sb 8 0 100\n"
      "node alpha sa 2\n"
      "node beta sb\n"
      "link alpha beta 3 1 50\n";
  const Scenario s = parse_scenario_string(text);
  ASSERT_EQ(s.nodes.size(), 2u);
  EXPECT_EQ(s.nodes[0].name, "alpha");
  EXPECT_EQ(s.nodes[0].lanes, 2u);
  EXPECT_EQ(s.nodes[1].lanes, 1u);
  ASSERT_EQ(s.links.size(), 1u);
  EXPECT_EQ(s.links[0].latency, 3);
  EXPECT_EQ(s.links[0].jitter, 1);
  EXPECT_EQ(s.links[0].drop_permille, 50);

  const Scenario reparsed = parse_scenario_string(scenario_to_string(s));
  EXPECT_EQ(reparsed, s);
}

TEST(ClusterScenario, OldFilesWithoutClusterSectionStillParse) {
  const Scenario s = parse_scenario_string(
      "supply cpu l1 4 0 10\n"
      "computation c 0 8\n"
      "  actor a l1\n"
      "    evaluate 1\n"
      "end\n");
  EXPECT_TRUE(s.nodes.empty());
  EXPECT_TRUE(s.links.empty());
  ASSERT_EQ(s.computations.size(), 1u);
}

TEST(ClusterScenario, ParserRejectsMalformedClusterStatements) {
  EXPECT_THROW(parse_scenario_string("node solo\n"), ScenarioParseError);
  EXPECT_THROW(parse_scenario_string("node a la\nnode a lb\n"), ScenarioParseError);
  EXPECT_THROW(parse_scenario_string("node a la\nlink a ghost 2\n"),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_string("node a la\nnode b lb\nlink a b 0\n"),
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_string("node a la\nnode b lb\nlink a b 1 0 2000\n"),
               ScenarioParseError);
}

TEST(ClusterScenario, BuildsRunnableClusterFromScenario) {
  const Scenario s = parse_scenario_string(
      "supply cpu fa 1 0 200\n"
      "supply cpu fb 16 0 200\n"
      "node a fa\n"
      "node b fb\n"
      "link a b 1\n");
  ClusterSim sim = cluster_from_scenario(s, CostModel(), ClusterConfig{});
  ASSERT_EQ(sim.size(), 2u);
  sim.submit(10, 0, chunk_job("sc", {2}, 10, 22));
  const ClusterReport report = sim.run(60);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kRemote);
}

TEST(ClusterScenario, FaultStatementsDriveTheBuiltCluster) {
  // `fault` lines ride the scenario into cluster_from_scenario: node b
  // crashes mid-plan and is never restarted, so its placement ends lost —
  // the same outcome CrashLosesPlacementsUnlessRecovered pins by hand.
  const Scenario s = parse_scenario_string(
      "supply cpu fa 1 0 200\n"
      "supply cpu fb 16 0 200\n"
      "node a fa\n"
      "node b fb\n"
      "link a b 1\n"
      "fault crash b 3\n");
  ASSERT_EQ(s.faults.size(), 1u);
  ClusterSim sim = cluster_from_scenario(s, CostModel(), ClusterConfig{});
  sim.submit(0, 1, chunk_job("victim", {8, 8}, 0, 60));
  const ClusterReport report = sim.run(80);
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].outcome, Placement::kLocal);
  EXPECT_TRUE(report.decisions[0].lost);
}

TEST(ClusterScenario, ThrowsWithoutNodes) {
  EXPECT_THROW(
      cluster_from_scenario(Scenario{}, CostModel(), ClusterConfig{}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Report arithmetic

TEST(ClusterReport, RatesFromDecisions) {
  ClusterReport report;
  JobDecision local;
  local.outcome = Placement::kLocal;
  JobDecision remote;
  remote.outcome = Placement::kRemote;
  JobDecision rejected;
  rejected.outcome = Placement::kRejected;
  JobDecision lost = local;
  lost.lost = true;
  report.decisions = {local, remote, rejected, lost};
  EXPECT_EQ(report.accepted_total(), 3u);
  EXPECT_EQ(report.rejected(), 1u);
  EXPECT_EQ(report.lost(), 1u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(report.forwarded_fraction(), 1.0 / 3.0);
}

TEST(ClusterReport, EmptyDefaults) {
  ClusterReport report;
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(report.forwarded_fraction(), 0.0);
  EXPECT_TRUE(report.decision_log().empty());
}

}  // namespace
}  // namespace rota::cluster
