#include "rota/io/trace.hpp"

#include <gtest/gtest.h>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  Location l1{"tr-l1"};
  Location l2{"tr-l2"};
  CostModel phi;

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 40), LocatedType::cpu(l1));
    s.add(4, TimeInterval(0, 40), LocatedType::network(l1, l2));
    return s;
  }

  ConcurrentPlan plan() {
    auto gamma = ActorComputationBuilder("worker", l1).evaluate().send(l2).build();
    DistributedComputation lambda("job", {gamma}, 0, 40);
    auto p = plan_concurrent(supply(), make_concurrent_requirement(phi, lambda),
                             PlanningPolicy::kAsap);
    EXPECT_TRUE(p.has_value());
    return *p;
  }
};

TEST_F(TraceTest, GanttHasARowPerActorType) {
  const std::string chart = render_gantt(plan());
  EXPECT_NE(chart.find("worker <cpu, tr-l1>"), std::string::npos);
  EXPECT_NE(chart.find("worker <network, tr-l1 -> tr-l2>"), std::string::npos);
  EXPECT_NE(chart.find("peak=4"), std::string::npos);
  EXPECT_NE(chart.find("t=0"), std::string::npos);
}

TEST_F(TraceTest, GanttEmptyPlan) {
  ConcurrentPlan empty;
  EXPECT_EQ(render_gantt(empty), "(empty plan)\n");
}

TEST_F(TraceTest, GanttRespectsExplicitWindow) {
  GanttOptions options;
  options.window = TimeInterval(0, 10);
  const std::string chart = render_gantt(plan(), options);
  EXPECT_NE(chart.find("t=10"), std::string::npos);
}

TEST_F(TraceTest, GanttCompressesLongPlans) {
  GanttOptions options;
  options.window = TimeInterval(0, 400);
  options.max_columns = 40;
  const std::string chart = render_gantt(plan(), options);
  EXPECT_NE(chart.find("1 col = 10 ticks"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentPlanJson) {
  const std::string json = to_json(plan());
  EXPECT_NE(json.find("\"computation\":\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"finish\":3"), std::string::npos);
  EXPECT_NE(json.find("\"actor\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"cut_points\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"rate\":4"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, InteractingPlanRendersAndExports) {
  SegmentedActorBuilder a("a", l1);
  a.evaluate(1);
  a.await();
  a.evaluate(1);
  SegmentedActorBuilder b("b", l2);
  b.evaluate(1);
  ResourceSet s = supply();
  s.add(4, TimeInterval(0, 40), LocatedType::cpu(l2));
  InteractingComputation c("duo", {std::move(a).build(), std::move(b).build()},
                           {{1, 0, 0, 1}}, 0, 40);
  auto p = plan_interacting(s, phi, c);
  ASSERT_TRUE(p.has_value());

  const std::string chart = render_gantt(*p);
  EXPECT_NE(chart.find("a0#0"), std::string::npos);
  EXPECT_NE(chart.find("a1#0"), std::string::npos);

  const std::string json = to_json(*p);
  EXPECT_NE(json.find("\"segments\":["), std::string::npos);
  EXPECT_NE(json.find("\"segment\":1"), std::string::npos);
}

TEST_F(TraceTest, PathJson) {
  SystemState s0(supply(), 0);
  ComputationPath path(std::move(s0));
  auto gamma = ActorComputationBuilder("worker", l1).evaluate().build();
  DistributedComputation lambda("job", {gamma}, 0, 10);
  path.apply(AccommodateStep{make_concurrent_requirement(phi, lambda)});
  path.apply(TickStep{{{0, LocatedType::cpu(l1), 4}}});

  const std::string json = to_json(path);
  EXPECT_NE(json.find("\"states\":["), std::string::npos);
  EXPECT_NE(json.find("\"t\":1"), std::string::npos);
  EXPECT_NE(json.find("accommodate(job)"), std::string::npos);
}

}  // namespace
}  // namespace rota
