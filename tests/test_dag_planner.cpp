#include "rota/logic/dag_planner.hpp"

#include <gtest/gtest.h>

namespace rota {
namespace {

class DagPlannerTest : public ::testing::Test {
 protected:
  Location l1{"dp-l1"};
  Location l2{"dp-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);
  LocatedType net12 = LocatedType::network(l1, l2);
  LocatedType net21 = LocatedType::network(l2, l1);

  ResourceSet supply(Tick until = 40) {
    ResourceSet s;
    s.add(4, TimeInterval(0, until), cpu1);
    s.add(4, TimeInterval(0, until), cpu2);
    s.add(4, TimeInterval(0, until), net12);
    s.add(4, TimeInterval(0, until), net21);
    return s;
  }

  InteractingComputation rpc(Tick s, Tick d) {
    SegmentedActorBuilder client("client", l1);
    client.evaluate(1).send(l2);
    client.await();
    client.evaluate(1).ready();
    SegmentedActorBuilder server("server", l2);
    server.evaluate(2).send(l1);
    return InteractingComputation(
        "rpc", {std::move(client).build(), std::move(server).build()},
        {{0, 0, 1, 0}, {1, 0, 0, 1}}, s, d);
  }

  void check_plan(const InteractingPlan& plan, const DagRequirement& dag,
                  const ResourceSet& available) {
    ASSERT_EQ(plan.segments.size(), dag.nodes.size());
    // Usage within availability (aggregated).
    for (const auto& [type, f] : plan.total_usage()) {
      EXPECT_TRUE(available.availability(type).dominates(f)) << type.to_string();
    }
    for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
      const SegmentPlan& seg = plan.segments[i];
      // Precedence: start at or after every awaited segment's finish.
      for (std::size_t dep : dag.nodes[i].waits_for) {
        EXPECT_GE(seg.start, plan.segments[dep].finish)
            << "segment " << i << " starts before its gate " << dep;
      }
      // Demand covered within [start, finish].
      const DemandSet demand = dag.nodes[i].requirement.total_demand();
      for (const auto& [type, q] : demand.amounts()) {
        EXPECT_GE(seg.usage.at(type).integral(TimeInterval(seg.start, seg.finish)), q);
      }
      EXPECT_LE(seg.finish, dag.window.end());
    }
  }
};

TEST_F(DagPlannerTest, PlansRpcRespectingGates) {
  InteractingComputation c = rpc(0, 40);
  DagRequirement dag = make_dag_requirement(phi, c);
  auto plan = plan_dag(supply(), dag);
  ASSERT_TRUE(plan.has_value());
  check_plan(*plan, dag, supply());

  // The reply gate forces strict sequencing: client#1 starts only after
  // server#0 finishes, which starts only after client#0 finishes.
  const SegmentPlan& client0 = plan->segments[0];
  const SegmentPlan& client1 = plan->segments[1];
  const SegmentPlan& server0 = plan->segments[2];
  EXPECT_GE(server0.start, client0.finish);
  EXPECT_GE(client1.start, server0.finish);
  EXPECT_EQ(plan->finish, client1.finish);
}

TEST_F(DagPlannerTest, GatesDelayVersusIndependentActors) {
  // The same work without the message gates finishes earlier: dependencies
  // serialize what independence would parallelize.
  InteractingComputation gated = rpc(0, 40);
  auto gated_plan = plan_interacting(supply(), phi, gated);
  ASSERT_TRUE(gated_plan.has_value());

  InteractingComputation free(
      "free", gated.actors(), /*dependencies=*/{}, 0, 40);
  auto free_plan = plan_interacting(supply(), phi, free);
  ASSERT_TRUE(free_plan.has_value());
  EXPECT_LT(free_plan->finish, gated_plan->finish);
}

TEST_F(DagPlannerTest, InfeasibleWhenGatesEatTheWindow) {
  // The chain needs ~3 + 5 + 3 ticks of sequenced work; a window of 6 fails.
  EXPECT_FALSE(plan_interacting(supply(), phi, rpc(0, 6)).has_value());
  EXPECT_TRUE(plan_interacting(supply(), phi, rpc(0, 20)).has_value());
}

TEST_F(DagPlannerTest, InfeasibleWhenSupplyMissing) {
  ResourceSet no_backlink;
  no_backlink.add(4, TimeInterval(0, 40), cpu1);
  no_backlink.add(4, TimeInterval(0, 40), cpu2);
  no_backlink.add(4, TimeInterval(0, 40), net12);
  // The reply (server -> client) has no link.
  EXPECT_FALSE(plan_interacting(no_backlink, phi, rpc(0, 40)).has_value());
}

TEST_F(DagPlannerTest, ParallelBranchesShareSupply) {
  // Fan-out: a coordinator releases two workers on the same node; they share
  // its cpu, so the joint finish reflects contention.
  SegmentedActorBuilder coord("coord", l1);
  coord.evaluate(1);
  SegmentedActorBuilder w1("w1", l2);
  w1.evaluate(2);
  SegmentedActorBuilder w2("w2", l2);
  w2.evaluate(2);
  InteractingComputation fanout(
      "fanout",
      {std::move(coord).build(), std::move(w1).build(), std::move(w2).build()},
      {{0, 0, 1, 0}, {0, 0, 2, 0}}, 0, 40);

  auto plan = plan_interacting(supply(), phi, fanout);
  ASSERT_TRUE(plan.has_value());
  DagRequirement dag = make_dag_requirement(phi, fanout);
  check_plan(*plan, dag, supply());
  // coord: 8 cpu@l1 at rate 4 → finishes at 2. Each worker needs 16 cpu@l2;
  // combined 32 at rate 4 → 8 ticks after the gate: finish 10.
  EXPECT_EQ(plan->segments[0].finish, 2);
  EXPECT_EQ(plan->finish, 10);
}

TEST_F(DagPlannerTest, EmptySegmentListTriviallyPlanned) {
  DagRequirement dag;
  dag.name = "empty";
  dag.window = TimeInterval(0, 10);
  auto plan = plan_dag(ResourceSet{}, dag);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->segments.empty());
}

TEST_F(DagPlannerTest, HandBuiltCyclicDagReturnsNullopt) {
  DagRequirement dag;
  dag.name = "cycle";
  dag.window = TimeInterval(0, 10);
  SegmentRequirement a;
  a.requirement = ComplexRequirement("a", {}, dag.window);
  a.waits_for = {1};
  SegmentRequirement b;
  b.requirement = ComplexRequirement("b", {}, dag.window);
  b.waits_for = {0};
  dag.nodes = {a, b};
  EXPECT_FALSE(plan_dag(ResourceSet{}, dag).has_value());
}

TEST_F(DagPlannerTest, RealizedPlanSurvivesTransitionRules) {
  InteractingComputation c = rpc(0, 40);
  DagRequirement dag = make_dag_requirement(phi, c);
  auto plan = plan_dag(supply(), dag);
  ASSERT_TRUE(plan.has_value());
  ComputationPath path = realize_interacting_plan(supply(), dag, *plan, 0);
  EXPECT_TRUE(path.back().all_finished());
  EXPECT_FALSE(path.back().any_missed());
  EXPECT_EQ(path.back().now(), plan->finish);
}

TEST_F(DagPlannerTest, RealizeRejectsArityMismatch) {
  InteractingComputation c = rpc(0, 40);
  DagRequirement dag = make_dag_requirement(phi, c);
  InteractingPlan empty;
  EXPECT_THROW(realize_interacting_plan(supply(), dag, empty, 0), std::logic_error);
}

TEST_F(DagPlannerTest, RealizeCatchesGateViolations) {
  // Corrupt a valid plan: shift the gated segment's usage before its gate.
  InteractingComputation c = rpc(0, 40);
  DagRequirement dag = make_dag_requirement(phi, c);
  auto plan = plan_dag(supply(), dag);
  ASSERT_TRUE(plan.has_value());

  // Segment 2 (server) starts after client#0; yank its usage to t=0 while
  // keeping the recorded start, so consumption precedes the window.
  InteractingPlan corrupted = *plan;
  SegmentPlan& server = corrupted.segments[2];
  const Tick shift = server.start;
  ASSERT_GT(shift, 0);
  std::map<LocatedType, StepFunction> early;
  for (const auto& [type, f] : server.usage) early.emplace(type, f.shifted(-shift));
  server.usage = std::move(early);
  EXPECT_THROW(realize_interacting_plan(supply(), dag, corrupted, 0),
               std::logic_error);
}

TEST_F(DagPlannerTest, UsageAsResourcesIsSubtractable) {
  auto plan = plan_interacting(supply(), phi, rpc(0, 40));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(supply().relative_complement(plan->usage_as_resources()).has_value());
}

}  // namespace
}  // namespace rota
