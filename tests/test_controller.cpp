#include "rota/admission/controller.hpp"

#include <gtest/gtest.h>

#include "rota/logic/theorems.hpp"

namespace rota {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  Location l1{"ct-l1"};
  Location l2{"ct-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 20), cpu1);
    s.add(4, TimeInterval(0, 20), net12);
    return s;
  }

  DistributedComputation job(const std::string& name, Tick s, Tick d,
                             std::int64_t weight = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", l1).evaluate(weight).build();
    return DistributedComputation(name, {gamma}, s, d);
  }
};

TEST_F(ControllerTest, AdmitsFeasibleComputation) {
  RotaAdmissionController ctl(phi, supply());
  AdmissionDecision d = ctl.request(job("j1", 0, 10), 0);
  EXPECT_TRUE(d.accepted);
  ASSERT_TRUE(d.plan.has_value());
  EXPECT_LE(d.plan->finish, 10);
  EXPECT_EQ(ctl.ledger().admitted_count(), 1u);
}

TEST_F(ControllerTest, RejectsInfeasibleComputation) {
  RotaAdmissionController ctl(phi, supply());
  // 80 cpu needed, 4/tick over 5 ticks = 20 available.
  AdmissionDecision d = ctl.request(job("big", 0, 5, 10), 0);
  EXPECT_FALSE(d.accepted);
  EXPECT_FALSE(d.plan.has_value());
  EXPECT_FALSE(d.reason.empty());
  EXPECT_EQ(ctl.ledger().admitted_count(), 0u);
}

TEST_F(ControllerTest, RejectsPastDeadline) {
  RotaAdmissionController ctl(phi, supply());
  AdmissionDecision d = ctl.request(job("late", 0, 5), 7);
  EXPECT_FALSE(d.accepted);
  EXPECT_NE(d.reason.find("deadline"), std::string::npos);
}

TEST_F(ControllerTest, ClipsWindowToRequestTime) {
  RotaAdmissionController ctl(phi, supply());
  // Requested at t=8 with window (0, 10): only 2 ticks (8 cpu) remain — fits
  // exactly; at t=9 a single tick (4 cpu) does not.
  EXPECT_TRUE(ctl.request(job("just", 0, 10), 8).accepted);
  RotaAdmissionController ctl2(phi, supply());
  EXPECT_FALSE(ctl2.request(job("nope", 0, 10), 9).accepted);
}

TEST_F(ControllerTest, AdmissionsAccumulateUntilSaturation) {
  RotaAdmissionController ctl(phi, supply());
  // Window (0, 10) at rate 4 holds 40 cpu; each job needs 8 → 5 fit.
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    if (ctl.request(job("j" + std::to_string(i), 0, 10), 0).accepted) ++accepted;
  }
  EXPECT_EQ(accepted, 5);
}

TEST_F(ControllerTest, AdmittedPlansNeverOverlap) {
  RotaAdmissionController ctl(phi, supply());
  std::vector<ConcurrentPlan> plans;
  for (int i = 0; i < 5; ++i) {
    auto d = ctl.request(job("j" + std::to_string(i), 0, 10), 0);
    ASSERT_TRUE(d.accepted);
    plans.push_back(*d.plan);
  }
  ResourceSet combined;
  for (const auto& p : plans) combined = combined.unioned(p.usage_as_resources());
  EXPECT_TRUE(supply().relative_complement(combined).has_value());
}

TEST_F(ControllerTest, ResourceJoinEnablesLaterAdmission) {
  ResourceSet thin;
  thin.add(1, TimeInterval(0, 4), cpu1);
  RotaAdmissionController ctl(phi, thin);
  EXPECT_FALSE(ctl.request(job("j1", 0, 4), 0).accepted);
  ResourceSet extra;
  extra.add(4, TimeInterval(0, 4), cpu1);
  ctl.on_join(extra);
  EXPECT_TRUE(ctl.request(job("j1", 0, 4), 0).accepted);
}

TEST_F(ControllerTest, ReleaseFreesCapacity) {
  RotaAdmissionController ctl(phi, supply());
  // Fill the window.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ctl.request(job("j" + std::to_string(i), 5, 15), 0).accepted);
  }
  EXPECT_FALSE(ctl.request(job("extra", 5, 15), 0).accepted);
  EXPECT_TRUE(ctl.release("j0"));
  EXPECT_TRUE(ctl.request(job("extra", 5, 15), 0).accepted);
}

TEST_F(ControllerTest, PlanFollowsConfiguredPolicy) {
  RotaAdmissionController asap(phi, supply(), PlanningPolicy::kAsap);
  RotaAdmissionController alap(phi, supply(), PlanningPolicy::kAlap);
  auto da = asap.request(job("j", 0, 10), 0);
  auto dl = alap.request(job("j", 0, 10), 0);
  ASSERT_TRUE(da.accepted && dl.accepted);
  EXPECT_EQ(da.plan->finish, 2);   // asap: front of the window
  EXPECT_EQ(dl.plan->finish, 10);  // alap: flush against the deadline
}

TEST_F(ControllerTest, EquivalenceWithTheorem4) {
  // The online controller and the offline Theorem-4 check agree: admit a
  // first job, then compare verdicts for a second one.
  RotaAdmissionController ctl(phi, supply());
  auto d1 = ctl.request(job("first", 0, 10), 0);
  ASSERT_TRUE(d1.accepted);

  ConcurrentRequirement rho1 =
      make_concurrent_requirement(phi, job("first", 0, 10));
  ComputationPath sigma = realize_plan(supply(), rho1, *d1.plan, 0);

  for (Tick d : {3, 5, 10, 20}) {
    ConcurrentRequirement rho2 =
        make_concurrent_requirement(phi, job("second", 0, d));
    RotaAdmissionController copy = ctl;  // probe without mutating
    const bool online = copy.request(rho2, 0).accepted;
    const bool offline = theorem4_accommodate(sigma, 0, rho2).has_value();
    EXPECT_EQ(online, offline) << "d=" << d;
  }
}

}  // namespace
}  // namespace rota
