// Small-scale runs of every differential-oracle family, pinned to fixed
// seeds so the suite fails the moment any calculus / kernel / sim surface
// drifts from its referee. The rota_fuzz binary runs the same oracles at
// CI scale; these keep a fast always-on slice inside the tier-1 suite.
#include "rota/fuzz/oracles.hpp"

#include <gtest/gtest.h>

#include "rota/fuzz/gen.hpp"
#include "rota/fuzz/reference.hpp"

namespace rota::fuzz {
namespace {

std::string describe(const OracleReport& report) {
  std::string out = report.summary();
  for (const Divergence& d : report.divergences) out += "\n" + d.to_string();
  return out;
}

TEST(FuzzOracles, CaseSeedIsMixedAndReproducible) {
  EXPECT_EQ(case_seed(1, 0), case_seed(1, 0));
  EXPECT_NE(case_seed(1, 0), case_seed(1, 1));
  EXPECT_NE(case_seed(1, 0), case_seed(2, 0));
  // Adjacent indices must not produce correlated generator streams.
  Gen a(case_seed(7, 3));
  Gen b(case_seed(7, 4));
  EXPECT_NE(a.rng().next_u64(), b.rng().next_u64());
}

TEST(FuzzOracles, RefereesAgreeOnAKnownFunction) {
  // Sanity-check the dense referee itself on a hand-computed example.
  StepFunction f;
  DenseFn ref(-8, 24);
  f.add(TimeInterval(0, 4), 3);
  ref.add(TimeInterval(0, 4), 3);
  f.add(TimeInterval(2, 6), -1);
  ref.add(TimeInterval(2, 6), -1);
  EXPECT_EQ(diff_fn(f, ref), std::nullopt);
  EXPECT_EQ(ref.at(1), 3);
  EXPECT_EQ(ref.at(3), 2);
  EXPECT_EQ(ref.at(5), -1);
  EXPECT_EQ(ref.min_value(), -1);
  EXPECT_EQ(ref.integral(TimeInterval(0, 6)), 8);
}

TEST(FuzzOracles, CalculusFamilyIsDivergenceFree) {
  const OracleReport report = run_calculus_oracle(20260807, 150);
  EXPECT_TRUE(report.clean()) << describe(report);
  EXPECT_EQ(report.cases, 150u);
  EXPECT_GT(report.checks, 0u);
}

TEST(FuzzOracles, KernelFamilyIsDivergenceFree) {
  const OracleReport report = run_kernel_oracle(20260807, 40);
  EXPECT_TRUE(report.clean()) << describe(report);
  EXPECT_EQ(report.cases, 40u);
}

TEST(FuzzOracles, SimFamilyIsDivergenceFree) {
  const OracleReport report = run_sim_oracle(20260807, 25);
  EXPECT_TRUE(report.clean()) << describe(report);
  EXPECT_EQ(report.cases, 25u);
}

TEST(FuzzOracles, ClusterFamilyIsDivergenceFree) {
  // The hostile-conditions sweep: seeded fault schedules + retry storms over
  // small clusters, replayed twice and checked against the independent loss
  // referee. This slice is the tier-1 canary for the full rota_fuzz run.
  const OracleReport report = run_cluster_oracle(20260807, 40);
  EXPECT_TRUE(report.clean()) << describe(report);
  EXPECT_EQ(report.cases, 40u);
  EXPECT_GT(report.checks, 0u);
}

TEST(FuzzOracles, FeasibilityFamilyIsDivergenceFree) {
  const OracleReport report = run_feasibility_oracle(20260807, 60);
  EXPECT_TRUE(report.clean()) << describe(report);
  EXPECT_EQ(report.cases, 60u);
}

}  // namespace
}  // namespace rota::fuzz
