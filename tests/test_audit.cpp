#include "rota/admission/audit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  Location l1{"au-l1"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 40), cpu1);
    return s;
  }

  DistributedComputation job(const std::string& name, Tick s, Tick d,
                             std::int64_t w = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", l1).evaluate(w).build();
    return DistributedComputation(name, {gamma}, s, d);
  }
};

TEST_F(AuditTest, RecordsDecisionsWithOutcomes) {
  AuditedController ctl(phi, supply());
  EXPECT_TRUE(ctl.request(job("ok", 0, 10), 0).accepted);
  EXPECT_FALSE(ctl.request(job("too-big", 0, 4, 10), 0).accepted);

  ASSERT_EQ(ctl.log().size(), 2u);
  const AuditEntry& ok = ctl.log().entries()[0];
  EXPECT_EQ(ok.computation, "ok");
  EXPECT_TRUE(ok.accepted);
  EXPECT_EQ(ok.total_demand, 8);
  EXPECT_EQ(ok.planned_finish, 2);
  EXPECT_TRUE(ok.reason.empty());

  const AuditEntry& no = ctl.log().entries()[1];
  EXPECT_FALSE(no.accepted);
  EXPECT_FALSE(no.reason.empty());
}

TEST_F(AuditTest, AcceptanceCountsEverythingEverRecorded) {
  AuditLog log(2);  // tiny retention
  AdmissionDecision yes;
  yes.accepted = true;
  AdmissionDecision no;
  no.reason = "r";
  ConcurrentRequirement rho("x", {}, TimeInterval(0, 10));
  log.record(0, rho, yes);
  log.record(1, rho, no);
  log.record(2, rho, no);
  log.record(3, rho, no);
  EXPECT_EQ(log.size(), 2u);            // rolled off
  EXPECT_EQ(log.total_recorded(), 4u);  // but still counted
  EXPECT_DOUBLE_EQ(log.acceptance(), 0.25);
}

TEST_F(AuditTest, RejectionReasonHistogram) {
  AuditedController ctl(phi, supply());
  ctl.request(job("late", 0, 5), 9);          // deadline passed
  ctl.request(job("big", 0, 4, 10), 0);       // no plan
  ctl.request(job("big2", 0, 4, 10), 0);      // no plan again
  auto reasons = ctl.log().rejection_reasons();
  ASSERT_EQ(reasons.size(), 2u);
  std::size_t total = 0;
  for (const auto& [reason, count] : reasons) total += count;
  EXPECT_EQ(total, 3u);
}

TEST_F(AuditTest, AcceptanceByWindowShowsDeadlinePressure) {
  AuditedController ctl(phi, supply());
  // Tight windows (length 1) mostly fail; generous ones succeed.
  for (int i = 0; i < 4; ++i) ctl.request(job("t" + std::to_string(i), 0, 1), 0);
  for (int i = 0; i < 4; ++i) {
    ctl.request(job("g" + std::to_string(i), 0, 39), 0);
  }
  auto by_window = ctl.log().acceptance_by_window(10);
  ASSERT_TRUE(by_window.contains(0));   // lengths 0-9
  ASSERT_TRUE(by_window.contains(3));   // lengths 30-39
  EXPECT_LT(by_window[0], by_window[3]);
}

TEST_F(AuditTest, MeanSlackFraction) {
  AuditedController ctl(phi, supply());
  ctl.request(job("j", 0, 10), 0);  // finishes at 2 of a 10-tick window
  EXPECT_NEAR(ctl.log().mean_slack_fraction(), 0.8, 1e-9);
}

TEST_F(AuditTest, InvalidArgumentsThrow) {
  EXPECT_THROW(AuditLog(0), std::invalid_argument);
  AuditLog log(4);
  EXPECT_THROW(log.acceptance_by_window(0), std::invalid_argument);
}

TEST_F(AuditTest, ToStringSummarizes) {
  AuditedController ctl(phi, supply());
  ctl.request(job("j", 0, 10), 0);
  EXPECT_NE(ctl.log().to_string().find("1 decisions"), std::string::npos);
}

TEST_F(AuditTest, EmptyLogDefaults) {
  AuditLog log;
  EXPECT_EQ(log.acceptance(), 0.0);
  EXPECT_EQ(log.mean_slack_fraction(), 0.0);
  EXPECT_TRUE(log.rejection_reasons().empty());
}


TEST_F(AuditTest, ReplayIntoReproducesLedgerRevisionAndResidual) {
  // The audit log doubles as a write-ahead record: replaying its accepted
  // entries onto a fresh ledger with the pre-crash supply must reproduce the
  // pre-crash residual *and* revision counter exactly.
  RotaAdmissionController live(phi, supply());
  AuditLog log;
  for (int i = 0; i < 4; ++i) {
    const std::string name = "r" + std::to_string(i);
    const Tick at = static_cast<Tick>(i);
    auto rho = make_concurrent_requirement(phi, job(name, at, at + 12, 2));
    log.record(at, rho, live.request(rho, at));
  }
  ASSERT_GT(live.ledger().revision(), 0u);

  CommitmentLedger recovered(supply(), 0);
  const std::size_t replayed = log.replay_into(recovered);
  EXPECT_EQ(replayed, live.ledger().admitted().size());
  EXPECT_EQ(recovered.revision(), live.ledger().revision());
  EXPECT_EQ(recovered.residual(), live.ledger().residual());
}

TEST_F(AuditTest, ReplaySkipsEntriesWhosePlanNoLongerFits) {
  AuditedController ctl(phi, supply());
  ASSERT_TRUE(ctl.request(job("fits", 0, 10), 0).accepted);

  ResourceSet shrunken;  // half the original rate: the old plan cannot fit
  shrunken.add(2, TimeInterval(0, 40), cpu1);
  CommitmentLedger recovered(shrunken, 0);
  EXPECT_EQ(ctl.log().replay_into(recovered), 0u);
  EXPECT_EQ(recovered.revision(), 0u);
}

}  // namespace
}  // namespace rota
