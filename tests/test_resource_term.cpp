#include "rota/resource/resource_term.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class ResourceTermTest : public ::testing::Test {
 protected:
  Location l1{"rt-l1"};
  Location l2{"rt-l2"};
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);
  LocatedType net = LocatedType::network(l1, l2);
};

TEST_F(ResourceTermTest, Accessors) {
  ResourceTerm t(5, TimeInterval(0, 3), cpu1);
  EXPECT_EQ(t.rate(), 5);
  EXPECT_EQ(t.interval(), TimeInterval(0, 3));
  EXPECT_EQ(t.type(), cpu1);
  EXPECT_FALSE(t.is_null());
}

TEST_F(ResourceTermTest, NegativeRateThrows) {
  // "Resource terms cannot be negative."
  EXPECT_THROW(ResourceTerm(-1, TimeInterval(0, 3), cpu1), std::invalid_argument);
}

TEST_F(ResourceTermTest, EmptyIntervalIsNull) {
  // "Resources are only defined during non-empty time intervals."
  EXPECT_TRUE(ResourceTerm(5, TimeInterval(), cpu1).is_null());
  EXPECT_TRUE(ResourceTerm(5, TimeInterval(4, 4), cpu1).is_null());
}

TEST_F(ResourceTermTest, ZeroRateIsNull) {
  EXPECT_TRUE(ResourceTerm(0, TimeInterval(0, 3), cpu1).is_null());
}

TEST_F(ResourceTermTest, TotalQuantity) {
  EXPECT_EQ(ResourceTerm(5, TimeInterval(0, 3), cpu1).total_quantity(), 15);
  EXPECT_EQ(ResourceTerm(5, TimeInterval(), cpu1).total_quantity(), 0);
}

TEST_F(ResourceTermTest, StrictDominationPerPaper) {
  // [r1]^τ1_ξ1 > [r2]^τ2_ξ2 iff ξ1 ≥ ξ2, r1 > r2, τ2 during τ1.
  ResourceTerm big(5, TimeInterval(0, 10), cpu1);
  ResourceTerm small(3, TimeInterval(2, 8), cpu1);
  EXPECT_TRUE(big > small);
  EXPECT_FALSE(small > big);
}

TEST_F(ResourceTermTest, DominationRequiresStrictlyGreaterRate) {
  ResourceTerm a(5, TimeInterval(0, 10), cpu1);
  ResourceTerm b(5, TimeInterval(2, 8), cpu1);
  EXPECT_FALSE(a > b);           // strict: equal rates do not dominate
  EXPECT_TRUE(a.dominates(b));   // weak: they satisfy
}

TEST_F(ResourceTermTest, DominationRequiresTypeMatch) {
  ResourceTerm a(5, TimeInterval(0, 10), cpu1);
  ResourceTerm b(3, TimeInterval(2, 8), cpu2);
  EXPECT_FALSE(a > b);
  ResourceTerm c(3, TimeInterval(2, 8), net);
  EXPECT_FALSE(a > c);
}

TEST_F(ResourceTermTest, DominationRequiresIntervalContainment) {
  // "It is not necessarily enough for the total amount … to be greater":
  // a huge rate outside the needed window does not help.
  ResourceTerm a(100, TimeInterval(0, 5), cpu1);
  ResourceTerm b(3, TimeInterval(4, 8), cpu1);
  EXPECT_FALSE(a > b);
  EXPECT_GT(a.total_quantity(), b.total_quantity());
}

TEST_F(ResourceTermTest, WeakDominationAllowsEqualInterval) {
  ResourceTerm a(5, TimeInterval(2, 8), cpu1);
  ResourceTerm b(5, TimeInterval(2, 8), cpu1);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(a.dominates_strictly(b));
}

TEST_F(ResourceTermTest, ToString) {
  ResourceTerm t(5, TimeInterval(0, 3), cpu1);
  EXPECT_EQ(t.to_string(), "[5]^[0, 3)_<cpu, rt-l1>");
}

TEST_F(ResourceTermTest, Equality) {
  ResourceTerm a(5, TimeInterval(0, 3), cpu1);
  ResourceTerm b(5, TimeInterval(0, 3), cpu1);
  ResourceTerm c(6, TimeInterval(0, 3), cpu1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rota
