// Randomized property tests tying the layers together:
//   P1  planner soundness — any plan replayed through the transition rules
//       drains the requirement by its deadline;
//   P2  admission soundness — everything a RotaStrategy admits meets its
//       deadline when the admitted set executes plan-following on the real
//       supply, at any load;
//   P3  union/relative-complement inverse on resource sets;
//   P4  T2 (greedy cut points) agrees with the transition-rule schedule
//       search for single actors (completeness at this scale);
//   P5  admitted-set usage always fits raw supply (no over-booking, ever).
#include <gtest/gtest.h>

#include "rota/admission/baselines.hpp"
#include "rota/logic/theorems.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

WorkloadConfig property_config(std::uint64_t seed) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_locations = 3;
  c.cpu_rate = 8;
  c.network_rate = 8;
  c.actors_min = 1;
  c.actors_max = 2;
  c.actions_min = 2;
  c.actions_max = 6;
  c.laxity = 2.5;
  c.mean_interarrival = 8.0;
  return c;
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, P1_PlansSurviveTransitionRuleReplay) {
  WorkloadGenerator gen(property_config(GetParam()), CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 400));

  for (int i = 0; i < 10; ++i) {
    DistributedComputation lambda = gen.make_computation(static_cast<Tick>(i * 7));
    ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), lambda);
    for (auto policy :
         {PlanningPolicy::kAsap, PlanningPolicy::kAlap, PlanningPolicy::kUniform}) {
      auto plan = plan_concurrent(supply, rho, policy);
      if (!plan) continue;
      // realize_plan throws if any transition-rule side condition breaks.
      ComputationPath path =
          realize_plan(supply, rho, *plan, lambda.earliest_start());
      EXPECT_TRUE(path.back().all_finished()) << policy_name(policy);
      EXPECT_FALSE(path.back().any_missed()) << policy_name(policy);
      EXPECT_LE(plan->finish, lambda.deadline()) << policy_name(policy);
    }
  }
}

TEST_P(PropertyTest, P2_AdmittedAlwaysMeetsDeadline) {
  WorkloadGenerator gen(property_config(GetParam()), CostModel());
  const Tick horizon = 300;
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  RotaStrategy rota(gen.phi(), supply);

  Simulator sim(supply, 0, ExecutionMode::kPlanFollowing);
  std::size_t admitted = 0;
  for (const Arrival& a : gen.make_arrivals(horizon / 2)) {
    AdmissionDecision d = rota.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++admitted;
    sim.schedule_admission(a.at, make_concurrent_requirement(gen.phi(), a.computation),
                           d.plan);
  }
  SimReport report = sim.run(horizon);
  EXPECT_EQ(report.outcomes.size(), admitted);
  EXPECT_EQ(report.missed(), 0u) << "a ROTA-admitted computation missed its deadline";
}

TEST_P(PropertyTest, P3_UnionComplementInverse) {
  util::Rng rng(GetParam() * 977 + 5);
  Location l1("pr-l1"), l2("pr-l2");
  const std::vector<LocatedType> types = {
      LocatedType::cpu(l1), LocatedType::cpu(l2), LocatedType::network(l1, l2)};

  for (int round = 0; round < 20; ++round) {
    auto random_set = [&]() {
      ResourceSet s;
      const int n = static_cast<int>(rng.uniform(1, 4));
      for (int i = 0; i < n; ++i) {
        const Tick start = rng.uniform(0, 20);
        const Tick end = rng.uniform(start + 1, 25);
        s.add(rng.uniform(1, 9), TimeInterval(start, end), types[rng.index(3)]);
      }
      return s;
    };
    const ResourceSet a = random_set();
    const ResourceSet b = random_set();
    // (a ∪ b) \ b == a whenever defined — and it is always defined here.
    auto back = a.unioned(b).relative_complement(b);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
    // Domination: a ∪ b dominates both.
    EXPECT_TRUE(a.unioned(b).dominates(a));
    EXPECT_TRUE(a.unioned(b).dominates(b));
  }
}

TEST_P(PropertyTest, P4_GreedyCutPointsMatchScheduleSearch) {
  util::Rng rng(GetParam() * 131 + 17);
  WorkloadGenerator gen(property_config(GetParam() + 1000), CostModel());

  for (int round = 0; round < 8; ++round) {
    // One random single-actor computation over randomized patchy supply.
    WorkloadConfig single = property_config(GetParam() * 31 + round);
    single.actors_min = single.actors_max = 1;
    WorkloadGenerator sgen(single, CostModel());
    DistributedComputation lambda = sgen.make_computation(0);

    ResourceSet supply;
    for (const Location& l : sgen.locations()) {
      // Patchy cpu: two random windows.
      for (int w = 0; w < 2; ++w) {
        const Tick start = rng.uniform(0, 12);
        const Tick end = rng.uniform(start + 1, 24);
        supply.add(rng.uniform(1, 10), TimeInterval(start, end), LocatedType::cpu(l));
      }
      for (const Location& m : sgen.locations()) {
        if (l == m) continue;
        supply.add(rng.uniform(1, 10), TimeInterval(0, 24),
                   LocatedType::network(l, m));
      }
    }

    ConcurrentRequirement rho = make_concurrent_requirement(sgen.phi(), lambda);
    ASSERT_EQ(rho.actors().size(), 1u);
    const bool greedy = theorem2_cut_points(supply, rho.actors()[0]).has_value();

    SystemState s0(supply, 0);
    s0.accommodate(rho);
    const bool searched = search_feasible(s0, lambda.deadline()).has_value();
    EXPECT_EQ(greedy, searched) << "round " << round;
  }
}

TEST_P(PropertyTest, P5_AdmittedUsageFitsRawSupply) {
  WorkloadGenerator gen(property_config(GetParam() + 77), CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 200));
  RotaAdmissionController ctl(gen.phi(), supply);

  ResourceSet combined;
  for (const Arrival& a : gen.make_arrivals(150)) {
    AdmissionDecision d = ctl.request(a.computation, a.at);
    if (d.accepted) combined = combined.unioned(d.plan->usage_as_resources());
  }
  EXPECT_TRUE(supply.relative_complement(combined).has_value())
      << "admitted plans collectively over-book the supply";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rota
