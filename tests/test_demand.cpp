#include "rota/resource/demand.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class DemandSetTest : public ::testing::Test {
 protected:
  Location l1{"dm-l1"};
  Location l2{"dm-l2"};
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net = LocatedType::network(l1, l2);
};

TEST_F(DemandSetTest, EmptyByDefault) {
  DemandSet d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.total(), 0);
  EXPECT_EQ(d.of(cpu1), 0);
}

TEST_F(DemandSetTest, AddAccumulates) {
  DemandSet d;
  d.add(cpu1, 4);
  d.add(cpu1, 3);
  EXPECT_EQ(d.of(cpu1), 7);
  EXPECT_EQ(d.size(), 1u);
}

TEST_F(DemandSetTest, AddZeroIsNoop) {
  DemandSet d;
  d.add(cpu1, 0);
  EXPECT_TRUE(d.empty());
}

TEST_F(DemandSetTest, AddNegativeThrows) {
  DemandSet d;
  EXPECT_THROW(d.add(cpu1, -1), std::invalid_argument);
}

TEST_F(DemandSetTest, Merge) {
  DemandSet a;
  a.add(cpu1, 4);
  DemandSet b;
  b.add(cpu1, 2);
  b.add(net, 5);
  a.merge(b);
  EXPECT_EQ(a.of(cpu1), 6);
  EXPECT_EQ(a.of(net), 5);
  EXPECT_EQ(a.total(), 11);
}

TEST_F(DemandSetTest, SubtractPartial) {
  DemandSet d;
  d.add(cpu1, 10);
  d.subtract(cpu1, 4);
  EXPECT_EQ(d.of(cpu1), 6);
}

TEST_F(DemandSetTest, SubtractToZeroErasesEntry) {
  DemandSet d;
  d.add(cpu1, 10);
  d.subtract(cpu1, 10);
  EXPECT_TRUE(d.empty());
}

TEST_F(DemandSetTest, SubtractOvershootThrows) {
  DemandSet d;
  d.add(cpu1, 3);
  EXPECT_THROW(d.subtract(cpu1, 4), std::invalid_argument);
  EXPECT_THROW(d.subtract(net, 1), std::invalid_argument);
  EXPECT_EQ(d.of(cpu1), 3);  // unchanged after the failed subtraction
}

TEST_F(DemandSetTest, SubtractNegativeThrows) {
  DemandSet d;
  d.add(cpu1, 3);
  EXPECT_THROW(d.subtract(cpu1, -1), std::invalid_argument);
}

TEST_F(DemandSetTest, SubtractZeroIsNoopEvenForMissingType) {
  DemandSet d;
  d.subtract(net, 0);
  EXPECT_TRUE(d.empty());
}

TEST_F(DemandSetTest, ToString) {
  DemandSet d;
  d.add(cpu1, 4);
  EXPECT_EQ(d.to_string(), "{{4}_<cpu, dm-l1>}");
}

TEST_F(DemandSetTest, Equality) {
  DemandSet a, b;
  a.add(cpu1, 4);
  b.add(cpu1, 4);
  EXPECT_EQ(a, b);
  b.add(net, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rota
