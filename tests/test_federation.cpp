// Federation: N admission daemons running the cluster protocol over real
// unix sockets, with each daemon's live service ledger as its node's
// admission backend.
//
// The load-bearing suite is the two-node split: a daemon with no local
// supply forwards every locally-rejected request to its peer, the peer's
// ServiceNodeAdmission commits the claims through the same
// speculate/commit-or-retry loop the planning lanes run, and
// revalidations_failed stays 0 on both sides — the claim-time re-validation
// guarantee survives the jump from FabricTransport to SocketTransport.
#include "rota/service/federation.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rota/service/client.hpp"
#include "rota/service/server.hpp"

namespace rota::service {
namespace {

using std::chrono::seconds;

std::string fed_socket_path(const char* tag) {
  return "/tmp/rota_fed_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// A forwardable request: one actor, evaluate chunks closed by ready, all at
/// `home` — exactly the shape forwardable_work() re-expresses as a WorkSpec.
AdmitRequest forwardable_request(std::uint64_t id, Location home,
                                 std::int64_t weight = 5,
                                 std::int64_t deadline = 50'000) {
  AdmitRequest request;
  request.id = id;
  request.at = 0;
  request.budget_us = 10'000'000;  // never budget-shed, even sanitized
  ActorComputation actor =
      ActorComputationBuilder("fed-actor-" + std::to_string(id), home)
          .evaluate(weight)
          .ready()
          .build();
  request.computation = DistributedComputation(
      "fed-job-" + std::to_string(id), {actor}, /*earliest_start=*/0,
      deadline);
  return request;
}

struct Node {
  Node(Location site, ResourceSet supply, cluster::NodeId id,
       const std::string& listen_path, cluster::NodeId peer_id,
       const std::string& peer_path)
      : ledger(std::move(supply)), service(ledger, CostModel{}, service_config()) {
    FederationConfig fconfig;
    fconfig.site = site.name();
    fconfig.transport.local = id;
    fconfig.transport.listen = "unix:" + listen_path;
    fconfig.transport.peers[peer_id] = "unix:" + peer_path;
    // Protocol timeouts are counted in ticks (probe 4, claim 6). A wide tick
    // keeps them roomy enough for sanitized builds, where one speculation on
    // the peer can cost north of 100 ms; the 2 ms pump below keeps actual
    // message latency low, so only the timeout budget stretches.
    fconfig.transport.tick_ms = 200;
    // The first node's pump gossips before the second node's listener exists;
    // the default 500 ms reconnect backoff after that failed connect would
    // swallow the (one-shot per round) probe send. Keep the poisoned window
    // tiny relative to the 800 ms probe timeout.
    fconfig.transport.reconnect_backoff_ms = 25;
    fconfig.pump_interval_ms = 2;
    federation = std::make_unique<FederatedService>(service, fconfig);
  }

  static ServiceConfig service_config() {
    ServiceConfig config;
    config.lanes = 1;
    return config;
  }

  CommitmentLedger ledger;
  AdmissionService service;
  std::unique_ptr<FederatedService> federation;
};

ResourceSet ample_supply(Location site) {
  ResourceSet supply;
  supply.add(100, TimeInterval(0, 100'000), LocatedType::cpu(site));
  return supply;
}

AdmitResponse await_response(std::future<AdmitResponse>& f) {
  if (f.wait_for(seconds(20)) != std::future_status::ready) {
    ADD_FAILURE() << "federation never answered";
    return AdmitResponse{};
  }
  return f.get();
}

TEST(Federation, ForwardsLocalRejectionsToAPeerThatAdmitsThem) {
  const Location site_a("fed-starved"), site_b("fed-ample");
  const std::string path_a = fed_socket_path("fwd_a");
  const std::string path_b = fed_socket_path("fwd_b");
  // Node A has no supply at all: every local admission rejects. Node B has
  // ample cpu at its own site; A has never seen a digest from B when the
  // first probe leaves (blind probing — digest-less peers rank last but are
  // still probed).
  Node a(site_a, ResourceSet{}, 0, path_a, 1, path_b);
  Node b(site_b, ample_supply(site_b), 1, path_b, 0, path_a);

  const std::size_t n = 6;
  std::vector<std::future<AdmitResponse>> futures;
  std::vector<std::shared_ptr<std::promise<AdmitResponse>>> promises;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto promise = std::make_shared<std::promise<AdmitResponse>>();
    futures.push_back(promise->get_future());
    promises.push_back(promise);
    a.federation->submit(forwardable_request(i + 1, site_a),
                         [promise](const AdmitResponse& r) {
                           promise->set_value(r);
                         });
  }
  for (std::size_t i = 0; i < n; ++i) {
    const AdmitResponse response = await_response(futures[i]);
    EXPECT_EQ(response.id, i + 1);
    EXPECT_EQ(response.verdict, Verdict::kAccepted) << response.reason;
    EXPECT_EQ(response.strategy, "federated");
  }

  const FederationStats fa = a.federation->stats();
  EXPECT_EQ(fa.forwarded, n);
  EXPECT_EQ(fa.forward_accepts, n);
  EXPECT_EQ(fa.forward_rejects, 0u);
  EXPECT_EQ(b.federation->stats().peer_claims, n)
      << "every forward was committed into B's live ledger";
  // The safety backstop on both sides: a peer claim is re-validated against
  // the live residual exactly like a degraded local accept.
  EXPECT_EQ(a.service.stats().revalidations_failed, 0u);
  EXPECT_EQ(b.service.stats().revalidations_failed, 0u);

  a.federation->stop();
  b.federation->stop();
  a.service.drain_and_stop();
  b.service.drain_and_stop();
}

TEST(Federation, LocallyFeasibleRequestsNeverTouchThePeer) {
  const Location site_a("fed-local-a"), site_b("fed-local-b");
  const std::string path_a = fed_socket_path("loc_a");
  const std::string path_b = fed_socket_path("loc_b");
  Node a(site_a, ample_supply(site_a), 0, path_a, 1, path_b);
  Node b(site_b, ample_supply(site_b), 1, path_b, 0, path_a);

  for (std::uint64_t i = 0; i < 4; ++i) {
    auto promise = std::make_shared<std::promise<AdmitResponse>>();
    auto future = promise->get_future();
    a.federation->submit(forwardable_request(i + 1, site_a),
                         [promise](const AdmitResponse& r) {
                           promise->set_value(r);
                         });
    const AdmitResponse response = await_response(future);
    EXPECT_EQ(response.verdict, Verdict::kAccepted) << response.reason;
    EXPECT_NE(response.strategy, "federated") << "local-first stayed local";
  }
  EXPECT_EQ(a.federation->stats().forwarded, 0u);
  EXPECT_EQ(b.federation->stats().peer_claims, 0u);

  a.federation->stop();
  b.federation->stop();
  a.service.drain_and_stop();
  b.service.drain_and_stop();
}

TEST(Federation, UnforwardableShapesKeepTheirLocalRejection) {
  const Location site_a("fed-shape-a"), site_b("fed-shape-b");
  Node a(site_a, ResourceSet{}, 0, fed_socket_path("shape_a"), 1,
         fed_socket_path("shape_b_unused"));
  // No peer B at all: if the multi-site request were forwarded it would hang
  // through retries; it must instead answer with the local rejection.
  AdmitRequest request;
  request.id = 77;
  request.budget_us = 10'000'000;
  ActorComputation actor = ActorComputationBuilder("pinned", site_a)
                               .evaluate(2)
                               .send(site_b, 3)  // cross-site send pins it
                               .build();
  request.computation =
      DistributedComputation("pinned-job", {actor}, 0, 50'000);
  ASSERT_FALSE(forwardable_work(request).has_value());

  auto promise = std::make_shared<std::promise<AdmitResponse>>();
  auto future = promise->get_future();
  a.federation->submit(std::move(request), [promise](const AdmitResponse& r) {
    promise->set_value(r);
  });
  const AdmitResponse response = await_response(future);
  EXPECT_EQ(response.verdict, Verdict::kRejected);
  EXPECT_NE(response.strategy, "federated");
  EXPECT_EQ(a.federation->stats().forwarded, 0u);

  a.federation->stop();
  a.service.drain_and_stop();
}

TEST(Federation, UnreachablePeerResolvesToARejectionNotAHang) {
  const Location site_a("fed-alone");
  // The configured peer never listens: probes are dropped on the floor and
  // the remote rounds must exhaust into a rejection — bounded, not silent.
  Node a(site_a, ResourceSet{}, 0, fed_socket_path("alone_a"), 1,
         "/tmp/rota_fed_nobody_home.sock");

  auto promise = std::make_shared<std::promise<AdmitResponse>>();
  auto future = promise->get_future();
  a.federation->submit(forwardable_request(1, site_a),
                       [promise](const AdmitResponse& r) {
                         promise->set_value(r);
                       });
  const AdmitResponse response = await_response(future);
  EXPECT_EQ(response.verdict, Verdict::kRejected);
  EXPECT_EQ(response.strategy, "federated");
  EXPECT_FALSE(response.reason.empty());
  const FederationStats stats = a.federation->stats();
  EXPECT_EQ(stats.forwarded, 1u);
  EXPECT_EQ(stats.forward_rejects, 1u);

  a.federation->stop();
  a.service.drain_and_stop();
}

TEST(Federation, StopAnswersWhatIsPendingAndIsIdempotent) {
  const Location site_a("fed-stopping");
  Node a(site_a, ResourceSet{}, 0, fed_socket_path("stop_a"), 1,
         "/tmp/rota_fed_stop_nobody.sock");

  auto promise = std::make_shared<std::promise<AdmitResponse>>();
  auto future = promise->get_future();
  a.federation->submit(forwardable_request(1, site_a),
                       [promise](const AdmitResponse& r) {
                         promise->set_value(r);
                       });
  a.federation->stop();  // may race the forward: either path must answer
  const AdmitResponse response = await_response(future);
  EXPECT_EQ(response.verdict, Verdict::kRejected);
  a.federation->stop();  // idempotent
  a.service.drain_and_stop();
}

// The stranded-forward regression: the peer daemon dies mid-conversation —
// after forwards are in flight, possibly between offer and claim — and every
// pending forward must still answer a verdict within the deadline budget.
// Before the expiry sweep, a forward whose peer vanished after the offer
// could strand forever: the await below would time out. Now the service
// expires it against deadline + claim_timeout and answers reject, never
// silence.
TEST(Federation, PeerDeathMidConversationAnswersRejectNotSilence) {
  const Location site_a("fed-kill-a"), site_b("fed-kill-b");
  const std::string path_a = fed_socket_path("kill_a");
  const std::string path_b = fed_socket_path("kill_b");
  Node a(site_a, ResourceSet{}, 0, path_a, 1, path_b);
  auto b = std::make_unique<Node>(site_b, ample_supply(site_b), 1, path_b, 0,
                                  path_a);

  // A tight deadline: 20 transport ticks (4 s at tick_ms 200), so even a
  // forward with no node-level verdict expires at deadline + claim_timeout,
  // well inside await_response's 20 s bound.
  const std::size_t n = 6;
  std::vector<std::future<AdmitResponse>> futures;
  std::vector<std::shared_ptr<std::promise<AdmitResponse>>> promises;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto promise = std::make_shared<std::promise<AdmitResponse>>();
    futures.push_back(promise->get_future());
    promises.push_back(promise);
    a.federation->submit(
        forwardable_request(i + 1, site_a, 5, /*deadline=*/20),
        [promise](const AdmitResponse& r) { promise->set_value(r); });
  }

  // Kill the peer the moment the first forward is on the wire: whatever
  // conversations are mid-probe or mid-claim lose their counterparty.
  const auto kill_by = std::chrono::steady_clock::now() + seconds(10);
  while (a.federation->stats().forwarded == 0 &&
         std::chrono::steady_clock::now() < kill_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(a.federation->stats().forwarded, 0u);
  b->federation->stop();
  b->service.drain_and_stop();
  b.reset();

  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const AdmitResponse response = await_response(futures[i]);
    EXPECT_EQ(response.id, i + 1);
    if (response.verdict == Verdict::kAccepted) {
      ++accepted;  // won the race against the kill — legitimate
    } else {
      ++rejected;
      EXPECT_EQ(response.strategy, "federated");
      EXPECT_FALSE(response.reason.empty()) << "a reject must say why";
    }
  }
  EXPECT_EQ(accepted + rejected, n) << "every forward answered";

  const FederationStats stats = a.federation->stats();
  EXPECT_EQ(stats.forwarded, n);
  EXPECT_EQ(stats.forward_accepts, accepted);
  EXPECT_EQ(stats.forward_rejects + stats.forward_expired, rejected)
      << "rejects came from a verdict or the expiry sweep, not from silence";

  a.federation->stop();
  a.service.drain_and_stop();
}

// The full two-daemon stack: client ──socket──▶ ServiceServer(A) ──▶
// FederatedService(A) ──peer socket──▶ node B, which commits into B's live
// ledger. The ISSUE's acceptance shape: a split workload admitted across two
// daemons with revalidations_failed == 0, then a clean drain in the daemon's
// shutdown order (federation first, then the server).
TEST(Federation, TwoDaemonEndToEndOverUnixSockets) {
  const Location site_a("fed-e2e-a"), site_b("fed-e2e-b");
  const std::string peer_a = fed_socket_path("e2e_peer_a");
  const std::string peer_b = fed_socket_path("e2e_peer_b");
  Node a(site_a, ResourceSet{}, 0, peer_a, 1, peer_b);
  Node b(site_b, ample_supply(site_b), 1, peer_b, 0, peer_a);

  ServerConfig sconfig;
  sconfig.unix_path = fed_socket_path("e2e_front_a");
  ServiceServer server(a.service, sconfig,
                       [&a](AdmitRequest request,
                            AdmissionService::ResponseFn done) {
                         a.federation->submit(std::move(request),
                                              std::move(done));
                       });

  ServiceClient client = ServiceClient::connect_unix(server.unix_path());
  const std::size_t n = 4;
  for (std::uint64_t i = 0; i < n; ++i) {
    client.send(forwardable_request(i + 1, site_a));
  }
  std::size_t federated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto response = client.receive();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->verdict, Verdict::kAccepted) << response->reason;
    if (response->strategy == "federated") ++federated;
  }
  EXPECT_EQ(federated, n) << "a supply-less daemon serves via its peer";

  // The daemon's shutdown order: federation first (pending forwards answer
  // through still-writable sessions), then the server's clean drain.
  a.federation->stop();
  b.federation->stop();
  server.stop();
  EXPECT_EQ(a.service.stats().revalidations_failed, 0u);
  EXPECT_EQ(b.service.stats().revalidations_failed, 0u);
  EXPECT_EQ(b.federation->stats().peer_claims, n);
  b.service.drain_and_stop();
}

}  // namespace
}  // namespace rota::service
