#include "rota/logic/state.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class StateTest : public ::testing::Test {
 protected:
  Location l1{"st-l1"};
  Location l2{"st-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet basic_supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 20), cpu1);
    s.add(4, TimeInterval(0, 20), net12);
    return s;
  }

  ConcurrentRequirement one_actor_requirement(Tick s, Tick d) {
    auto gamma = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
    DistributedComputation lambda("job", {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda);
  }
};

TEST_F(StateTest, InitialState) {
  SystemState state(basic_supply(), 0);
  EXPECT_EQ(state.now(), 0);
  EXPECT_TRUE(state.commitments().empty());
  EXPECT_TRUE(state.all_finished());
  EXPECT_FALSE(state.any_missed());
}

TEST_F(StateTest, JoinUnionsSupply) {
  SystemState state(basic_supply(), 0);
  ResourceSet extra;
  extra.add(2, TimeInterval(5, 10), cpu1);
  state.join(extra);
  EXPECT_EQ(state.theta().availability(cpu1).value_at(6), 6);
}

TEST_F(StateTest, AccommodateAddsCommitments) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  ASSERT_EQ(state.commitments().size(), 1u);
  const ActorProgress& p = state.commitments()[0];
  EXPECT_EQ(p.computation, "job");
  EXPECT_EQ(p.actor, "a1");
  EXPECT_EQ(p.phase_index, 0u);
  EXPECT_EQ(p.remaining.of(cpu1), 8);
  EXPECT_FALSE(p.finished());
  EXPECT_FALSE(state.all_finished());
}

TEST_F(StateTest, AccommodatePastDeadlineThrows) {
  SystemState state(basic_supply(), 12);
  EXPECT_THROW(state.accommodate(one_actor_requirement(0, 10)), std::logic_error);
}

TEST_F(StateTest, LeaveBeforeStartSucceeds) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(5, 15));
  EXPECT_TRUE(state.leave("job"));
  EXPECT_TRUE(state.commitments().empty());
}

TEST_F(StateTest, LeaveAfterStartThrows) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));  // starts at 0 == now
  EXPECT_THROW(state.leave("job"), std::logic_error);
}

TEST_F(StateTest, LeaveUnknownReturnsFalse) {
  SystemState state(basic_supply(), 0);
  EXPECT_FALSE(state.leave("ghost"));
}

// ------------------------------------------------------------------
// The general transition rule and its side conditions.
// ------------------------------------------------------------------

TEST_F(StateTest, IdleAdvanceExpiresTime) {
  SystemState state(basic_supply(), 0);
  state.advance_idle();
  EXPECT_EQ(state.now(), 1);
}

TEST_F(StateTest, ConsumptionDrainsRemaining) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance({{0, cpu1, 4}});
  EXPECT_EQ(state.now(), 1);
  EXPECT_EQ(state.commitments()[0].remaining.of(cpu1), 4);
}

TEST_F(StateTest, PhaseCompletionPromotesNextPhase) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance({{0, cpu1, 4}});
  state.advance({{0, cpu1, 4}});  // cpu phase done (8 total)
  const ActorProgress& p = state.commitments()[0];
  EXPECT_EQ(p.phase_index, 1u);
  EXPECT_EQ(p.remaining.of(net12), 4);
}

TEST_F(StateTest, FinishRecordsTick) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance({{0, cpu1, 4}});
  state.advance({{0, cpu1, 4}});
  state.advance({{0, net12, 4}});
  const ActorProgress& p = state.commitments()[0];
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.finished_at, 3);
  EXPECT_TRUE(state.all_finished());
}

TEST_F(StateTest, RemainingTotalSpansPhases) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  EXPECT_EQ(state.commitments()[0].remaining_total(), 12);  // 8 cpu + 4 net
  state.advance({{0, cpu1, 3}});
  EXPECT_EQ(state.commitments()[0].remaining_total(), 9);
}

TEST_F(StateTest, BadCommitmentIndexThrows) {
  SystemState state(basic_supply(), 0);
  EXPECT_THROW(state.advance({{3, cpu1, 1}}), std::logic_error);
}

TEST_F(StateTest, NonPositiveRateThrows) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  EXPECT_THROW(state.advance({{0, cpu1, 0}}), std::logic_error);
  EXPECT_THROW(state.advance({{0, cpu1, -2}}), std::logic_error);
}

TEST_F(StateTest, ConsumingBeforeStartThrows) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(5, 15));
  EXPECT_THROW(state.advance({{0, cpu1, 1}}), std::logic_error);
}

TEST_F(StateTest, OvershootingRemainingThrows) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  // cpu phase needs 8; supply rate is 4, so a claim of 9 must fail on the
  // remaining-demand check even before the supply check.
  EXPECT_THROW(state.advance({{0, cpu1, 9}}), std::logic_error);
}

TEST_F(StateTest, ExceedingSupplyThrows) {
  ResourceSet thin;
  thin.add(2, TimeInterval(0, 20), cpu1);
  SystemState state(thin, 0);
  state.accommodate(one_actor_requirement(0, 10));
  EXPECT_THROW(state.advance({{0, cpu1, 3}}), std::logic_error);
}

TEST_F(StateTest, AggregateClaimsAreChecked) {
  // Two commitments each claim 3 of a rate-4 supply: together they exceed it.
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  auto gamma = ActorComputationBuilder("b1", l1).evaluate().build();
  DistributedComputation other("job2", {gamma}, 0, 10);
  state.accommodate(make_concurrent_requirement(phi, other));
  EXPECT_THROW(state.advance({{0, cpu1, 3}, {1, cpu1, 3}}), std::logic_error);
  // But a fitting split is fine.
  state.advance({{0, cpu1, 2}, {1, cpu1, 2}});
  EXPECT_EQ(state.now(), 1);
}

TEST_F(StateTest, FinishedCommitmentCannotConsume) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance({{0, cpu1, 4}});
  state.advance({{0, cpu1, 4}});
  state.advance({{0, net12, 4}});
  EXPECT_THROW(state.advance({{0, cpu1, 1}}), std::logic_error);
}

TEST_F(StateTest, ExpiredSupplyCannotBeRecovered) {
  // Supply exists only on [0, 2); idling past it loses it for good.
  ResourceSet brief;
  brief.add(4, TimeInterval(0, 2), cpu1);
  SystemState state(brief, 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance_idle();
  state.advance_idle();
  EXPECT_THROW(state.advance({{0, cpu1, 1}}), std::logic_error);
}

TEST_F(StateTest, MissDetection) {
  ResourceSet empty_supply;
  SystemState state(empty_supply, 0);
  state.accommodate(one_actor_requirement(0, 3));
  EXPECT_FALSE(state.any_missed());
  state.advance_idle();
  state.advance_idle();
  state.advance_idle();  // now == 3 == deadline, nothing done
  EXPECT_TRUE(state.any_missed());
}

TEST_F(StateTest, GarbageCollectPreservesFuture) {
  SystemState state(basic_supply(), 0);
  state.accommodate(one_actor_requirement(0, 10));
  state.advance({{0, cpu1, 4}});
  state.garbage_collect();
  EXPECT_EQ(state.theta().availability(cpu1).value_at(1), 4);
  state.advance({{0, cpu1, 4}});
  EXPECT_EQ(state.commitments()[0].phase_index, 1u);
}

TEST_F(StateTest, MultiActorAccommodationCreatesOneProgressEach) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).ready().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 10);
  SystemState state(basic_supply(), 0);
  state.accommodate(make_concurrent_requirement(phi, lambda));
  EXPECT_EQ(state.commitments().size(), 2u);
  EXPECT_EQ(state.unfinished_count(), 2u);
}

TEST_F(StateTest, ToStringSummarizes) {
  SystemState state(basic_supply(), 7);
  EXPECT_NE(state.to_string().find("t=7"), std::string::npos);
}

}  // namespace
}  // namespace rota
