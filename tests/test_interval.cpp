#include "rota/time/interval.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

TEST(Interval, DefaultIsEmpty) {
  TimeInterval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0);
}

TEST(Interval, BasicAccessors) {
  TimeInterval iv(2, 7);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.start(), 2);
  EXPECT_EQ(iv.end(), 7);
  EXPECT_EQ(iv.length(), 5);
}

TEST(Interval, DegenerateCanonicalizesToEmpty) {
  EXPECT_TRUE(TimeInterval(5, 5).empty());
  EXPECT_TRUE(TimeInterval(7, 3).empty());
  // All empty intervals are the same value.
  EXPECT_EQ(TimeInterval(5, 5), TimeInterval(9, 2));
  EXPECT_EQ(TimeInterval(5, 5), TimeInterval());
}

TEST(Interval, NegativeTicksAreLegal) {
  TimeInterval iv(-5, -1);
  EXPECT_EQ(iv.length(), 4);
  EXPECT_TRUE(iv.contains(-5));
  EXPECT_FALSE(iv.contains(-1));
}

TEST(Interval, ContainsIsHalfOpen) {
  TimeInterval iv(2, 5);
  EXPECT_FALSE(iv.contains(1));
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(4));
  EXPECT_FALSE(iv.contains(5));
}

TEST(Interval, CoversInclusive) {
  TimeInterval outer(0, 10);
  EXPECT_TRUE(outer.covers(TimeInterval(0, 10)));
  EXPECT_TRUE(outer.covers(TimeInterval(3, 7)));
  EXPECT_TRUE(outer.covers(TimeInterval(0, 1)));
  EXPECT_FALSE(outer.covers(TimeInterval(-1, 5)));
  EXPECT_FALSE(outer.covers(TimeInterval(5, 11)));
}

TEST(Interval, EveryIntervalCoversEmpty) {
  EXPECT_TRUE(TimeInterval(3, 4).covers(TimeInterval()));
  EXPECT_TRUE(TimeInterval().covers(TimeInterval()));
}

TEST(Interval, IntersectsExcludesTouching) {
  EXPECT_TRUE(TimeInterval(0, 5).intersects(TimeInterval(4, 9)));
  EXPECT_FALSE(TimeInterval(0, 5).intersects(TimeInterval(5, 9)));
  EXPECT_FALSE(TimeInterval(0, 5).intersects(TimeInterval(7, 9)));
}

TEST(Interval, EmptyNeverIntersects) {
  EXPECT_FALSE(TimeInterval().intersects(TimeInterval(0, 100)));
  EXPECT_FALSE(TimeInterval(0, 100).intersects(TimeInterval()));
}

TEST(Interval, Intersection) {
  EXPECT_EQ(TimeInterval(0, 5).intersection(TimeInterval(3, 9)), TimeInterval(3, 5));
  EXPECT_EQ(TimeInterval(0, 5).intersection(TimeInterval(5, 9)), TimeInterval());
  EXPECT_EQ(TimeInterval(0, 9).intersection(TimeInterval(2, 4)), TimeInterval(2, 4));
}

TEST(Interval, IntersectionCommutes) {
  TimeInterval a(1, 8), b(4, 12);
  EXPECT_EQ(a.intersection(b), b.intersection(a));
}

TEST(Interval, HullUnionOfOverlapping) {
  EXPECT_EQ(TimeInterval(0, 5).hull_union(TimeInterval(3, 9)), TimeInterval(0, 9));
}

TEST(Interval, HullUnionOfMeeting) {
  EXPECT_EQ(TimeInterval(0, 5).hull_union(TimeInterval(5, 9)), TimeInterval(0, 9));
}

TEST(Interval, HullUnionWithEmptyIsIdentity) {
  EXPECT_EQ(TimeInterval(0, 5).hull_union(TimeInterval()), TimeInterval(0, 5));
  EXPECT_EQ(TimeInterval().hull_union(TimeInterval(0, 5)), TimeInterval(0, 5));
}

TEST(Interval, HullUnionOfDisjointThrows) {
  EXPECT_THROW(TimeInterval(0, 3).hull_union(TimeInterval(5, 9)),
               std::invalid_argument);
}

TEST(Interval, Shifted) {
  EXPECT_EQ(TimeInterval(2, 5).shifted(10), TimeInterval(12, 15));
  EXPECT_EQ(TimeInterval(2, 5).shifted(-4), TimeInterval(-2, 1));
  EXPECT_EQ(TimeInterval().shifted(10), TimeInterval());
}

TEST(Interval, ToString) {
  EXPECT_EQ(TimeInterval(2, 5).to_string(), "[2, 5)");
  EXPECT_EQ(TimeInterval().to_string(), "[)");
}

class IntervalPairTest
    : public ::testing::TestWithParam<std::tuple<Tick, Tick, Tick, Tick>> {};

TEST(Interval, HullWithDisjointCoversTheGap) {
  // Unlike hull_union, hull_with is total: the convex hull of disjoint
  // intervals spans the gap between them.
  EXPECT_EQ(TimeInterval(0, 3).hull_with(TimeInterval(5, 9)), TimeInterval(0, 9));
  EXPECT_EQ(TimeInterval(5, 9).hull_with(TimeInterval(0, 3)), TimeInterval(0, 9));
}

TEST(Interval, HullWithTouchingAndOverlapping) {
  EXPECT_EQ(TimeInterval(0, 5).hull_with(TimeInterval(5, 9)), TimeInterval(0, 9));
  EXPECT_EQ(TimeInterval(0, 5).hull_with(TimeInterval(3, 9)), TimeInterval(0, 9));
  EXPECT_EQ(TimeInterval(0, 9).hull_with(TimeInterval(2, 4)), TimeInterval(0, 9));
}

TEST(Interval, HullWithEmptyIsIdentity) {
  EXPECT_EQ(TimeInterval(2, 7).hull_with(TimeInterval()), TimeInterval(2, 7));
  EXPECT_EQ(TimeInterval().hull_with(TimeInterval(2, 7)), TimeInterval(2, 7));
  EXPECT_TRUE(TimeInterval().hull_with(TimeInterval()).empty());
}

TEST(Interval, HullWithAgreesWithHullUnionWhenBothDefined) {
  const TimeInterval a(0, 5), b(4, 9), c(5, 9);
  EXPECT_EQ(a.hull_with(b), a.hull_union(b));
  EXPECT_EQ(a.hull_with(c), a.hull_union(c));
}

TEST(Interval, HullWithNegativeTicks) {
  EXPECT_EQ(TimeInterval(-7, -4).hull_with(TimeInterval(-2, 1)), TimeInterval(-7, 1));
}

TEST_P(IntervalPairTest, IntersectionIsSubsetOfBoth) {
  const auto [a1, a2, b1, b2] = GetParam();
  TimeInterval a(a1, a2), b(b1, b2);
  TimeInterval x = a.intersection(b);
  EXPECT_TRUE(a.covers(x));
  EXPECT_TRUE(b.covers(x));
  for (Tick t = -2; t < 12; ++t) {
    EXPECT_EQ(x.contains(t), a.contains(t) && b.contains(t)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalPairTest,
                         ::testing::Combine(::testing::Values<Tick>(0, 2, 4),
                                            ::testing::Values<Tick>(3, 6, 9),
                                            ::testing::Values<Tick>(0, 1, 5),
                                            ::testing::Values<Tick>(2, 7, 10)));

}  // namespace
}  // namespace rota
