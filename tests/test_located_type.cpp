#include "rota/resource/located_type.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

namespace rota {
namespace {

TEST(Location, InterningGivesEqualIds) {
  Location a("alpha");
  Location b("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.name(), "alpha");
}

TEST(Location, DistinctNamesDistinctIds) {
  Location a("beta-1");
  Location b("beta-2");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(Location, EmptyNameThrows) { EXPECT_THROW(Location(""), std::invalid_argument); }

TEST(Location, DefaultIsNowhere) {
  Location nowhere;
  EXPECT_EQ(nowhere.id(), 0u);
  EXPECT_EQ(nowhere.name(), "<nowhere>");
}

TEST(Location, OrderingIsById) {
  Location a("gamma-a");
  Location b("gamma-b");
  EXPECT_TRUE(a < b || b < a);
}

TEST(LocatedType, NodeResource) {
  Location l1("lt-n1");
  LocatedType cpu = LocatedType::cpu(l1);
  EXPECT_EQ(cpu.kind(), ResourceKind::kCpu);
  EXPECT_EQ(cpu.source(), l1);
  EXPECT_EQ(cpu.destination(), l1);
  EXPECT_FALSE(cpu.is_link());
}

TEST(LocatedType, LinkResource) {
  Location l1("lt-l1"), l2("lt-l2");
  LocatedType net = LocatedType::network(l1, l2);
  EXPECT_EQ(net.kind(), ResourceKind::kNetwork);
  EXPECT_TRUE(net.is_link());
  EXPECT_EQ(net.source(), l1);
  EXPECT_EQ(net.destination(), l2);
}

TEST(LocatedType, LinksAreDirected) {
  Location l1("lt-d1"), l2("lt-d2");
  EXPECT_NE(LocatedType::network(l1, l2), LocatedType::network(l2, l1));
}

TEST(LocatedType, SelfLinkThrows) {
  Location l1("lt-s1");
  EXPECT_THROW(LocatedType::network(l1, l1), std::invalid_argument);
}

TEST(LocatedType, SatisfiesOnlyIdentical) {
  Location l1("lt-i1"), l2("lt-i2");
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);
  EXPECT_TRUE(cpu1.satisfies(cpu1));
  EXPECT_FALSE(cpu1.satisfies(cpu2));
  EXPECT_FALSE(cpu1.satisfies(LocatedType::memory(l1)));
}

TEST(LocatedType, ToString) {
  Location l1("lt-p1"), l2("lt-p2");
  EXPECT_EQ(LocatedType::cpu(l1).to_string(), "<cpu, lt-p1>");
  EXPECT_EQ(LocatedType::network(l1, l2).to_string(), "<network, lt-p1 -> lt-p2>");
}

TEST(LocatedType, KindNames) {
  EXPECT_EQ(kind_name(ResourceKind::kCpu), "cpu");
  EXPECT_EQ(kind_name(ResourceKind::kNetwork), "network");
  EXPECT_EQ(kind_name(ResourceKind::kMemory), "memory");
  EXPECT_EQ(kind_name(ResourceKind::kDisk), "disk");
  EXPECT_EQ(kind_name(ResourceKind::kCustom), "custom");
}

TEST(LocatedType, HashableInUnorderedSet) {
  Location l1("lt-h1"), l2("lt-h2");
  std::unordered_set<LocatedType> set;
  set.insert(LocatedType::cpu(l1));
  set.insert(LocatedType::cpu(l1));  // duplicate
  set.insert(LocatedType::cpu(l2));
  set.insert(LocatedType::network(l1, l2));
  set.insert(LocatedType::network(l2, l1));
  EXPECT_EQ(set.size(), 4u);
}

TEST(LocatedType, MemoryFactory) {
  Location l1("lt-m1");
  LocatedType mem = LocatedType::memory(l1);
  EXPECT_EQ(mem.kind(), ResourceKind::kMemory);
  EXPECT_FALSE(mem.is_link());
}

TEST(Location, ConcurrentInterningIsConsistent) {
  // Many threads intern overlapping name sets; every thread must see the
  // same id for the same name and distinct ids for distinct names.
  constexpr int kThreads = 8;
  constexpr int kNames = 32;
  std::vector<std::vector<std::uint32_t>> ids(kThreads,
                                              std::vector<std::uint32_t>(kNames));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ids] {
      for (int n = 0; n < kNames; ++n) {
        ids[t][n] = Location("mt-intern-" + std::to_string(n)).id();
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t << " saw different ids";
  }
  std::unordered_set<std::uint32_t> distinct(ids[0].begin(), ids[0].end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kNames));
  // Names resolve back correctly after the stampede.
  EXPECT_EQ(Location("mt-intern-0").name(), "mt-intern-0");
}

TEST(LocatedType, GenericNodeAndLinkFactories) {
  Location l1("lt-g1"), l2("lt-g2");
  LocatedType disk = LocatedType::node(ResourceKind::kDisk, l1);
  EXPECT_EQ(disk.kind(), ResourceKind::kDisk);
  LocatedType bus = LocatedType::link(ResourceKind::kCustom, l1, l2);
  EXPECT_TRUE(bus.is_link());
  EXPECT_THROW(LocatedType::link(ResourceKind::kCustom, l1, l1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rota
