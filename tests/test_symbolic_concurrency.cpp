// Concurrency contracts of the feasibility ladder: the parallel permutation
// sweep must be observationally identical to the sequential one — same
// winning path, same deterministic counter advances — and the symbolic
// engine must be safely callable from concurrent pool lanes. Runs under
// -DROTA_SANITIZE=thread via the tsan label.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/symbolic/feasibility.hpp"
#include "rota/obs/obs.hpp"
#include "rota/runtime/thread_pool.hpp"

namespace rota {
namespace {

class SymbolicConcurrencyTest : public ::testing::Test {
 protected:
  Location l1{"syc-l1"};
  LocatedType cpu1 = LocatedType::cpu(l1);

  void TearDown() override { obs::enable_metrics(false); }

  Phase cpu_phase(Quantity q) {
    Phase p;
    p.demand.add(cpu1, q);
    p.first_action = 0;
    p.action_count = 1;
    return p;
  }

  ComplexRequirement actor(const std::string& name, Quantity q,
                           const TimeInterval& w, Rate cap) {
    return ComplexRequirement(name, {cpu_phase(q)}, w, cap);
  }

  /// Hog-first drip/hog instance (see test_symbolic.cpp): every greedy order
  /// fails, so search_feasible reaches the permutation sweep. `demand` above
  /// 12 makes the whole instance infeasible and forces a full sweep.
  SystemState drip_hog(std::size_t n, Quantity demand = 12) {
    const TimeInterval w(0, 12);
    std::vector<ComplexRequirement> actors;
    actors.push_back(actor("hog", demand, w, 0));
    for (std::size_t i = 0; i + 1 < n; ++i) {
      actors.push_back(actor("drip" + std::to_string(i), demand, w, 1));
    }
    ResourceSet supply;
    supply.add(static_cast<Rate>(n), TimeInterval(0, 12), cpu1);
    SystemState s(supply, 0);
    s.accommodate(ConcurrentRequirement("dh", std::move(actors), w));
    return s;
  }

  /// Runs the explorer-only ladder and returns (path, permutation-counter
  /// delta, greedy-runs delta).
  struct SweepRun {
    std::optional<ComputationPath> path;
    std::uint64_t permutations = 0;
    std::uint64_t greedy_runs = 0;
  };

  SweepRun sweep(const SystemState& start, ThreadPool* pool) {
    SearchOptions options;
    options.engine = FeasibilityEngine::kExplorer;
    options.pool = pool;
    obs::enable_metrics(true);
    auto& metrics = obs::CoreMetrics::get();
    const std::uint64_t perms_before = metrics.explorer_permutations.value();
    const std::uint64_t greedy_before = metrics.explorer_greedy_runs.value();
    SweepRun run;
    run.path = search_feasible(start, 12, options);
    run.permutations = metrics.explorer_permutations.value() - perms_before;
    run.greedy_runs = metrics.explorer_greedy_runs.value() - greedy_before;
    obs::enable_metrics(false);
    return run;
  }
};

TEST_F(SymbolicConcurrencyTest, ParallelSweepMatchesSequentialOnFeasible) {
  const SystemState start = drip_hog(5);
  ThreadPool pool(4);

  const SweepRun seq = sweep(start, nullptr);
  const SweepRun par = sweep(start, &pool);

  ASSERT_TRUE(seq.path.has_value());
  ASSERT_TRUE(par.path.has_value());
  EXPECT_EQ(seq.path->steps(), par.path->steps());
  EXPECT_EQ(seq.path->back(), par.path->back());
  // Deterministic accounting: both sweeps report the sequential run count —
  // winner index + 1 — on both counters, regardless of lane interleaving.
  EXPECT_EQ(seq.permutations, par.permutations);
  EXPECT_EQ(seq.greedy_runs, par.greedy_runs);
  // 3 ladder greedy runs precede the sweep; the sweep itself advances both
  // counters by the same amount.
  EXPECT_EQ(seq.greedy_runs, seq.permutations + 3);
}

TEST_F(SymbolicConcurrencyTest, ParallelSweepMatchesSequentialOnInfeasible) {
  const SystemState start = drip_hog(4, /*demand=*/13);
  ThreadPool pool(4);

  const SweepRun seq = sweep(start, nullptr);
  const SweepRun par = sweep(start, &pool);

  EXPECT_FALSE(seq.path.has_value());
  EXPECT_FALSE(par.path.has_value());
  // An exhausted sweep tries the full factorial on both sides.
  EXPECT_EQ(seq.permutations, 24u);
  EXPECT_EQ(par.permutations, 24u);
  EXPECT_EQ(seq.greedy_runs, par.greedy_runs);
}

TEST_F(SymbolicConcurrencyTest, RepeatedParallelSweepsStayIdentical) {
  const SystemState start = drip_hog(5);
  ThreadPool pool(4);
  const SweepRun first = sweep(start, &pool);
  ASSERT_TRUE(first.path.has_value());
  for (int i = 0; i < 10; ++i) {
    const SweepRun again = sweep(start, &pool);
    ASSERT_TRUE(again.path.has_value());
    EXPECT_EQ(first.path->steps(), again.path->steps());
    EXPECT_EQ(first.permutations, again.permutations);
  }
}

TEST_F(SymbolicConcurrencyTest, SymbolicEngineIsSafeAcrossLanes) {
  const SystemState start = drip_hog(6);
  ThreadPool pool(4);
  std::vector<FeasibilityVerdict> verdicts(16, FeasibilityVerdict::kUnknown);
  pool.parallel_for(verdicts.size(), [&](std::size_t i) {
    verdicts[i] = decide_feasibility(start, 12).verdict;
  });
  for (const FeasibilityVerdict v : verdicts) {
    EXPECT_EQ(v, FeasibilityVerdict::kFeasible);
  }
}

}  // namespace
}  // namespace rota
