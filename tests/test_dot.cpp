#include "rota/io/dot.hpp"

#include <gtest/gtest.h>

namespace rota {
namespace {

class DotTest : public ::testing::Test {
 protected:
  Location l1{"dot-l1"};
  Location l2{"dot-l2"};
  CostModel phi;
};

TEST_F(DotTest, DagExportShowsSegmentsAndGates) {
  SegmentedActorBuilder client("client", l1);
  client.evaluate(1).send(l2);
  client.await();
  client.evaluate(1);
  SegmentedActorBuilder server("server", l2);
  server.evaluate(2);
  InteractingComputation rpc("rpc",
                             {std::move(client).build(), std::move(server).build()},
                             {{0, 0, 1, 0}, {1, 0, 0, 1}}, 0, 40);
  const std::string dot = to_dot(make_dag_requirement(phi, rpc));

  EXPECT_NE(dot.find("digraph \"rpc\""), std::string::npos);
  EXPECT_NE(dot.find("client#0"), std::string::npos);
  EXPECT_NE(dot.find("server#0"), std::string::npos);
  // Intra-actor edge solid, cross-actor gate dashed.
  EXPECT_NE(dot.find("s0 -> s1;"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s2 [style=dashed, label=\"msg\"];"), std::string::npos);
  EXPECT_NE(dot.find("s2 -> s1 [style=dashed, label=\"msg\"];"), std::string::npos);
  // Structural sanity: braces balance.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST_F(DotTest, OrgTreeExport) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 50), LocatedType::cpu(l1));
  supply.add(8, TimeInterval(0, 50), LocatedType::cpu(l2));
  CyberOrg root("root", phi, supply);
  ResourceSet slice;
  slice.add(4, TimeInterval(0, 50), LocatedType::cpu(l2));
  CyberOrg& child = root.create_child("tenant", slice);
  ResourceSet grand;
  grand.add(1, TimeInterval(0, 50), LocatedType::cpu(l2));
  child.create_child("sub", grand);

  const std::string dot = to_dot(root);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_NE(dot.find("tenant"), std::string::npos);
  EXPECT_NE(dot.find("sub"), std::string::npos);
  // Two parent-child edges for three orgs.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++edges;
  }
  EXPECT_EQ(edges, 2u);
}

TEST_F(DotTest, EscapesQuotesInNames) {
  DagRequirement dag;
  dag.name = "we\"ird";
  dag.window = TimeInterval(0, 10);
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace rota
