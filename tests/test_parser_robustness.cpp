// Failure injection for the scenario parser: whatever bytes arrive, the
// parser either returns a valid Scenario or throws ScenarioParseError with a
// sane line number — it must never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "rota/io/formula_parser.hpp"
#include "rota/io/scenario.hpp"
#include "rota/util/rng.hpp"

namespace rota {
namespace {

/// Feeds text to the parser and asserts the contract.
void assert_parser_contract(const std::string& text) {
  std::size_t line_count = 1;
  for (char c : text) line_count += (c == '\n') ? 1 : 0;
  try {
    Scenario s = parse_scenario_string(text);
    // Valid parse: the result must survive a write/parse round trip.
    EXPECT_EQ(s, parse_scenario_string(scenario_to_string(s)));
  } catch (const ScenarioParseError& e) {
    EXPECT_GE(e.line(), 1u);
    EXPECT_LE(e.line(), line_count);
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
  // Anything else escaping is a test failure (uncaught exception).
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoup) {
  util::Rng rng(GetParam() * 83 + 29);
  static const char* kTokens[] = {
      "supply", "cpu",  "network", "memory",   "disk", "computation",
      "actor",  "end",  "evaluate", "send",    "create", "ready",
      "migrate", "l1",  "l2",      "job",      "0",     "1",
      "5",      "10",   "-3",      "99999999", "#x",    "???",
      "2.5",    "",     "l1",      "9223372036854775807"};
  std::ostringstream text;
  const int lines = static_cast<int>(rng.uniform(1, 30));
  for (int i = 0; i < lines; ++i) {
    const int words = static_cast<int>(rng.uniform(0, 7));
    for (int w = 0; w < words; ++w) {
      if (w != 0) text << ' ';
      text << kTokens[rng.index(std::size(kTokens))];
    }
    text << '\n';
  }
  assert_parser_contract(text.str());
}

TEST_P(ParserFuzzTest, MutatedValidScenario) {
  // Start from a valid scenario and corrupt one random line.
  static const char* kValid =
      "supply cpu l1 5 0 10\n"
      "supply network l1 l2 4 0 12\n"
      "computation job1 0 20\n"
      "  actor a1 l1\n"
      "    evaluate 2\n"
      "    send l2 1\n"
      "    ready\n"
      "end\n";
  util::Rng rng(GetParam() * 131 + 7);
  std::string text = kValid;
  const std::size_t pos = rng.index(text.size());
  const char replacement = static_cast<char>(rng.uniform(32, 126));
  text[pos] = replacement;
  assert_parser_contract(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ParserRobustness, PathologicalInputs) {
  assert_parser_contract("");
  assert_parser_contract("\n\n\n");
  assert_parser_contract(std::string(10000, ' '));
  assert_parser_contract(std::string(100, '\n'));
  assert_parser_contract("supply cpu l1 99999999999999999999999999 0 10\n");
  assert_parser_contract("computation j 0 9223372036854775807\nend\n");
  assert_parser_contract("supply cpu l1 5 10 0\n");      // inverted interval (null)
  assert_parser_contract("computation j -5 -1\nend\n");  // negative ticks are legal
  assert_parser_contract("actor orphan l1\n");
  assert_parser_contract(std::string("supply cpu l1 5 0 10 ") +
                         std::string(5000, 'x') + "\n");
}

TEST(ParserRobustness, DeeplyRepeatedBlocksParse) {
  std::ostringstream text;
  text << "supply cpu l1 100 0 100000\n";
  for (int i = 0; i < 500; ++i) {
    text << "computation j" << i << ' ' << i << ' ' << i + 10 << "\n  actor a" << i
         << " l1\n    evaluate 1\nend\n";
  }
  Scenario s = parse_scenario_string(text.str());
  EXPECT_EQ(s.computations.size(), 500u);
}

// ------------------------------------------------------------------
// Formula parser: whatever bytes arrive, parse_formula either returns
// a formula or throws FormulaParseError with a position inside the
// input — never a crash, hang, or another exception type.
// ------------------------------------------------------------------

class FormulaRobustnessTest : public ::testing::Test {
 protected:
  CostModel phi;
  Scenario scenario = parse_scenario_string(
      "supply cpu l1 4 0 60\n"
      "computation job1 0 10\n"
      "  actor a l1\n"
      "    evaluate 1\n"
      "end\n");

  /// Asserts the parser contract and returns the error position, or
  /// nullopt when the input parsed.
  std::optional<std::size_t> error_position(const std::string& text) {
    try {
      FormulaPtr psi = parse_formula(text, scenario, phi);
      EXPECT_NE(psi, nullptr);
      return std::nullopt;
    } catch (const FormulaParseError& e) {
      EXPECT_LE(e.position(), text.size());
      EXPECT_NE(std::string(e.what()).find("at character"), std::string::npos);
      return e.position();
    }
  }
};

TEST_F(FormulaRobustnessTest, RejectsTrailingGarbage) {
  EXPECT_EQ(error_position("true true"), 5u);
  EXPECT_EQ(error_position("satisfy(job1) x"), 14u);
  EXPECT_EQ(error_position("(true))"), 6u);
  EXPECT_EQ(error_position("true)"), 4u);
  // Trailing whitespace alone is fine.
  EXPECT_EQ(error_position("satisfy(job1)  "), std::nullopt);
}

TEST_F(FormulaRobustnessTest, TruncatedSatisfyClausePositions) {
  // "satisfy(job1 by)": the missing integer is detected at the ')'.
  EXPECT_EQ(error_position("satisfy(job1 by)"), 15u);
  EXPECT_EQ(error_position("satisfy(job1 from)"), 17u);
  EXPECT_EQ(error_position("satisfy(job1"), 12u);
  EXPECT_EQ(error_position("satisfy("), 8u);
  EXPECT_EQ(error_position("satisfy"), 7u);
  // An unknown name is reported at the name itself, even after blanks.
  EXPECT_EQ(error_position("satisfy(nosuch)"), 8u);
  EXPECT_EQ(error_position("satisfy(   nosuch)"), 11u);
  // Empty override window is reported at the name.
  EXPECT_EQ(error_position("satisfy(job1 from 9 by 3)"), 8u);
}

TEST_F(FormulaRobustnessTest, DeepNestingErrorsInsteadOfOverflowing) {
  // Far past any sane nesting the parser must throw, not smash the stack.
  const std::string bangs(200000, '!');
  EXPECT_THROW(parse_formula(bangs + "true", scenario, phi), FormulaParseError);
  std::string parens(100000, '(');
  EXPECT_THROW(parse_formula(parens + "true", scenario, phi), FormulaParseError);
  // Deep-but-reasonable nesting still parses.
  std::string ok;
  for (int i = 0; i < 400; ++i) ok += "!";
  EXPECT_NE(parse_formula(ok + "true", scenario, phi), nullptr);
}

TEST_F(FormulaRobustnessTest, RandomTokenSoup) {
  static const char* kTokens[] = {"satisfy", "(",    ")",    "!",    "<>",
                                  "[]",      "true", "false", "job1", "from",
                                  "by",      "0",    "17",    "-3",   "???",
                                  "trueX",   ""};
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    util::Rng rng(seed * 131 + 7);
    std::ostringstream text;
    const int words = static_cast<int>(rng.uniform(1, 12));
    for (int w = 0; w < words; ++w) {
      if (w != 0 && rng.chance(0.7)) text << ' ';
      text << kTokens[rng.index(std::size(kTokens))];
    }
    error_position(text.str());  // contract assertion only
  }
}

}  // namespace
}  // namespace rota
