// End-to-end integration: the full ROTA pipeline on open-system scenarios —
// workload generation → Φ → admission (Theorem 4) → plan-following execution
// under churn → model-checking the resulting path (Figure 1 semantics).
#include <gtest/gtest.h>

#include "rota/admission/baselines.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/logic/theorems.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/workload/scenarios.hpp"

namespace rota {
namespace {

TEST(Integration, PaperStoryEndToEnd) {
  // The paper's running example, full circle: represent the actor, derive
  // its requirement via Φ, verify Theorem 3, admit it, execute it.
  PaperExample ex = make_paper_example();
  ConcurrentRequirement rho = make_concurrent_requirement(ex.phi, ex.computation);

  RotaAdmissionController ctl(ex.phi, ex.supply);
  AdmissionDecision d = ctl.request(ex.computation, 0);
  ASSERT_TRUE(d.accepted);

  Simulator sim(ex.supply, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_admission(0, rho, d.plan);
  SimReport report = sim.run(ex.computation.deadline() + 1);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
}

TEST(Integration, ChurnyVolunteerNetworkStaysSound) {
  // Admission over a churning supply: the controller only ever commits to
  // supply it has been told about (base + already-joined churn), so every
  // admitted computation still finishes on time.
  VolunteerScenario v = make_volunteer_network(7, 600);
  WorkloadGenerator& gen = v.generator;

  RotaAdmissionController ctl(gen.phi(), v.base_supply);
  Simulator sim(v.base_supply, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_churn(v.churn);

  // Interleave churn joins and arrivals in time order.
  auto arrivals = gen.make_arrivals(400);
  std::size_t next_join = 0;
  std::size_t admitted = 0;
  for (const Arrival& a : arrivals) {
    while (next_join < v.churn.size() && v.churn.events()[next_join].at <= a.at) {
      ResourceSet joined;
      joined.add(v.churn.events()[next_join].term);
      ctl.on_join(joined);
      ++next_join;
    }
    AdmissionDecision d = ctl.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++admitted;
    sim.schedule_admission(a.at, make_concurrent_requirement(gen.phi(), a.computation),
                           d.plan);
  }

  ASSERT_GT(admitted, 0u) << "scenario admitted nothing; workload too harsh";
  SimReport report = sim.run(v.horizon);
  EXPECT_EQ(report.missed(), 0u);
}

TEST(Integration, ChurnEnablesAdmissionsBaseSupplyCannot) {
  // The point of reasoning about joins: with only the thin base supply some
  // computations are rejected that the churned supply accommodates. The base
  // here is overloaded on purpose (tight deadlines, frequent arrivals).
  WorkloadConfig cfg;
  cfg.seed = 21;
  cfg.num_locations = 3;
  cfg.cpu_rate = 1;  // starving base supply
  cfg.network_rate = 2;
  cfg.mean_interarrival = 10.0;
  cfg.laxity = 1.5;
  WorkloadGenerator gen(cfg, CostModel());
  const Tick horizon = 600;
  const ResourceSet base = gen.base_supply(TimeInterval(0, horizon));
  ChurnTrace churn = gen.make_churn(horizon, /*join_rate=*/0.4,
                                    /*mean_lifetime=*/80.0, /*max_rate=*/10);
  auto arrivals = gen.make_arrivals(400);

  RotaAdmissionController base_only(gen.phi(), base);
  RotaAdmissionController with_churn(gen.phi(), base);

  std::size_t next_join = 0;
  std::size_t base_accepted = 0, churn_accepted = 0;
  for (const Arrival& a : arrivals) {
    while (next_join < churn.size() && churn.events()[next_join].at <= a.at) {
      ResourceSet joined;
      joined.add(churn.events()[next_join].term);
      with_churn.on_join(joined);
      ++next_join;
    }
    if (base_only.request(a.computation, a.at).accepted) ++base_accepted;
    if (with_churn.request(a.computation, a.at).accepted) ++churn_accepted;
  }
  EXPECT_LT(base_accepted, arrivals.size()) << "base supply admitted everything";
  EXPECT_GT(churn_accepted, base_accepted);
}

TEST(Integration, ModelCheckerAgreesWithController) {
  // Build the committed path from the controller's admissions, then ask the
  // model checker (Figure 1) whether one more computation is satisfiable;
  // the verdict must match the controller's own.
  PaperExample ex = make_paper_example();
  Location l1 = ex.l1;

  ResourceSet supply;
  supply.add(4, TimeInterval(0, 12), LocatedType::cpu(l1));

  auto mk = [&](const std::string& name, Tick s, Tick d, std::int64_t w) {
    auto g = ActorComputationBuilder(name + ".a", l1).evaluate(w).build();
    return DistributedComputation(name, {g}, s, d);
  };

  RotaAdmissionController ctl(ex.phi, supply);
  auto d1 = ctl.request(mk("first", 0, 6, 2), 0);  // 16 cpu: ticks 0..3
  ASSERT_TRUE(d1.accepted);

  ConcurrentRequirement rho1 = make_concurrent_requirement(ex.phi, mk("first", 0, 6, 2));
  ComputationPath sigma = realize_plan(supply, rho1, *d1.plan, 0);

  ModelChecker mc(sigma);
  for (std::int64_t w : {1, 2, 3, 4}) {
    ConcurrentRequirement rho2 =
        make_concurrent_requirement(ex.phi, mk("probe", 0, 12, w));
    RotaAdmissionController probe = ctl;
    EXPECT_EQ(mc.satisfies(f_satisfy(rho2), 0), probe.request(rho2, 0).accepted)
        << "w=" << w;
  }
}

TEST(Integration, BaselineOverAdmissionCausesMissesRotaDoesNot) {
  // The headline experiment in miniature: identical workload, work-conserving
  // EDF execution of whatever each strategy admits. ROTA's admitted set runs
  // clean; always-admit takes everything and misses some.
  WorkloadConfig cfg;
  cfg.seed = 99;
  cfg.num_locations = 2;
  cfg.cpu_rate = 6;
  cfg.network_rate = 6;
  cfg.mean_interarrival = 4.0;  // heavy load
  cfg.laxity = 2.0;
  WorkloadGenerator gen(cfg, CostModel());
  const Tick horizon = 400;
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  auto arrivals = gen.make_arrivals(250);

  auto run_strategy = [&](AdmissionStrategy& strategy, ExecutionMode mode) {
    Simulator sim(supply, 0, mode, PriorityOrder::kEdf);
    for (const Arrival& a : arrivals) {
      AdmissionDecision d = strategy.request(a.computation, a.at);
      if (!d.accepted) continue;
      sim.schedule_admission(
          a.at, make_concurrent_requirement(gen.phi(), a.computation),
          std::move(d.plan));
    }
    return sim.run(horizon);
  };

  RotaStrategy rota(gen.phi(), supply);
  SimReport rota_report = run_strategy(rota, ExecutionMode::kPlanFollowing);
  EXPECT_EQ(rota_report.missed(), 0u);

  AlwaysAdmitStrategy always;
  SimReport always_report = run_strategy(always, ExecutionMode::kWorkConserving);
  EXPECT_GT(always_report.admitted(), rota_report.admitted());
  EXPECT_GT(always_report.missed(), 0u);
}

}  // namespace
}  // namespace rota
