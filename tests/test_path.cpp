#include "rota/logic/path.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class PathTest : public ::testing::Test {
 protected:
  Location l1{"pt-l1"};
  Location l2{"pt-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 10), cpu1);
    s.add(4, TimeInterval(0, 10), net12);
    return s;
  }

  ConcurrentRequirement requirement() {
    auto gamma = ActorComputationBuilder("a1", l1).evaluate().send(l2).build();
    DistributedComputation lambda("job", {gamma}, 0, 10);
    return make_concurrent_requirement(phi, lambda);
  }
};

TEST_F(PathTest, InitialPathHasOneState) {
  ComputationPath path(SystemState(supply(), 0));
  EXPECT_EQ(path.size(), 1u);
  EXPECT_EQ(path.front().now(), 0);
}

TEST_F(PathTest, ApplyExtends) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(TickStep{});
  path.apply(TickStep{});
  EXPECT_EQ(path.size(), 3u);
  EXPECT_EQ(path.back().now(), 2);
  EXPECT_EQ(path.state(1).now(), 1);
}

TEST_F(PathTest, FailedStepLeavesPathIntact) {
  ComputationPath path(SystemState(supply(), 0));
  EXPECT_THROW(path.apply(TickStep{{{7, cpu1, 1}}}), std::logic_error);
  EXPECT_EQ(path.size(), 1u);
}

TEST_F(PathTest, StepsAreRecorded) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{requirement()});
  path.apply(TickStep{{{0, cpu1, 4}}});
  ASSERT_EQ(path.steps().size(), 2u);
  EXPECT_TRUE(std::holds_alternative<AccommodateStep>(path.steps()[0]));
  EXPECT_TRUE(std::holds_alternative<TickStep>(path.steps()[1]));
}

TEST_F(PathTest, ConsumptionProfileAggregates) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{requirement()});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, net12, 4}}});

  auto profile = path.consumption_profile(0);
  ASSERT_TRUE(profile.contains(cpu1));
  ASSERT_TRUE(profile.contains(net12));
  EXPECT_EQ(profile[cpu1].integral(), 8);
  EXPECT_EQ(profile[cpu1].value_at(0), 4);
  EXPECT_EQ(profile[cpu1].value_at(2), 0);
  EXPECT_EQ(profile[net12].value_at(2), 4);
  // Equal-rate consecutive ticks compress into one segment.
  EXPECT_EQ(profile[cpu1].segments().size(), 1u);
}

TEST_F(PathTest, ConsumptionProfileSuffix) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{requirement()});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, net12, 4}}});

  // From index 2 (t=1) onward: only the second cpu tick and the net tick.
  auto profile = path.consumption_profile(2);
  EXPECT_EQ(profile[cpu1].integral(), 4);
  EXPECT_EQ(profile[net12].integral(), 4);
}

TEST_F(PathTest, ExpiringResourcesAreSupplyMinusConsumption) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{requirement()});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, net12, 4}}});

  const ResourceSet expiring = path.expiring_resources(0, TimeInterval(0, 10));
  // cpu fully consumed on [0,2), free on [2,10): 8 × 4 = 32.
  EXPECT_EQ(expiring.quantity(cpu1, TimeInterval(0, 10)), 32);
  EXPECT_EQ(expiring.availability(cpu1).value_at(0), 0);
  EXPECT_EQ(expiring.availability(cpu1).value_at(2), 4);
  // net free except tick 2.
  EXPECT_EQ(expiring.quantity(net12, TimeInterval(0, 10)), 36);
}

TEST_F(PathTest, ExpiringResourcesSeeLaterJoins) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(TickStep{});
  ResourceSet extra;
  extra.add(7, TimeInterval(3, 6), cpu1);
  path.apply(JoinStep{extra});

  const ResourceSet expiring = path.expiring_resources(0, TimeInterval(0, 10));
  EXPECT_EQ(expiring.availability(cpu1).value_at(4), 4 + 7);
}

TEST_F(PathTest, ExpiringResourcesRespectWindow) {
  ComputationPath path(SystemState(supply(), 0));
  const ResourceSet expiring = path.expiring_resources(0, TimeInterval(2, 4));
  EXPECT_EQ(expiring.quantity(cpu1, TimeInterval(0, 100)), 8);
}

TEST_F(PathTest, ExpiringResourcesNeverGoNegative) {
  // Θ_expire = supply − consumption is clamped before it is handed to any
  // planner: this pins the clamped_nonnegative() guard at the one
  // StepFunction::minus call site in path.cpp (the minus-caller audit;
  // the other subtraction surfaces go through relative_complement's
  // definedness check or an explicit min_value() test).
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{requirement()});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, net12, 4}}});

  for (std::size_t pos = 0; pos < path.size(); ++pos) {
    const ResourceSet expiring = path.expiring_resources(pos, TimeInterval(0, 10));
    for (const LocatedType& type : expiring.types()) {
      EXPECT_GE(expiring.availability(type).min_value(), 0)
          << "position " << pos << ", type " << type.to_string();
    }
  }
}

TEST_F(PathTest, ExpiringResourcesFromLaterPositionDropPast) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(TickStep{});
  path.apply(TickStep{});
  path.apply(TickStep{});
  // From position 3 (t=3), supply before t=3 is gone.
  const ResourceSet expiring = path.expiring_resources(3, TimeInterval(0, 10));
  EXPECT_EQ(expiring.quantity(cpu1, TimeInterval(0, 100)), 4 * 7);
}

TEST_F(PathTest, ToStringShowsTransitions) {
  ComputationPath path(SystemState(supply(), 0));
  path.apply(TickStep{});
  EXPECT_NE(path.to_string().find("tick"), std::string::npos);
}

TEST_F(PathTest, StepToStringCoversEveryRule) {
  EXPECT_EQ(step_to_string(TickStep{}), "tick{}");
  EXPECT_NE(step_to_string(TickStep{{{0, cpu1, 4}}}).find("->[4] #0"),
            std::string::npos);

  ResourceSet joined;
  joined.add(2, TimeInterval(0, 5), cpu1);
  EXPECT_NE(step_to_string(JoinStep{joined}).find("join"), std::string::npos);

  EXPECT_NE(step_to_string(AccommodateStep{requirement()}).find("accommodate(job)"),
            std::string::npos);
  EXPECT_EQ(step_to_string(LeaveStep{"job"}), "leave(job)");
}

TEST_F(PathTest, LeaveStepThroughApply) {
  ComputationPath path(SystemState(supply(), 0));
  auto gamma = ActorComputationBuilder("a1", l1).evaluate().build();
  DistributedComputation lambda("future", {gamma}, 5, 10);
  path.apply(AccommodateStep{make_concurrent_requirement(phi, lambda)});
  EXPECT_EQ(path.back().commitments().size(), 1u);
  path.apply(LeaveStep{"future"});
  EXPECT_TRUE(path.back().commitments().empty());
  EXPECT_EQ(path.size(), 3u);
}

}  // namespace
}  // namespace rota
