// Guard on the disabled-path cost of the observability layer: with metrics
// off and no TraceRecorder installed, an instrumentation site is one or two
// relaxed atomic loads plus a branch. This test measures that cost directly
// and proves a generous per-request budget of such sites stays under 2% of
// the measured per-request batched-admission cost.
//
// The comparison is arithmetic (site cost x sites-per-request vs. request
// cost) rather than an end-to-end A/B of two timed runs, because at < 2%
// the A/B difference drowns in scheduler noise on shared CI hardware.
#include "rota/obs/obs.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/workload/generator.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ROTA_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ROTA_UNDER_SANITIZER 1
#endif
#endif

namespace rota {
namespace {

double ns_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                  t0)
      .count();
}

TEST(ObsOverhead, DisabledPathStaysUnderTwoPercentOfAdmission) {
#ifdef ROTA_UNDER_SANITIZER
  GTEST_SKIP() << "timing guard is meaningless under a sanitizer";
#endif
#ifndef NDEBUG
  GTEST_SKIP() << "timing guard runs on optimized builds only";
#endif
  ASSERT_FALSE(obs::metrics_enabled());
  ASSERT_EQ(obs::TraceRecorder::current(), nullptr);

  // --- Cost of one disabled instrumentation site. -------------------------
  obs::CoreMetrics& m = obs::CoreMetrics::get();
  const std::uint64_t accepted_before = m.plan_commit_accepted.value();
  constexpr std::uint64_t kOps = 4'000'000;
  std::uint64_t sink = 0;
  const auto gate_t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ROTA_OBS_SPAN("overhead-probe");   // gate: recorder pointer load, twice
    obs::count(m.plan_commit_accepted);  // gate: metrics flag load
    sink += obs::tracing_enabled();    // keep the loop observable
  }
  const double ns_per_site = ns_since(gate_t0) / static_cast<double>(kOps);
  ASSERT_EQ(sink, 0u);
  ASSERT_EQ(m.plan_commit_accepted.value(), accepted_before) << "gate leaked a count";

  // --- Per-request cost of the batched admission pipeline. ----------------
  WorkloadConfig config;
  config.seed = 7;
  config.mean_interarrival = 4.0;
  config.laxity = 1.3;
  CostModel phi;
  WorkloadGenerator gen(config, phi);
  const Tick horizon = 400;
  std::vector<BatchRequest> requests;
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    requests.push_back(BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  ASSERT_GT(requests.size(), 20u);

  const auto supply = gen.base_supply(TimeInterval(0, horizon));
  {  // warm-up: fault in code and allocator pools outside the timed window
    BatchAdmissionController warm(phi, supply, PlanningPolicy::kAsap, 4);
    (void)warm.admit_batch(requests);
  }
  BatchAdmissionController ctl(phi, supply, PlanningPolicy::kAsap, 4);
  const auto admit_t0 = std::chrono::steady_clock::now();
  const auto decisions = ctl.admit_batch(requests);
  const double ns_per_request = ns_since(admit_t0) / static_cast<double>(requests.size());
  ASSERT_EQ(decisions.size(), requests.size());

  // --- The guard. ---------------------------------------------------------
  // A request crosses far fewer than 64 instrumentation sites (a handful of
  // spans in its round plus the commit-stage counters); 64 is deliberate
  // slack so the bound fails on a real regression, not on jitter.
  constexpr double kSitesPerRequest = 64.0;
  const double overhead = kSitesPerRequest * ns_per_site;
  RecordProperty("ns_per_site", std::to_string(ns_per_site));
  RecordProperty("ns_per_request", std::to_string(ns_per_request));
  EXPECT_LT(overhead, 0.02 * ns_per_request)
      << "disabled observability path costs " << ns_per_site
      << " ns/site; x" << kSitesPerRequest << " sites = " << overhead
      << " ns against a " << ns_per_request << " ns/request admission cost";
}

}  // namespace
}  // namespace rota
