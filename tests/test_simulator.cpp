#include "rota/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "rota/admission/controller.hpp"
#include "rota/obs/obs.hpp"

namespace rota {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  Location l1{"sm-l1"};
  Location l2{"sm-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 40), cpu1);
    s.add(4, TimeInterval(0, 40), net12);
    return s;
  }

  ConcurrentRequirement req(const std::string& name, Tick s, Tick d,
                            std::int64_t weight = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", l1).evaluate(weight).build();
    DistributedComputation lambda(name, {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda);
  }
};

TEST_F(SimulatorTest, SingleJobCompletesWorkConserving) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10));
  SimReport report = sim.run(40);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.outcomes[0].finished_at, 2);
  EXPECT_EQ(report.missed(), 0u);
}

TEST_F(SimulatorTest, MissedDeadlineIsReported) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("big", 0, 3, 4));  // 32 cpu, 12 available by d
  SimReport report = sim.run(40);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].completed);  // finishes, but late
  EXPECT_FALSE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.miss_rate(), 1.0);
}

TEST_F(SimulatorTest, UnfinishedAtHorizonIsIncomplete) {
  ResourceSet thin;
  thin.add(1, TimeInterval(0, 5), cpu1);
  Simulator sim(thin, 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10, 4));
  SimReport report = sim.run(10);
  EXPECT_FALSE(report.outcomes[0].completed);
  EXPECT_FALSE(report.outcomes[0].met_deadline());
}

TEST_F(SimulatorTest, PlanFollowingExecutesThePlan) {
  RotaAdmissionController ctl(phi, supply());
  auto gamma = ActorComputationBuilder("pf.a", l1).evaluate().send(l2).build();
  DistributedComputation lambda("pf", {gamma}, 0, 10);
  auto decision = ctl.request(lambda, 0);
  ASSERT_TRUE(decision.accepted);

  Simulator sim(supply(), 0, ExecutionMode::kPlanFollowing);
  sim.schedule_admission(0, make_concurrent_requirement(phi, lambda), decision.plan);
  SimReport report = sim.run(40);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.outcomes[0].finished_at, decision.plan->finish);
}

TEST_F(SimulatorTest, EdfSavesTightJobThatFcfsLoses) {
  Simulator fcfs(supply(), 0, ExecutionMode::kWorkConserving, PriorityOrder::kFcfs);
  fcfs.schedule_admission(0, req("loose", 0, 30));
  fcfs.schedule_admission(0, req("tight", 0, 2));
  SimReport r1 = fcfs.run(40);
  EXPECT_EQ(r1.missed(), 1u);

  Simulator edf(supply(), 0, ExecutionMode::kWorkConserving, PriorityOrder::kEdf);
  edf.schedule_admission(0, req("loose", 0, 30));
  edf.schedule_admission(0, req("tight", 0, 2));
  SimReport r2 = edf.run(40);
  EXPECT_EQ(r2.missed(), 0u);
}

TEST_F(SimulatorTest, LateArrivalStartsLate) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(5, req("late", 5, 12));
  SimReport report = sim.run(40);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.outcomes[0].finished_at, 7);
}

TEST_F(SimulatorTest, JoinedSupplyEnablesCompletion) {
  ResourceSet empty;
  Simulator sim(empty, 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10));
  ResourceSet late_supply;
  late_supply.add(8, TimeInterval(5, 10), cpu1);
  sim.schedule_join(5, late_supply);
  SimReport report = sim.run(40);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.outcomes[0].finished_at, 6);
}

TEST_F(SimulatorTest, ChurnTraceJoins) {
  ResourceSet empty;
  Simulator sim(empty, 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10));
  ChurnTrace trace;
  trace.add(2, ResourceTerm(8, TimeInterval(2, 6), cpu1));
  sim.schedule_churn(trace);
  SimReport report = sim.run(40);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
}

TEST_F(SimulatorTest, SupplyAndConsumptionAccounting) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10));
  SimReport report = sim.run(40);
  EXPECT_EQ(report.supplied.at(cpu1), 160);  // 4 × 40
  EXPECT_EQ(report.consumed.at(cpu1), 8);
  EXPECT_GT(report.utilization(), 0.0);
  EXPECT_LT(report.utilization(), 1.0);
}

TEST_F(SimulatorTest, MultiActorComputationNeedsAllActorsToFinish) {
  auto g1 = ActorComputationBuilder("m.a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("m.a2", l2).evaluate(100).build();  // starved
  DistributedComputation lambda("m", {g1, g2}, 0, 10);
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, make_concurrent_requirement(phi, lambda));
  SimReport report = sim.run(20);
  EXPECT_FALSE(report.outcomes[0].completed);  // a2 has no cpu@l2 at all
  EXPECT_FALSE(report.outcomes[0].met_deadline());
}

TEST_F(SimulatorTest, AdmissionAfterHorizonNeverRuns) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(50, req("never", 50, 60));
  SimReport report = sim.run(10);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_FALSE(report.outcomes[0].completed);
}

TEST_F(SimulatorTest, TardinessAndResponseTime) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("on-time", 0, 10));        // finishes at 2
  sim.schedule_admission(0, req("late", 2, 4, 4));         // 32 cpu from t=2
  SimReport report = sim.run(60);

  const ComputationOutcome& on_time = report.outcomes[0];
  EXPECT_EQ(on_time.tardiness(), 0);
  EXPECT_EQ(on_time.response_time(), 2);

  const ComputationOutcome& late = report.outcomes[1];
  ASSERT_TRUE(late.completed);
  EXPECT_GT(*late.tardiness(), 0);
  EXPECT_GT(report.mean_tardiness(), 0.0);
  EXPECT_GT(report.mean_response_time(), 0.0);
}

TEST_F(SimulatorTest, IncompleteOutcomeHasNoTardiness) {
  Simulator sim(ResourceSet{}, 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("starved", 0, 10));
  SimReport report = sim.run(20);
  EXPECT_FALSE(report.outcomes[0].tardiness().has_value());
  EXPECT_FALSE(report.outcomes[0].response_time().has_value());
  EXPECT_EQ(report.mean_tardiness(), 0.0);
}

TEST_F(SimulatorTest, ReportToString) {
  Simulator sim(supply(), 0);
  sim.schedule_admission(0, req("j", 0, 10));
  SimReport report = sim.run(40);
  EXPECT_NE(report.to_string().find("admitted=1"), std::string::npos);
}

TEST_F(SimulatorTest, ModeNames) {
  EXPECT_EQ(execution_mode_name(ExecutionMode::kPlanFollowing), "plan-following");
  EXPECT_EQ(execution_mode_name(ExecutionMode::kWorkConserving), "work-conserving");
}

// ---------------------------------------------------------------------------
// SimReport degenerate-run invariants (completed ⇔ finished_at, empty runs).

TEST_F(SimulatorTest, ZeroActorComputationFinishesWhenAccommodated) {
  // A requirement with no actors spawns no commitments; it is vacuously done
  // the tick it enters the system — not "completed with no finish time".
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(3, ConcurrentRequirement("empty", {}, TimeInterval(3, 10)));
  SimReport report = sim.run(40);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].completed);
  ASSERT_TRUE(report.outcomes[0].finished_at.has_value());
  EXPECT_EQ(*report.outcomes[0].finished_at, 3);
  EXPECT_TRUE(report.outcomes[0].met_deadline());
  EXPECT_EQ(report.outcomes[0].tardiness(), Tick{0});
  EXPECT_EQ(report.outcomes[0].response_time(), Tick{0});
  EXPECT_NO_THROW(report.validate());
}

TEST_F(SimulatorTest, ZeroActorComputationPastHorizonStaysIncomplete) {
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(50, ConcurrentRequirement("late", {}, TimeInterval(50, 60)));
  SimReport report = sim.run(10);  // never accommodated
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_FALSE(report.outcomes[0].completed);
  EXPECT_FALSE(report.outcomes[0].finished_at.has_value());
  EXPECT_NO_THROW(report.validate());
}

TEST_F(SimulatorTest, ValidateRejectsCompletedWithoutFinishTime) {
  SimReport report;
  ComputationOutcome o;
  o.name = "broken";
  o.completed = true;  // but finished_at unset
  report.outcomes.push_back(o);
  EXPECT_THROW(report.validate(), std::logic_error);
}

TEST_F(SimulatorTest, ValidateRejectsFinishTimeWithoutCompleted) {
  SimReport report;
  ComputationOutcome o;
  o.name = "broken";
  o.finished_at = 5;  // but not completed
  report.outcomes.push_back(o);
  EXPECT_THROW(report.validate(), std::logic_error);
}

TEST_F(SimulatorTest, EmptyRunHasZeroRatesNotNaN) {
  Simulator sim(ResourceSet{}, 0, ExecutionMode::kWorkConserving);
  SimReport report = sim.run(10);
  EXPECT_EQ(report.admitted(), 0u);
  EXPECT_EQ(report.miss_rate(), 0.0);
  EXPECT_EQ(report.utilization(), 0.0);  // zero supplied: 0, not NaN
  EXPECT_EQ(report.mean_tardiness(), 0.0);
  EXPECT_EQ(report.mean_response_time(), 0.0);
  EXPECT_NO_THROW(report.validate());
}

TEST_F(SimulatorTest, ZeroSupplyWithAdmissionIsAllMissNoNaN) {
  Simulator sim(ResourceSet{}, 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("starved", 0, 10));
  SimReport report = sim.run(20);
  EXPECT_EQ(report.miss_rate(), 1.0);
  EXPECT_EQ(report.utilization(), 0.0);
  EXPECT_NO_THROW(report.validate());
}

TEST_F(SimulatorTest, MetricsSnapshotLandsInReportWhenEnabled) {
  obs::MetricsRegistry::global().reset();
  obs::enable_metrics(true);
  Simulator sim(supply(), 0, ExecutionMode::kWorkConserving);
  sim.schedule_admission(0, req("j", 0, 10));
  SimReport report = sim.run(40);
  obs::enable_metrics(false);

  EXPECT_FALSE(report.metrics.empty());
  EXPECT_EQ(report.metrics.counter("sim.admissions"), 1u);
  EXPECT_GT(report.metrics.counter("sim.ticks"), 0u);
  EXPECT_GT(report.metrics.counter("sim.labels"), 0u);

  // Disabled by default: a fresh run right after disabling records nothing.
  obs::MetricsRegistry::global().reset();
  Simulator quiet(supply(), 0, ExecutionMode::kWorkConserving);
  quiet.schedule_admission(0, req("q", 0, 10));
  SimReport silent = quiet.run(40);
  EXPECT_TRUE(silent.metrics.empty());
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter("sim.ticks"), 0u);
}

}  // namespace
}  // namespace rota
