#include "rota/time/interval_set.hpp"

#include <gtest/gtest.h>

#include "rota/util/rng.hpp"

namespace rota {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.measure(), 0);
  EXPECT_TRUE(s.hull().empty());
}

TEST(IntervalSet, InsertSingle) {
  IntervalSet s(TimeInterval(2, 5));
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.measure(), 3);
  EXPECT_EQ(s.intervals().size(), 1u);
}

TEST(IntervalSet, InsertEmptyIsNoop) {
  IntervalSet s;
  s.insert(TimeInterval());
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, DisjointInsertsStaySeparate) {
  IntervalSet s{TimeInterval(0, 2), TimeInterval(5, 7)};
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.measure(), 4);
}

TEST(IntervalSet, TouchingInsertsCoalesce) {
  IntervalSet s{TimeInterval(0, 3), TimeInterval(3, 7)};
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals().front(), TimeInterval(0, 7));
}

TEST(IntervalSet, OverlappingInsertsCoalesce) {
  IntervalSet s{TimeInterval(0, 5), TimeInterval(3, 9), TimeInterval(8, 12)};
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals().front(), TimeInterval(0, 12));
}

TEST(IntervalSet, InsertBridgesGap) {
  IntervalSet s{TimeInterval(0, 2), TimeInterval(6, 8)};
  s.insert(TimeInterval(2, 6));
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.measure(), 8);
}

TEST(IntervalSet, InsertionOrderIrrelevant) {
  IntervalSet a{TimeInterval(5, 7), TimeInterval(0, 2), TimeInterval(2, 5)};
  IntervalSet b{TimeInterval(0, 7)};
  EXPECT_EQ(a, b);
}

TEST(IntervalSet, Contains) {
  IntervalSet s{TimeInterval(0, 2), TimeInterval(5, 7)};
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(7));
}

TEST(IntervalSet, Covers) {
  IntervalSet s{TimeInterval(0, 4), TimeInterval(6, 9)};
  EXPECT_TRUE(s.covers(TimeInterval(1, 3)));
  EXPECT_TRUE(s.covers(TimeInterval(0, 4)));
  EXPECT_FALSE(s.covers(TimeInterval(3, 7)));  // spans the gap
  EXPECT_TRUE(s.covers(TimeInterval()));
}

TEST(IntervalSet, Hull) {
  IntervalSet s{TimeInterval(2, 4), TimeInterval(8, 11)};
  EXPECT_EQ(s.hull(), TimeInterval(2, 11));
}

TEST(IntervalSet, HullMatchesPairwiseHullWith) {
  IntervalSet s{TimeInterval(2, 4), TimeInterval(6, 7), TimeInterval(8, 11)};
  TimeInterval h;  // fold hull_with over the members, as the batch pipeline does
  for (const auto& iv : s.intervals()) h = h.hull_with(iv);
  EXPECT_EQ(s.hull(), h);
  EXPECT_EQ(IntervalSet{}.hull(), TimeInterval());
}

TEST(IntervalSet, Unioned) {
  IntervalSet a{TimeInterval(0, 3)};
  IntervalSet b{TimeInterval(5, 8)};
  IntervalSet u = a.unioned(b);
  EXPECT_EQ(u.measure(), 6);
  EXPECT_EQ(u.intervals().size(), 2u);
}

TEST(IntervalSet, Intersected) {
  IntervalSet a{TimeInterval(0, 6), TimeInterval(8, 12)};
  IntervalSet b{TimeInterval(4, 10)};
  IntervalSet x = a.intersected(b);
  EXPECT_EQ(x, (IntervalSet{TimeInterval(4, 6), TimeInterval(8, 10)}));
}

TEST(IntervalSet, IntersectedWithWindow) {
  IntervalSet a{TimeInterval(0, 6), TimeInterval(8, 12)};
  EXPECT_EQ(a.intersected(TimeInterval(5, 9)),
            (IntervalSet{TimeInterval(5, 6), TimeInterval(8, 9)}));
}

TEST(IntervalSet, SubtractedMiddle) {
  IntervalSet a{TimeInterval(0, 10)};
  IntervalSet b{TimeInterval(3, 6)};
  EXPECT_EQ(a.subtracted(b), (IntervalSet{TimeInterval(0, 3), TimeInterval(6, 10)}));
}

TEST(IntervalSet, SubtractedEverything) {
  IntervalSet a{TimeInterval(2, 5)};
  IntervalSet b{TimeInterval(0, 10)};
  EXPECT_TRUE(a.subtracted(b).empty());
}

TEST(IntervalSet, SubtractedNothing) {
  IntervalSet a{TimeInterval(2, 5)};
  IntervalSet b{TimeInterval(7, 9)};
  EXPECT_EQ(a.subtracted(b), a);
}

TEST(IntervalSet, SubtractedMultipleCuts) {
  IntervalSet a{TimeInterval(0, 20)};
  IntervalSet b{TimeInterval(2, 4), TimeInterval(6, 8), TimeInterval(15, 25)};
  EXPECT_EQ(a.subtracted(b), (IntervalSet{TimeInterval(0, 2), TimeInterval(4, 6),
                                          TimeInterval(8, 15)}));
}

TEST(IntervalSet, ToString) {
  IntervalSet s{TimeInterval(0, 2), TimeInterval(4, 5)};
  EXPECT_EQ(s.to_string(), "{[0, 2), [4, 5)}");
}

// Randomized law checks against brute-force tick membership.
class IntervalSetRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetRandomTest, SetAlgebraMatchesBruteForce) {
  util::Rng rng(GetParam());
  constexpr Tick kLimit = 40;

  auto random_set = [&rng]() {
    IntervalSet s;
    const int pieces = static_cast<int>(rng.uniform(0, 5));
    for (int i = 0; i < pieces; ++i) {
      const Tick start = rng.uniform(0, kLimit - 2);
      const Tick end = rng.uniform(start + 1, kLimit);
      s.insert(TimeInterval(start, end));
    }
    return s;
  };

  const IntervalSet a = random_set();
  const IntervalSet b = random_set();
  const IntervalSet u = a.unioned(b);
  const IntervalSet x = a.intersected(b);
  const IntervalSet d = a.subtracted(b);

  for (Tick t = -1; t <= kLimit; ++t) {
    EXPECT_EQ(u.contains(t), a.contains(t) || b.contains(t)) << "union t=" << t;
    EXPECT_EQ(x.contains(t), a.contains(t) && b.contains(t)) << "intersect t=" << t;
    EXPECT_EQ(d.contains(t), a.contains(t) && !b.contains(t)) << "subtract t=" << t;
  }

  // Canonical form: sorted, disjoint, positive gaps, non-empty members.
  for (const IntervalSet* s : {&u, &x, &d}) {
    const auto& ivs = s->intervals();
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      EXPECT_FALSE(ivs[i].empty());
      if (i > 0) {
        EXPECT_LT(ivs[i - 1].end(), ivs[i].start());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetRandomTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace rota
