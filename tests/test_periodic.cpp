#include "rota/admission/periodic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class PeriodicTest : public ::testing::Test {
 protected:
  Location l1{"pd-l1"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);

  ResourceSet supply(Tick until = 200) {
    ResourceSet s;
    s.add(4, TimeInterval(0, until), cpu1);
    return s;
  }

  /// 8 cpu (2 dedicated ticks) in a [s, s+4) window.
  DistributedComputation task(Tick s = 10) {
    auto gamma = ActorComputationBuilder("p.a", l1).evaluate().build();
    return DistributedComputation("ptask", {gamma}, s, s + 4);
  }
};

TEST_F(PeriodicTest, ExpansionShiftsWindows) {
  auto instances = expand_periodic(task(10), 20, 3);
  ASSERT_EQ(instances.size(), 3u);
  EXPECT_EQ(instances[0].name(), "ptask#0");
  EXPECT_EQ(instances[0].window(), TimeInterval(10, 14));
  EXPECT_EQ(instances[1].window(), TimeInterval(30, 34));
  EXPECT_EQ(instances[2].window(), TimeInterval(50, 54));
  EXPECT_EQ(instances[2].actors(), instances[0].actors());
}

TEST_F(PeriodicTest, ExpansionValidatesArguments) {
  EXPECT_THROW(expand_periodic(task(), 0, 3), std::invalid_argument);
  EXPECT_THROW(expand_periodic(task(), 5, 0), std::invalid_argument);
}

TEST_F(PeriodicTest, OverlappingInstancesAreLegal) {
  auto instances = expand_periodic(task(10), 2, 3);  // period < window length
  EXPECT_TRUE(instances[0].window().intersects(instances[1].window()));
}

TEST_F(PeriodicTest, AdmitsSustainableSeries) {
  RotaAdmissionController ctl(phi, supply());
  PeriodicAdmission r = admit_periodic(ctl, task(10), 20, 5, 0);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.plans.size(), 5u);
  EXPECT_EQ(ctl.ledger().admitted_count(), 5u);
  for (std::size_t k = 0; k < r.plans.size(); ++k) {
    EXPECT_LE(r.plans[k].finish, 14 + static_cast<Tick>(k) * 20);
  }
}

TEST_F(PeriodicTest, AllOrNothingRollsBackCleanly) {
  // Supply ends at t=50: instance 2 (window [50, 54)) cannot fit.
  RotaAdmissionController ctl(phi, supply(50));
  const std::size_t before = ctl.ledger().admitted_count();
  PeriodicAdmission r = admit_periodic(ctl, task(10), 20, 3, 0);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.failed_instance, 2u);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_TRUE(r.plans.empty());
  // Nothing stuck: the controller is exactly as found.
  EXPECT_EQ(ctl.ledger().admitted_count(), before);
  EXPECT_EQ(ctl.ledger().residual(), ctl.ledger().supply());
}

TEST_F(PeriodicTest, SeriesMustStartInTheFuture) {
  RotaAdmissionController ctl(phi, supply());
  EXPECT_THROW(admit_periodic(ctl, task(0), 20, 3, 0), std::invalid_argument);
  EXPECT_THROW(admit_periodic(ctl, task(5), 20, 3, 5), std::invalid_argument);
}

TEST_F(PeriodicTest, SustainableInstancesFindsTheBreakPoint) {
  // Supply to t=50 sustains exactly instances at 10, 30 (not 50).
  RotaAdmissionController ctl(phi, supply(50));
  EXPECT_EQ(sustainable_instances(ctl, task(10), 20, 10, 0), 2u);
  // Probing never mutates the controller.
  EXPECT_EQ(ctl.ledger().admitted_count(), 0u);
}

TEST_F(PeriodicTest, SustainableRespectsExistingCommitments) {
  RotaAdmissionController ctl(phi, supply(50));
  // Eat the first window's capacity.
  auto gamma = ActorComputationBuilder("hog.a", l1).evaluate(2).build();
  ASSERT_TRUE(
      ctl.request(DistributedComputation("hog", {gamma}, 10, 14), 0).accepted);
  EXPECT_EQ(sustainable_instances(ctl, task(10), 20, 10, 0), 0u);
}

TEST_F(PeriodicTest, DensePeriodSaturatesByRate) {
  // Window length 4 = period; each instance needs 8 of its window's 16:
  // two full series fit back to back, a third does not.
  RotaAdmissionController ctl(phi, supply(200));
  EXPECT_EQ(sustainable_instances(ctl, task(10), 4, 40, 0), 40u);
  ASSERT_TRUE(admit_periodic(ctl, task(10), 4, 20, 0).accepted);
  // Half of every window remains: a second series still sustains.
  EXPECT_EQ(sustainable_instances(ctl, task(10), 4, 20, 0), 20u);
  ASSERT_TRUE(admit_periodic(ctl, task(10), 4, 20, 0).accepted);
  // Now the windows are full.
  EXPECT_EQ(sustainable_instances(ctl, task(10), 4, 20, 0), 0u);
}

}  // namespace
}  // namespace rota
