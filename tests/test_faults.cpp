// FaultSchedule: construction, validation, generation, the retry backoff,
// and the scenario-DSL round trip.
#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/faults/schedule.hpp"
#include "rota/io/scenario.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace rota::faults {
namespace {

TEST(FaultSchedule, KeepsInsertionOrderAndPrints) {
  FaultSchedule s;
  s.crash(5, 0);
  s.partition(3, 0, 1);
  s.restart(9, 0, true);
  s.heal(12, 1, 0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.events()[0].to_string(), "crash n0 at 5");
  EXPECT_EQ(s.events()[1].to_string(), "partition n0|n1 at 3");
  EXPECT_EQ(s.events()[2].to_string(), "restart n0 at 9 recover");
  EXPECT_EQ(s.events()[3].to_string(), "heal n1|n0 at 12");
  EXPECT_NO_THROW(s.validate(2));
}

TEST(FaultSchedule, ValidateRejectsMalformedTimelines) {
  {
    FaultSchedule s;
    s.crash(5, 3);
    EXPECT_THROW(s.validate(2), std::invalid_argument);  // node out of range
  }
  {
    FaultSchedule s;
    s.partition(5, 1, 1);
    EXPECT_THROW(s.validate(2), std::invalid_argument);  // self-partition
  }
  {
    FaultSchedule s;
    s.crash(-1, 0);
    EXPECT_THROW(s.validate(2), std::invalid_argument);  // negative tick
  }
  {
    FaultSchedule s;
    s.restart(5, 0, true);
    EXPECT_THROW(s.validate(2), std::invalid_argument);  // restart w/o crash
  }
  {
    FaultSchedule s;
    s.crash(3, 0);
    s.crash(7, 0);
    EXPECT_THROW(s.validate(2), std::invalid_argument);  // double crash
  }
  {
    // Same-tick crash→restart bounce is legal: same-tick events apply in
    // schedule order.
    FaultSchedule s;
    s.crash(4, 0);
    s.restart(4, 0, false);
    EXPECT_NO_THROW(s.validate(1));
  }
}

TEST(FaultSchedule, GeneratedSchedulesAreSeededAndWellFormed) {
  const FaultProfile profile;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const FaultSchedule a = make_fault_schedule(rng_a, 4, 100, profile);
    const FaultSchedule b = make_fault_schedule(rng_b, 4, 100, profile);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_NO_THROW(a.validate(4)) << "seed " << seed;
  }
  // A saturated profile actually produces events.
  FaultProfile hot;
  hot.crash_rate = 1.0;
  hot.partition_rate = 1.0;
  util::Rng rng(7);
  EXPECT_FALSE(make_fault_schedule(rng, 3, 100, hot).empty());
}

TEST(RetryPolicy, BackoffDoublesUpToCapAndHonorsDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base = 2;
  policy.backoff_cap = 6;
  policy.jitter = 0;  // deterministic delays for the shape assertions
  util::Rng rng(1);

  // attempt 1 → delay 1 + 2; attempt 2 → 1 + 4; attempt 3 → 1 + 6 (capped).
  EXPECT_EQ(retry_at(policy, 1, 10, 1000, rng), Tick{13});
  EXPECT_EQ(retry_at(policy, 2, 10, 1000, rng), Tick{15});
  EXPECT_EQ(retry_at(policy, 3, 10, 1000, rng), Tick{17});
  // Attempt budget spent: the policy allows 4 submissions total.
  EXPECT_EQ(retry_at(policy, 4, 10, 1000, rng), std::nullopt);
  // A retry that would land at/after the deadline is dead on arrival.
  EXPECT_EQ(retry_at(policy, 1, 10, 13, rng), std::nullopt);
  EXPECT_NE(retry_at(policy, 1, 10, 14, rng), std::nullopt);
}

TEST(RetryPolicy, JitterIsSeededThroughTheClosedLoopClient) {
  RetryPolicy policy;
  policy.jitter = 3;
  ClosedLoopClient a(policy, 99);
  ClosedLoopClient b(policy, 99);
  for (int i = 0; i < 16; ++i) {
    const auto ta = a.next_attempt(1, i * 10, 100000);
    const auto tb = b.next_attempt(1, i * 10, 100000);
    ASSERT_TRUE(ta.has_value());
    EXPECT_EQ(ta, tb);
    EXPECT_GE(*ta, i * 10 + 1 + policy.backoff_base);
    EXPECT_LE(*ta, i * 10 + 1 + policy.backoff_base + policy.jitter);
  }
}

TEST(FaultDsl, RoundTripsThroughScenarioText) {
  FaultSchedule schedule;
  schedule.crash(5, 0);
  schedule.restart(9, 0, false);
  schedule.partition(3, 0, 1);
  schedule.heal(12, 0, 1);
  schedule.crash(20, 1);
  schedule.restart(20, 1, true);  // same-tick bounce survives the trip too

  Scenario scenario;
  scenario.nodes.push_back(ScenarioNode{"alpha", "east", 1});
  scenario.nodes.push_back(ScenarioNode{"beta", "west", 2});
  const std::vector<std::string> names = {"alpha", "beta"};
  scenario.faults = to_scenario_faults(schedule, names);

  const std::string text = scenario_to_string(scenario);
  const Scenario reparsed = parse_scenario_string(text);
  EXPECT_EQ(reparsed.faults, scenario.faults) << text;
  EXPECT_EQ(from_scenario_faults(reparsed.faults, names), schedule) << text;
}

TEST(FaultDsl, ParserRejectsBadFaultStatements) {
  const auto parse = [](const std::string& body) {
    return parse_scenario_string("node a east\nnode b west\n" + body + "\n");
  };
  EXPECT_THROW(parse("fault crash ghost 5"), ScenarioParseError);
  EXPECT_THROW(parse("fault partition a ghost 5"), ScenarioParseError);
  EXPECT_THROW(parse("fault partition a a 5"), ScenarioParseError);
  EXPECT_THROW(parse("fault restart a 5 maybe"), ScenarioParseError);
  EXPECT_THROW(parse("fault crash a -3"), ScenarioParseError);
  EXPECT_THROW(parse("fault meteor a 5"), ScenarioParseError);
  EXPECT_THROW(parse("fault crash a"), ScenarioParseError);
  EXPECT_NO_THROW(parse("fault crash a 5"));
  EXPECT_NO_THROW(parse("fault restart a 9 fresh"));
  EXPECT_NO_THROW(parse("fault partition a b 2"));
  EXPECT_NO_THROW(parse("fault heal a b 7"));
}

TEST(FaultDsl, ConversionRejectsUnknownNames) {
  FaultSchedule schedule;
  schedule.crash(1, 2);
  EXPECT_THROW(to_scenario_faults(schedule, {"a", "b"}), std::invalid_argument);

  ScenarioFault f;
  f.kind = "crash";
  f.a = "ghost";
  f.at = 1;
  EXPECT_THROW(from_scenario_faults({f}, {"a", "b"}), std::invalid_argument);
}

}  // namespace
}  // namespace rota::faults
