#include "rota/resource/step_function.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "rota/util/rng.hpp"

namespace rota {
namespace {

TEST(StepFunction, ZeroByDefault) {
  StepFunction f;
  EXPECT_TRUE(f.is_zero());
  EXPECT_EQ(f.value_at(0), 0);
  EXPECT_EQ(f.integral(), 0);
}

TEST(StepFunction, SingleSegment) {
  StepFunction f(TimeInterval(2, 6), 5);
  EXPECT_EQ(f.value_at(1), 0);
  EXPECT_EQ(f.value_at(2), 5);
  EXPECT_EQ(f.value_at(5), 5);
  EXPECT_EQ(f.value_at(6), 0);
  EXPECT_EQ(f.integral(), 20);
}

TEST(StepFunction, ZeroRateOrEmptyIntervalIsZeroFunction) {
  EXPECT_TRUE(StepFunction(TimeInterval(2, 6), 0).is_zero());
  EXPECT_TRUE(StepFunction(TimeInterval(), 5).is_zero());
}

TEST(StepFunction, PlusDisjoint) {
  StepFunction f(TimeInterval(0, 2), 3);
  StepFunction g(TimeInterval(4, 6), 7);
  StepFunction h = f.plus(g);
  EXPECT_EQ(h.value_at(1), 3);
  EXPECT_EQ(h.value_at(3), 0);
  EXPECT_EQ(h.value_at(5), 7);
  EXPECT_EQ(h.segments().size(), 2u);
}

TEST(StepFunction, PlusOverlappingAddsRates) {
  // The paper's simplification: {5}^(0,3) ∪ {5}^(0,5) = {10}^(0,3), {5}^(3,5)
  StepFunction f(TimeInterval(0, 3), 5);
  StepFunction g(TimeInterval(0, 5), 5);
  StepFunction h = f.plus(g);
  ASSERT_EQ(h.segments().size(), 2u);
  EXPECT_EQ(h.segments()[0], (Segment{TimeInterval(0, 3), 10}));
  EXPECT_EQ(h.segments()[1], (Segment{TimeInterval(3, 5), 5}));
}

TEST(StepFunction, MeetingEqualRatesMerge) {
  StepFunction f(TimeInterval(0, 3), 4);
  StepFunction g(TimeInterval(3, 7), 4);
  StepFunction h = f.plus(g);
  ASSERT_EQ(h.segments().size(), 1u);
  EXPECT_EQ(h.segments()[0], (Segment{TimeInterval(0, 7), 4}));
}

TEST(StepFunction, MinusProducesNegativeValues) {
  StepFunction f(TimeInterval(0, 4), 2);
  StepFunction g(TimeInterval(2, 6), 5);
  StepFunction h = f.minus(g);
  EXPECT_EQ(h.value_at(1), 2);
  EXPECT_EQ(h.value_at(3), -3);
  EXPECT_EQ(h.value_at(5), -5);
  EXPECT_EQ(h.min_value(), -5);
}

TEST(StepFunction, MinusSelfIsZero) {
  StepFunction f(TimeInterval(0, 4), 2);
  EXPECT_TRUE(f.minus(f).is_zero());
}

TEST(StepFunction, MinAndMax) {
  StepFunction f(TimeInterval(0, 4), 3);
  StepFunction g(TimeInterval(2, 6), 5);
  EXPECT_EQ(f.min(g).value_at(1), 0);  // g is 0 there, min is 0 → dropped
  EXPECT_EQ(f.min(g).value_at(3), 3);
  EXPECT_EQ(f.max(g).value_at(1), 3);
  EXPECT_EQ(f.max(g).value_at(3), 5);
  EXPECT_EQ(f.max(g).value_at(5), 5);
}

TEST(StepFunction, Restricted) {
  StepFunction f(TimeInterval(0, 10), 2);
  StepFunction r = f.restricted(TimeInterval(3, 5));
  EXPECT_EQ(r.value_at(2), 0);
  EXPECT_EQ(r.value_at(3), 2);
  EXPECT_EQ(r.value_at(4), 2);
  EXPECT_EQ(r.value_at(5), 0);
  EXPECT_EQ(r.integral(), 4);
}

TEST(StepFunction, ClampedNonnegative) {
  StepFunction f(TimeInterval(0, 4), 2);
  StepFunction g = f.minus(StepFunction(TimeInterval(2, 6), 5)).clamped_nonnegative();
  EXPECT_EQ(g.value_at(1), 2);
  EXPECT_EQ(g.value_at(3), 0);
  EXPECT_GE(g.min_value(), 0);
}

TEST(StepFunction, MinOverWindow) {
  StepFunction f(TimeInterval(0, 4), 3);
  f.add(TimeInterval(4, 8), 7);
  EXPECT_EQ(f.min_over(TimeInterval(0, 8)), 3);
  EXPECT_EQ(f.min_over(TimeInterval(4, 8)), 7);
  EXPECT_EQ(f.min_over(TimeInterval(2, 10)), 0);  // gap beyond 8
  EXPECT_EQ(f.min_over(TimeInterval(-5, 2)), 0);  // gap before 0
  EXPECT_EQ(f.min_over(TimeInterval()), 0);
}

TEST(StepFunction, IntegralOverWindow) {
  StepFunction f(TimeInterval(0, 4), 3);
  f.add(TimeInterval(6, 8), 5);
  EXPECT_EQ(f.integral(TimeInterval(0, 10)), 12 + 10);
  EXPECT_EQ(f.integral(TimeInterval(2, 7)), 6 + 5);
  EXPECT_EQ(f.integral(TimeInterval(4, 6)), 0);
}

TEST(StepFunction, Dominates) {
  StepFunction f(TimeInterval(0, 10), 5);
  StepFunction g(TimeInterval(2, 8), 3);
  EXPECT_TRUE(f.dominates(g));
  EXPECT_FALSE(g.dominates(f));
  EXPECT_TRUE(f.dominates(f));
  // More total quantity does not imply domination.
  StepFunction spike(TimeInterval(0, 1), 100);
  EXPECT_FALSE(spike.dominates(g));
}

TEST(StepFunction, Support) {
  StepFunction f(TimeInterval(0, 3), 2);
  f.add(TimeInterval(5, 7), 4);
  IntervalSet s = f.support();
  EXPECT_EQ(s, (IntervalSet{TimeInterval(0, 3), TimeInterval(5, 7)}));
}

TEST(StepFunction, WhereAtLeast) {
  StepFunction f(TimeInterval(0, 4), 3);
  f.add(TimeInterval(4, 8), 7);
  EXPECT_EQ(f.where_at_least(5, TimeInterval(0, 10)), IntervalSet(TimeInterval(4, 8)));
  EXPECT_EQ(f.where_at_least(1, TimeInterval(0, 10)), IntervalSet(TimeInterval(0, 8)));
  EXPECT_THROW(f.where_at_least(0, TimeInterval(0, 10)), std::invalid_argument);
}

TEST(StepFunction, EarliestCoverExactFit) {
  StepFunction f(TimeInterval(0, 10), 4);
  EXPECT_EQ(f.earliest_cover(TimeInterval(0, 10), 8), 2);   // two full ticks
  EXPECT_EQ(f.earliest_cover(TimeInterval(0, 10), 9), 3);   // partial third tick
  EXPECT_EQ(f.earliest_cover(TimeInterval(0, 10), 0), 0);
  EXPECT_EQ(f.earliest_cover(TimeInterval(3, 10), 4), 4);
}

TEST(StepFunction, EarliestCoverAcrossSegments) {
  StepFunction f(TimeInterval(0, 2), 1);
  f.add(TimeInterval(5, 10), 10);
  // 2 units by tick 2, then 10/tick from 5: quantity 12 reaches at 6.
  EXPECT_EQ(f.earliest_cover(TimeInterval(0, 10), 12), 6);
}

TEST(StepFunction, EarliestCoverInsufficient) {
  StepFunction f(TimeInterval(0, 3), 2);
  EXPECT_FALSE(f.earliest_cover(TimeInterval(0, 3), 7).has_value());
  EXPECT_FALSE(StepFunction().earliest_cover(TimeInterval(0, 100), 1).has_value());
}

TEST(StepFunction, EarliestCoverNegativeThrows) {
  StepFunction f(TimeInterval(0, 3), 2);
  EXPECT_THROW(f.earliest_cover(TimeInterval(0, 3), -1), std::invalid_argument);
}

TEST(StepFunction, LatestCoverStart) {
  StepFunction f(TimeInterval(0, 10), 4);
  EXPECT_EQ(f.latest_cover_start(TimeInterval(0, 10), 8), 8);
  EXPECT_EQ(f.latest_cover_start(TimeInterval(0, 10), 9), 7);  // partial leading tick
  EXPECT_EQ(f.latest_cover_start(TimeInterval(0, 10), 0), 10);
  EXPECT_FALSE(f.latest_cover_start(TimeInterval(0, 2), 9).has_value());
}

TEST(StepFunction, Shifted) {
  StepFunction f(TimeInterval(0, 3), 2);
  StepFunction g = f.shifted(5);
  EXPECT_EQ(g.value_at(4), 0);
  EXPECT_EQ(g.value_at(5), 2);
  EXPECT_EQ(g.value_at(7), 2);
  EXPECT_EQ(g.value_at(8), 0);
}

TEST(StepFunction, ToString) {
  EXPECT_EQ(StepFunction().to_string(), "0");
  StepFunction f(TimeInterval(0, 3), 2);
  EXPECT_EQ(f.to_string(), "2@[0, 3)");
}

TEST(StepFunction, CanonicalFormInvariants) {
  StepFunction f;
  f.add(TimeInterval(0, 5), 2);
  f.add(TimeInterval(5, 9), 2);   // merges
  f.add(TimeInterval(3, 4), -2);  // punches a zero hole
  const auto& segs = f.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_NE(segs[i].value, 0);
    EXPECT_FALSE(segs[i].interval.empty());
    if (i > 0) {
      EXPECT_LE(segs[i - 1].interval.end(), segs[i].interval.start());
      if (segs[i - 1].interval.end() == segs[i].interval.start()) {
        EXPECT_NE(segs[i - 1].value, segs[i].value);
      }
    }
  }
  EXPECT_EQ(f.value_at(3), 0);
  EXPECT_EQ(f.value_at(2), 2);
  EXPECT_EQ(f.value_at(4), 2);
}

TEST(StepFunctionCoarsen, BucketTakesTheMinimum) {
  StepFunction f;
  f.add(TimeInterval(0, 3), 5);
  f.add(TimeInterval(3, 8), 2);
  StepFunction c = f.coarsened(4);
  // Bucket [0,4): values 5,5,5,2 → 2. Bucket [4,8): all 2 → 2.
  EXPECT_EQ(c.value_at(0), 2);
  EXPECT_EQ(c.value_at(5), 2);
  EXPECT_EQ(c.value_at(8), 0);
}

TEST(StepFunctionCoarsen, GapsZeroTheirBucket) {
  StepFunction f;
  f.add(TimeInterval(0, 3), 5);
  f.add(TimeInterval(5, 8), 5);  // gap at [3,5) straddles both buckets
  StepFunction c = f.coarsened(4);
  EXPECT_TRUE(c.is_zero());
}

TEST(StepFunctionCoarsen, FactorOneIsIdentity) {
  StepFunction f(TimeInterval(2, 9), 3);
  EXPECT_EQ(f.coarsened(1), f);
}

TEST(StepFunctionCoarsen, InvalidFactorThrows) {
  StepFunction f(TimeInterval(0, 4), 3);
  EXPECT_THROW(f.coarsened(0), std::invalid_argument);
  EXPECT_THROW(f.coarsened(-2), std::invalid_argument);
}

TEST(StepFunctionCoarsen, NegativeTimeBucketsAlign) {
  StepFunction f(TimeInterval(-8, -1), 4);
  StepFunction c = f.coarsened(4);
  EXPECT_EQ(c.value_at(-5), 4);   // bucket [-8,-4) fully covered
  EXPECT_EQ(c.value_at(-2), 0);   // bucket [-4,0) only partially covered
}

TEST(StepFunctionCoarsen, NeverExceedsOriginal) {
  util::Rng rng(424242);
  for (int round = 0; round < 30; ++round) {
    StepFunction f;
    const int pieces = static_cast<int>(rng.uniform(1, 5));
    for (int i = 0; i < pieces; ++i) {
      const Tick s = rng.uniform(0, 40);
      f.add(TimeInterval(s, s + rng.uniform(1, 12)), rng.uniform(1, 9));
    }
    const Tick factor = rng.uniform(2, 7);
    const StepFunction c = f.coarsened(factor);
    EXPECT_TRUE(f.dominates(c)) << "factor=" << factor;
    // Aligned fully-covered buckets are preserved exactly.
    for (Tick t = 0; t < 60; ++t) {
      EXPECT_LE(c.value_at(t), f.value_at(t)) << "t=" << t;
    }
  }
}

// ------------------------------------------------------------------
// Randomized equivalence with a brute-force dense representation.
// ------------------------------------------------------------------

class StepFunctionRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionRandomTest, AlgebraMatchesBruteForce) {
  util::Rng rng(GetParam());
  constexpr Tick kLimit = 30;

  auto random_fn = [&rng]() {
    StepFunction f;
    const int pieces = static_cast<int>(rng.uniform(0, 4));
    for (int i = 0; i < pieces; ++i) {
      const Tick start = rng.uniform(0, kLimit - 2);
      const Tick end = rng.uniform(start + 1, kLimit);
      f.add(TimeInterval(start, end), rng.uniform(1, 9));
    }
    return f;
  };

  const StepFunction f = random_fn();
  const StepFunction g = random_fn();

  auto dense = [](const StepFunction& fn) {
    std::map<Tick, Rate> d;
    for (Tick t = -2; t <= kLimit + 2; ++t) d[t] = fn.value_at(t);
    return d;
  };

  const auto df = dense(f);
  const auto dg = dense(g);

  const StepFunction sum = f.plus(g);
  const StepFunction diff = f.minus(g);
  const StepFunction lo = f.min(g);
  const StepFunction hi = f.max(g);

  for (Tick t = -2; t <= kLimit + 2; ++t) {
    EXPECT_EQ(sum.value_at(t), df.at(t) + dg.at(t)) << "plus t=" << t;
    EXPECT_EQ(diff.value_at(t), df.at(t) - dg.at(t)) << "minus t=" << t;
    EXPECT_EQ(lo.value_at(t), std::min(df.at(t), dg.at(t))) << "min t=" << t;
    EXPECT_EQ(hi.value_at(t), std::max(df.at(t), dg.at(t))) << "max t=" << t;
  }

  // Integral equals per-tick sum.
  Quantity brute_integral = 0;
  for (Tick t = 0; t <= kLimit; ++t) brute_integral += df.at(t);
  EXPECT_EQ(f.integral(TimeInterval(0, kLimit + 1)), brute_integral);

  // Commutativity.
  EXPECT_EQ(f.plus(g), g.plus(f));
  EXPECT_EQ(f.min(g), g.min(f));
  EXPECT_EQ(f.max(g), g.max(f));

  // earliest_cover agrees with a brute-force scan.
  const Quantity target = rng.uniform(1, 40);
  const TimeInterval window(0, kLimit);
  auto fast = f.earliest_cover(window, target);
  Quantity acc = 0;
  std::optional<Tick> brute;
  for (Tick t = window.start(); t < window.end(); ++t) {
    acc += df.at(t);
    if (acc >= target) {
      brute = t + 1;
      break;
    }
  }
  EXPECT_EQ(fast, brute) << "target=" << target;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionRandomTest,
                         ::testing::Range<std::uint64_t>(1, 49));

// ---------------------------------------------------------------------------
// Pinned half-open [start, end) edge semantics. These lock in the exact
// boundary behavior of value_at, normalize's canonical form, and combine's
// cursor advance over meeting segments, so a refactor of the merge walk
// cannot silently shift a boundary by one tick.

TEST(StepFunctionEdges, ValueAtEverySegmentBoundary) {
  // Two segments with a gap: [2,4)@3, gap [4,6), [6,8)@5.
  StepFunction f(TimeInterval(2, 4), 3);
  f.add(TimeInterval(6, 8), 5);
  EXPECT_EQ(f.value_at(1), 0);   // before support
  EXPECT_EQ(f.value_at(2), 3);   // closed at segment start
  EXPECT_EQ(f.value_at(3), 3);   // interior
  EXPECT_EQ(f.value_at(4), 0);   // open at segment end
  EXPECT_EQ(f.value_at(5), 0);   // gap interior
  EXPECT_EQ(f.value_at(6), 5);   // next segment's start
  EXPECT_EQ(f.value_at(7), 5);
  EXPECT_EQ(f.value_at(8), 0);   // open at final end
  EXPECT_EQ(f.value_at(100), 0);
}

TEST(StepFunctionEdges, ValueAtBoundaryBetweenTouchingSegments) {
  // Touching segments of different value: the tick at the boundary belongs
  // to the *later* segment (half-open intervals).
  const StepFunction g =
      StepFunction(TimeInterval(0, 3), 1).plus(StepFunction(TimeInterval(3, 6), 4));
  ASSERT_EQ(g.segments().size(), 2u);
  EXPECT_EQ(g.value_at(2), 1);
  EXPECT_EQ(g.value_at(3), 4);  // boundary tick reads the later segment

  // Touching segments of equal value are a single canonical segment, so the
  // boundary is interior and invisible.
  const StepFunction h =
      StepFunction(TimeInterval(0, 3), 1).plus(StepFunction(TimeInterval(3, 6), 1));
  ASSERT_EQ(h.segments().size(), 1u);
  EXPECT_EQ(h.value_at(3), 1);
}

TEST(StepFunctionEdges, NormalizeDropsZeroStretchesFromCombine) {
  // [0,6)@2 minus [2,4)@2 leaves a true zero stretch in the middle: the
  // canonical form stores no zero-value segment, so the support splits.
  StepFunction f(TimeInterval(0, 6), 2);
  StepFunction h = f.minus(StepFunction(TimeInterval(2, 4), 2));
  ASSERT_EQ(h.segments().size(), 2u);
  EXPECT_EQ(h.segments()[0], (Segment{TimeInterval(0, 2), 2}));
  EXPECT_EQ(h.segments()[1], (Segment{TimeInterval(4, 6), 2}));
  EXPECT_EQ(h.value_at(2), 0);
  EXPECT_EQ(h.value_at(3), 0);
  EXPECT_EQ(h.value_at(4), 2);
  // Subtracting everything yields the zero function, not a zero segment.
  EXPECT_TRUE(f.minus(f).segments().empty());
}

TEST(StepFunctionEdges, AddOfZeroRateLeavesFunctionUntouched) {
  StepFunction f(TimeInterval(0, 4), 3);
  const StepFunction before = f;
  f.add(TimeInterval(1, 3), 0);
  EXPECT_EQ(f, before);
  f.add(TimeInterval(), 7);  // empty interval contributes nothing
  EXPECT_EQ(f, before);
}

TEST(StepFunctionEdges, CombineWhereOneSegmentMeetsTheOther) {
  // a's segment *meets* b's (a.end == b.start): the cursor advance must hand
  // the boundary tick to b without overlap or gap.
  const StepFunction a(TimeInterval(0, 5), 2);
  const StepFunction b(TimeInterval(5, 9), 3);
  const StepFunction sum = a.plus(b);
  ASSERT_EQ(sum.segments().size(), 2u);
  EXPECT_EQ(sum.segments()[0], (Segment{TimeInterval(0, 5), 2}));
  EXPECT_EQ(sum.segments()[1], (Segment{TimeInterval(5, 9), 3}));
  EXPECT_EQ(sum.value_at(4), 2);
  EXPECT_EQ(sum.value_at(5), 3);
  EXPECT_EQ(sum.integral(), a.integral() + b.integral());

  // Same shape through min/max (op(0,0)==0 family).
  EXPECT_TRUE(a.min(b).is_zero());  // disjoint supports: min is 0 everywhere
  const StepFunction mx = a.max(b);
  EXPECT_EQ(mx.value_at(4), 2);
  EXPECT_EQ(mx.value_at(5), 3);

  // And reversed operand order must commute.
  EXPECT_EQ(b.plus(a), sum);
  EXPECT_EQ(b.max(a), mx);
}

TEST(StepFunctionEdges, CombineMeetingChainAgainstBruteForce) {
  // A chain of meeting segments in one operand, a straddling segment in the
  // other — every boundary checked pointwise against value_at.
  StepFunction a = StepFunction(TimeInterval(0, 3), 1)
                       .plus(StepFunction(TimeInterval(3, 6), 4))
                       .plus(StepFunction(TimeInterval(6, 9), 1));
  StepFunction b(TimeInterval(2, 7), 10);
  for (const auto* op : {"plus", "minus", "min", "max"}) {
    StepFunction c = op == std::string("plus")    ? a.plus(b)
                     : op == std::string("minus") ? a.minus(b)
                     : op == std::string("min")   ? a.min(b)
                                                  : a.max(b);
    for (Tick t = -1; t <= 10; ++t) {
      const Rate va = a.value_at(t), vb = b.value_at(t);
      const Rate expect = op == std::string("plus")    ? va + vb
                          : op == std::string("minus") ? va - vb
                          : op == std::string("min")   ? std::min(va, vb)
                                                       : std::max(va, vb);
      EXPECT_EQ(c.value_at(t), expect) << op << " at t=" << t;
    }
  }
}

TEST(StepFunctionEdges, RestrictedAtExactSegmentBoundaries) {
  StepFunction f = StepFunction(TimeInterval(0, 4), 2).plus(StepFunction(TimeInterval(4, 8), 5));
  const StepFunction r = f.restricted(TimeInterval(4, 8));
  ASSERT_EQ(r.segments().size(), 1u);
  EXPECT_EQ(r.segments()[0], (Segment{TimeInterval(4, 8), 5}));
  const StepFunction r2 = f.restricted(TimeInterval(2, 4));
  ASSERT_EQ(r2.segments().size(), 1u);
  EXPECT_EQ(r2.segments()[0], (Segment{TimeInterval(2, 4), 2}));
  EXPECT_TRUE(f.restricted(TimeInterval(8, 12)).is_zero());
}

}  // namespace
}  // namespace rota
