// The transport spine: versioned wire codec round-trips, QueueTransport
// semantics, and SocketTransport over real unix sockets (handshake, auth
// refusal, message flow, backlog-until-reachable, clean close).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rota/net/socket_transport.hpp"
#include "rota/net/transport.hpp"
#include "rota/net/wire.hpp"

namespace rota::net {
namespace {

using cluster::Message;
using cluster::MsgKind;
using cluster::SupplyDigest;

Message probe_message() {
  Message m;
  m.kind = MsgKind::kProbe;
  m.from = 0;
  m.to = 1;
  m.job = 42;
  m.work.actor = "hot-actor";
  m.work.home = Location("wire-l1");
  m.work.chunk_weights = {3, 5, 2};
  m.work.state_size = 7;
  m.work.earliest_start = 10;
  m.work.deadline = 60;
  return m;
}

Message digest_message() {
  Message m;
  m.kind = MsgKind::kDigest;
  m.from = 2;
  m.to = 0;
  m.work.chunk_weights = {1};  // decode requires a work section; content moot
  m.digest.site = Location("wire-l2");
  m.digest.revision = 9;
  m.digest.as_of = 33;
  m.digest.free.add(4, TimeInterval(0, 100),
                    LocatedType::node(ResourceKind::kCpu, Location("wire-l2")));
  m.digest.free.add(2, TimeInterval(5, 50),
                    LocatedType::link(ResourceKind::kNetwork, Location("wire-l2"),
                                      Location("wire-l1")));
  return m;
}

TEST(WireCodec, ProbeRoundTrips) {
  const Message m = probe_message();
  const std::string payload = encode_message(m);
  EXPECT_TRUE(is_message_payload(payload));
  EXPECT_EQ(decode_message(payload), m);
}

TEST(WireCodec, DigestWithTermsRoundTrips) {
  const Message m = digest_message();
  EXPECT_EQ(decode_message(encode_message(m)), m);
}

TEST(WireCodec, EveryKindAndNoteRoundTrips) {
  for (const MsgKind kind :
       {MsgKind::kProbe, MsgKind::kOffer, MsgKind::kNack, MsgKind::kClaim,
        MsgKind::kClaimAck, MsgKind::kClaimReject, MsgKind::kDigest}) {
    Message m = probe_message();
    m.kind = kind;
    m.finish = 55;
    m.note = "residual-moved";
    EXPECT_EQ(decode_message(encode_message(m)), m)
        << cluster::msg_kind_name(kind);
  }
}

TEST(WireCodec, NowhereLocationRoundTripsWithoutMintingAnId) {
  Message m = probe_message();
  m.work.home = Location();  // the interned id-0 "nowhere" location
  const Message back = decode_message(encode_message(m));
  EXPECT_EQ(back.work.home.id(), 0u);
  EXPECT_EQ(back, m);
}

TEST(WireCodec, MalformedPayloadsThrow) {
  EXPECT_THROW(decode_message(""), CodecError);
  EXPECT_THROW(decode_message("rotamsg"), CodecError);
  // Version from the future.
  EXPECT_THROW(decode_message("rotamsg 2 probe 0 1 42 0\n"
                              "work a - 1 0 10 1 1\n"
                              "digest - 0 0 0\n"),
               CodecError);
  // Announced chunk count disagrees with the payload.
  EXPECT_THROW(decode_message("rotamsg 1 probe 0 1 42 0\n"
                              "work a - 1 0 10 3 1\n"
                              "digest - 0 0 0\n"),
               CodecError);
  // Term outside its digest's announced count.
  EXPECT_THROW(decode_message("rotamsg 1 probe 0 1 42 0\n"
                              "work a - 1 0 10 1 1\n"
                              "digest - 0 0 0\n"
                              "term cpu x x 1 0 10\n"),
               CodecError);
  // Missing sections.
  EXPECT_THROW(decode_message("rotamsg 1 probe 0 1 42 0\n"), CodecError);
  // A note that is not a single line refuses to encode.
  Message m = probe_message();
  m.note = "two\nlines";
  EXPECT_THROW(encode_message(m), CodecError);
}

TEST(WireCodec, HelloRoundTripsAndValidates) {
  const Hello h{3, "sesame"};
  const std::string payload = encode_hello(h);
  EXPECT_TRUE(is_hello_payload(payload));
  EXPECT_EQ(decode_hello(payload), h);

  const Hello open{7, ""};
  EXPECT_EQ(decode_hello(encode_hello(open)), open);

  EXPECT_THROW(decode_hello("hello 1 3"), CodecError);
  EXPECT_THROW(decode_hello("hello 2 3 tok"), CodecError);
  EXPECT_THROW(encode_hello(Hello{1, "has space"}), CodecError);
}

TEST(QueueTransport, StagesSendsAndDrainsInbox) {
  QueueTransport t(/*local=*/4);
  EXPECT_EQ(t.local(), 4u);
  t.set_now(12);
  EXPECT_EQ(t.now(), 12);

  t.send(probe_message());
  t.send(digest_message());
  EXPECT_TRUE(t.receive().empty());
  const std::vector<Message> sent = t.drain_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].kind, MsgKind::kProbe);
  EXPECT_TRUE(t.drain_sent().empty());

  t.deliver(probe_message());
  const std::vector<Message> got = t.receive();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], probe_message());
  EXPECT_TRUE(t.receive().empty());

  t.send(probe_message());
  t.drop_pending();
  EXPECT_TRUE(t.drain_sent().empty());
}

std::string temp_socket_path(const char* tag) {
  return "/tmp/rota_transport_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Polls receive() until `n` messages arrived or ~2s elapsed.
std::vector<Message> await_messages(SocketTransport& t, std::size_t n) {
  std::vector<Message> got;
  for (int spin = 0; spin < 200 && got.size() < n; ++spin) {
    for (Message& m : t.receive()) got.push_back(std::move(m));
    if (got.size() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return got;
}

TEST(SocketTransport, DeliversMessagesBetweenPeersOverUnixSockets) {
  const std::string path_a = temp_socket_path("a");
  const std::string path_b = temp_socket_path("b");

  SocketTransportConfig ca;
  ca.local = 0;
  ca.listen = "unix:" + path_a;
  ca.peers[1] = "unix:" + path_b;
  SocketTransportConfig cb;
  cb.local = 1;
  cb.listen = "unix:" + path_b;
  cb.peers[0] = "unix:" + path_a;

  SocketTransport a(ca);
  SocketTransport b(cb);

  Message probe = probe_message();  // 0 -> 1
  a.send(probe);
  Message reply = probe_message();
  reply.kind = MsgKind::kOffer;
  reply.from = 1;
  reply.to = 0;
  reply.finish = 44;
  b.send(reply);

  const std::vector<Message> at_b = await_messages(b, 1);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], probe);
  const std::vector<Message> at_a = await_messages(a, 1);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], reply);

  a.close();
  b.close();
}

TEST(SocketTransport, SharedSecretAdmitsMatchAndRefusesMismatch) {
  const std::string path = temp_socket_path("auth");

  SocketTransportConfig listener;
  listener.local = 0;
  listener.listen = "unix:" + path;
  listener.secret = "sesame";
  SocketTransport srv(listener);

  // Matching secret: messages flow.
  SocketTransportConfig good;
  good.local = 1;
  good.peers[0] = "unix:" + path;
  good.secret = "sesame";
  SocketTransport ok_peer(good);
  Message hello_probe = probe_message();
  hello_probe.from = 1;
  hello_probe.to = 0;
  ok_peer.send(hello_probe);
  EXPECT_EQ(await_messages(srv, 1).size(), 1u);

  // Wrong secret: the hello is answered with an error and hung up on; the
  // message is dropped, never delivered.
  SocketTransportConfig bad;
  bad.local = 2;
  bad.peers[0] = "unix:" + path;
  bad.secret = "wrong";
  bad.connect_timeout_ms = 200;
  SocketTransport bad_peer(bad);
  Message m = probe_message();
  m.from = 2;
  m.to = 0;
  bad_peer.send(m);
  EXPECT_TRUE(await_messages(srv, 1).empty());

  ok_peer.close();
  bad_peer.close();
  srv.close();
}

// Daemons come up in some order: frames sent before the peer's listener is
// bound wait in the bounded backlog and flush, in order, on the reconnect
// the next send triggers. A one-shot probe round must not silently lose its
// probes to a startup race.
TEST(SocketTransport, BacklogSentBeforeThePeerBindsFlushesOnReconnect) {
  const std::string path = temp_socket_path("late_bind");
  SocketTransportConfig c;
  c.local = 0;
  c.peers[1] = "unix:" + path;
  c.connect_timeout_ms = 200;
  c.reconnect_backoff_ms = 25;
  SocketTransport sender(c);

  Message first = probe_message();
  first.job = 1;
  sender.send(first);  // no listener yet: queued, and the backoff starts

  SocketTransportConfig l;
  l.local = 1;
  l.listen = "unix:" + path;
  SocketTransport receiver(l);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // past backoff
  Message second = probe_message();
  second.job = 2;
  sender.send(second);  // reconnects, flushes the backlog, then sends

  const std::vector<Message> got = await_messages(receiver, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].job, 1u);
  EXPECT_EQ(got[1].job, 2u);
  sender.close();
  receiver.close();
}

TEST(SocketTransport, UnreachablePeerDropsInsteadOfBlocking) {
  SocketTransportConfig c;
  c.local = 0;
  c.peers[1] = "unix:/tmp/rota_transport_test_nobody_home.sock";
  c.connect_timeout_ms = 100;
  SocketTransport t(c);

  const auto start = std::chrono::steady_clock::now();
  t.send(probe_message());  // no listener: dropped
  Message unknown = probe_message();
  unknown.to = 9;  // never configured: dropped
  t.send(unknown);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
  EXPECT_TRUE(t.receive().empty());
  t.close();
}

TEST(SocketTransport, NowAdvancesOnTheConfiguredTick) {
  SocketTransportConfig c;
  c.local = 0;
  c.tick_ms = 5;
  SocketTransport t(c);
  const Tick before = t.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_GE(t.now(), before + 4);
  t.close();
}

TEST(SocketTransport, CloseIsIdempotentAndStopsDelivery) {
  const std::string path = temp_socket_path("close");
  SocketTransportConfig c;
  c.local = 0;
  c.listen = "unix:" + path;
  SocketTransport t(c);
  t.close();
  t.close();
  EXPECT_TRUE(t.receive().empty());
}

}  // namespace
}  // namespace rota::net
