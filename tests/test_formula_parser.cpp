#include "rota/io/formula_parser.hpp"

#include <gtest/gtest.h>

#include "rota/logic/model_checker.hpp"

namespace rota {
namespace {

class FormulaParserTest : public ::testing::Test {
 protected:
  CostModel phi;
  Scenario scenario = parse_scenario_string(R"(
supply cpu l1 4 0 60
computation job1 0 10
  actor a l1
    evaluate 1
end
computation huge 0 10
  actor b l1
    evaluate 20
end
)");
};

TEST_F(FormulaParserTest, Atoms) {
  EXPECT_EQ(parse_formula("true", scenario, phi)->to_string(), "true");
  EXPECT_EQ(parse_formula("false", scenario, phi)->to_string(), "false");
}

TEST_F(FormulaParserTest, WhitespaceInsensitive) {
  EXPECT_EQ(parse_formula("  true  ", scenario, phi)->to_string(), "true");
  EXPECT_EQ(parse_formula("! \t false", scenario, phi)->to_string(), "!(false)");
}

TEST_F(FormulaParserTest, UnaryOperators) {
  EXPECT_EQ(parse_formula("!true", scenario, phi)->to_string(), "!(true)");
  EXPECT_EQ(parse_formula("<>true", scenario, phi)->to_string(), "<>(true)");
  EXPECT_EQ(parse_formula("[]false", scenario, phi)->to_string(), "[](false)");
  EXPECT_EQ(parse_formula("![]<>true", scenario, phi)->size(), 4u);
}

TEST_F(FormulaParserTest, Parentheses) {
  EXPECT_EQ(parse_formula("((true))", scenario, phi)->to_string(), "true");
  EXPECT_EQ(parse_formula("!(<>(false))", scenario, phi)->to_string(),
            "!(<>(false))");
}

TEST_F(FormulaParserTest, SatisfyResolvesComputation) {
  FormulaPtr psi = parse_formula("satisfy(job1)", scenario, phi);
  const auto* node = std::get_if<SatisfyConcurrent>(&psi->node());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->rho.name(), "job1");
  EXPECT_EQ(node->rho.window(), TimeInterval(0, 10));
}

TEST_F(FormulaParserTest, SatisfyWindowOverrides) {
  const auto* by = std::get_if<SatisfyConcurrent>(
      &parse_formula("satisfy(job1 by 15)", scenario, phi)->node());
  ASSERT_NE(by, nullptr);
  EXPECT_EQ(by->rho.window(), TimeInterval(0, 15));

  const auto* both = std::get_if<SatisfyConcurrent>(
      &parse_formula("satisfy(job1 from 3 by 15)", scenario, phi)->node());
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(both->rho.window(), TimeInterval(3, 15));
}

TEST_F(FormulaParserTest, ParsedFormulasModelCheck) {
  // Idle path over the scenario supply: job1 (9 cpu of the 40 in its
  // window) fits; huge (160 cpu, its (0,10) window holds 40) does not.
  ComputationPath idle(SystemState(scenario.supply, 0));
  for (int i = 0; i < 20; ++i) idle.apply(TickStep{});
  ModelChecker mc(idle);
  EXPECT_TRUE(mc.satisfies(parse_formula("satisfy(job1)", scenario, phi), 0));
  EXPECT_FALSE(mc.satisfies(parse_formula("satisfy(huge)", scenario, phi), 0));
  EXPECT_TRUE(mc.satisfies(parse_formula("!satisfy(huge)", scenario, phi), 0));
  EXPECT_TRUE(mc.satisfies(parse_formula("[] !satisfy(huge)", scenario, phi), 0));
  EXPECT_TRUE(mc.satisfies(parse_formula("<> satisfy(job1)", scenario, phi), 0));
  // Extending huge's deadline into the supply's tail flips the verdict:
  // (0, 50) holds 200 cpu >= 160.
  EXPECT_TRUE(mc.satisfies(parse_formula("satisfy(huge by 50)", scenario, phi), 0));
}

void expect_parse_error(const std::string& text, const Scenario& scenario,
                        const CostModel& phi) {
  EXPECT_THROW(parse_formula(text, scenario, phi), FormulaParseError) << text;
}

TEST_F(FormulaParserTest, Errors) {
  expect_parse_error("", scenario, phi);
  expect_parse_error("maybe", scenario, phi);
  expect_parse_error("truex", scenario, phi);
  expect_parse_error("true false", scenario, phi);
  expect_parse_error("(true", scenario, phi);
  expect_parse_error("!", scenario, phi);
  expect_parse_error("satisfy", scenario, phi);
  expect_parse_error("satisfy()", scenario, phi);
  expect_parse_error("satisfy(ghost)", scenario, phi);
  expect_parse_error("satisfy(job1 by)", scenario, phi);
  expect_parse_error("satisfy(job1 by x)", scenario, phi);
  expect_parse_error("satisfy(job1 from 9 by 3)", scenario, phi);  // empty window
  expect_parse_error("satisfy(job1) extra", scenario, phi);
}

TEST_F(FormulaParserTest, ErrorsCarryPositions) {
  try {
    parse_formula("<> satisfy(ghost)", scenario, phi);
    FAIL() << "expected a parse error";
  } catch (const FormulaParseError& e) {
    EXPECT_EQ(e.position(), 11u);  // where 'ghost' begins
  }
}

}  // namespace
}  // namespace rota
