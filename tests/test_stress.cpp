// Scale smoke tests: not micro-correctness (the rest of the suite does
// that) but "does the system stay sane and finish promptly at two orders of
// magnitude above the other tests' sizes". Each test has a generous but
// real time budget via the harness default; sizes are tuned to run in well
// under a second each in release builds.
#include <gtest/gtest.h>

#include "rota/admission/baselines.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

TEST(Stress, ThousandAdmissionRequests) {
  WorkloadConfig config;
  config.seed = 31337;
  config.num_locations = 6;
  config.cpu_rate = 12;
  config.network_rate = 12;
  config.mean_interarrival = 3.0;
  config.laxity = 2.0;
  const Tick horizon = 4000;

  WorkloadGenerator gen(config, CostModel());
  RotaStrategy rota(gen.phi(), gen.base_supply(TimeInterval(0, horizon)));

  auto arrivals = gen.make_arrivals(horizon * 3 / 4);
  ASSERT_GT(arrivals.size(), 700u);
  std::size_t accepted = 0;
  for (const Arrival& a : arrivals) {
    if (rota.request(a.computation, a.at).accepted) ++accepted;
  }
  // Sanity: the controller neither collapses to reject-all nor over-admits.
  EXPECT_GT(accepted, arrivals.size() / 4);
  EXPECT_LE(accepted, arrivals.size());
}

TEST(Stress, LongSimulationWithChurnStaysSound) {
  WorkloadConfig config;
  config.seed = 31338;
  config.num_locations = 5;
  config.cpu_rate = 2;
  config.network_rate = 4;
  config.mean_interarrival = 6.0;
  config.laxity = 2.2;
  const Tick horizon = 5000;

  WorkloadGenerator gen(config, CostModel());
  const ResourceSet base = gen.base_supply(TimeInterval(0, horizon));
  const ChurnTrace churn = gen.make_churn(horizon, 0.3, 60.0, 8);

  RotaAdmissionController ctl(gen.phi(), base);
  Simulator sim(base, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_churn(churn);

  std::size_t next_join = 0;
  std::size_t admitted = 0;
  for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
    while (next_join < churn.size() && churn.events()[next_join].at <= a.at) {
      ResourceSet joined;
      joined.add(churn.events()[next_join].term);
      ctl.on_join(joined);
      ++next_join;
    }
    AdmissionDecision d = ctl.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++admitted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation),
                           std::move(d.plan));
  }
  ASSERT_GT(admitted, 100u);
  SimReport report = sim.run(horizon);
  EXPECT_EQ(report.missed(), 0u);
}

TEST(Stress, HeavilyFragmentedResidualStaysCanonical) {
  // Thousands of slivers of supply; the residual's term count must stay
  // bounded by the structure (no duplicate/zero segments accumulate).
  Location l("stress-frag");
  ResourceSet supply;
  for (int i = 0; i < 3000; ++i) {
    supply.add(1 + i % 3, TimeInterval(i * 2, i * 2 + 3), LocatedType::cpu(l));
  }
  const std::size_t before = supply.term_count();
  EXPECT_LE(before, 6001u);
  for (const auto& term : supply.terms()) {
    EXPECT_GT(term.rate(), 0);
    EXPECT_FALSE(term.interval().empty());
  }
  // Round-trip through complement: (supply \ half) ∪ half == supply.
  ResourceSet half;
  for (int i = 0; i < 3000; i += 2) {
    half.add(1, TimeInterval(i * 2, i * 2 + 2), LocatedType::cpu(l));
  }
  auto rest = supply.relative_complement(half);
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->unioned(half), supply);
}

TEST(Stress, DeepPathModelChecking) {
  Location l("stress-path");
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 3000), LocatedType::cpu(l));
  ComputationPath path(SystemState(supply, 0));
  for (int i = 0; i < 2000; ++i) path.apply(TickStep{});

  ModelChecker mc(path);
  DemandSet d;
  d.add(LocatedType::cpu(l), 4);
  FormulaPtr psi =
      f_always(f_satisfy(SimpleRequirement(d, TimeInterval(0, 3000))));
  EXPECT_TRUE(mc.satisfies(psi, 0));
}

TEST(Stress, WideConcurrentComputation) {
  // One computation with 200 actors across 8 nodes plans in one piece.
  WorkloadConfig config;
  config.seed = 31339;
  config.num_locations = 8;
  config.cpu_rate = 50;
  config.network_rate = 50;
  config.actors_min = config.actors_max = 200;
  config.actions_min = 2;
  config.actions_max = 4;
  config.laxity = 4.0;
  WorkloadGenerator gen(config, CostModel());
  DistributedComputation big = gen.make_computation(0);
  ASSERT_EQ(big.actors().size(), 200u);
  auto plan = plan_concurrent(gen.base_supply(TimeInterval(0, 5000)),
                              make_concurrent_requirement(gen.phi(), big),
                              PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->finish, big.deadline());
}

}  // namespace
}  // namespace rota
