// The batched admission pipeline must be indistinguishable, decision for
// decision, from the sequential FCFS controller: same accept set, same
// plans, same rejection reasons, same final ledger — for any workload, any
// planning policy, and any concurrency.
#include "rota/runtime/batch_controller.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

std::vector<BatchRequest> make_requests(WorkloadConfig config, Tick horizon,
                                        const CostModel& phi) {
  WorkloadGenerator gen(config, phi);
  std::vector<BatchRequest> out;
  for (const Arrival& a : gen.make_arrivals(horizon)) {
    out.push_back(BatchRequest{make_concurrent_requirement(phi, a.computation), a.at});
  }
  return out;
}

ResourceSet supply_for(WorkloadConfig config, Tick horizon, const CostModel& phi) {
  return WorkloadGenerator(config, phi).base_supply(TimeInterval(0, horizon));
}

std::vector<AdmissionDecision> run_sequential(const std::vector<BatchRequest>& requests,
                                              const CostModel& phi,
                                              const ResourceSet& supply,
                                              PlanningPolicy policy) {
  RotaAdmissionController ctl(phi, supply, policy);
  std::vector<AdmissionDecision> out;
  out.reserve(requests.size());
  for (const auto& r : requests) out.push_back(ctl.request(r.rho, r.at));
  return out;
}

void expect_identical(const std::vector<AdmissionDecision>& sequential,
                      const std::vector<AdmissionDecision>& batched,
                      const std::string& context) {
  ASSERT_EQ(sequential.size(), batched.size()) << context;
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const std::string where = context + " request #" + std::to_string(i);
    EXPECT_EQ(sequential[i].accepted, batched[i].accepted) << where;
    EXPECT_EQ(sequential[i].reason, batched[i].reason) << where;
    ASSERT_EQ(sequential[i].plan.has_value(), batched[i].plan.has_value()) << where;
    if (sequential[i].plan) {
      EXPECT_EQ(*sequential[i].plan, *batched[i].plan) << where;
    }
  }
}

TEST(BatchControllerTest, MatchesSequentialAcrossSeedsPoliciesAndConcurrency) {
  const Tick horizon = 400;
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    WorkloadConfig config;
    config.seed = seed;
    config.mean_interarrival = 6.0;  // enough pressure for accepts and rejects
    config.laxity = 1.6;
    CostModel phi;
    const auto requests = make_requests(config, horizon, phi);
    ASSERT_GT(requests.size(), 20u);
    const ResourceSet supply = supply_for(config, horizon, phi);

    for (PlanningPolicy policy :
         {PlanningPolicy::kAsap, PlanningPolicy::kAlap, PlanningPolicy::kUniform}) {
      const auto expected = run_sequential(requests, phi, supply, policy);
      for (std::size_t lanes : {1u, 2u, 8u}) {
        BatchAdmissionController batch(phi, supply, policy, lanes);
        const auto actual = batch.admit_batch(requests);
        expect_identical(expected, actual,
                         "seed=" + std::to_string(seed) + " policy=" +
                             policy_name(policy) + " lanes=" + std::to_string(lanes));
      }
    }
  }
}

TEST(BatchControllerTest, DecisionMixIsNontrivial) {
  // Guard against the equivalence test silently degenerating: the workload
  // it uses must actually produce both accepts and rejects.
  WorkloadConfig config;
  config.seed = 7;
  config.mean_interarrival = 6.0;
  config.laxity = 1.6;
  CostModel phi;
  const auto requests = make_requests(config, 400, phi);
  BatchAdmissionController batch(phi, supply_for(config, 400, phi),
                                 PlanningPolicy::kAsap, 4);
  const auto decisions = batch.admit_batch(requests);
  std::size_t accepts = 0;
  for (const auto& d : decisions) accepts += d.accepted ? 1 : 0;
  EXPECT_GT(accepts, 0u);
  EXPECT_LT(accepts, decisions.size());
}

TEST(BatchControllerTest, SaturatedWorkloadStaysEquivalent) {
  WorkloadConfig config;
  config.seed = 3;
  config.mean_interarrival = 1.5;  // heavy traffic: mostly rejections
  config.laxity = 1.2;
  config.cpu_rate = 5;
  config.network_rate = 5;
  CostModel phi;
  const Tick horizon = 300;
  const auto requests = make_requests(config, horizon, phi);
  const ResourceSet supply = supply_for(config, horizon, phi);

  const auto expected = run_sequential(requests, phi, supply, PlanningPolicy::kAsap);
  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 8);
  expect_identical(expected, batch.admit_batch(requests), "saturated");
}

TEST(BatchControllerTest, LedgerEndsInSequentialState) {
  WorkloadConfig config;
  config.seed = 11;
  config.mean_interarrival = 5.0;
  CostModel phi;
  const Tick horizon = 300;
  const auto requests = make_requests(config, horizon, phi);
  const ResourceSet supply = supply_for(config, horizon, phi);

  RotaAdmissionController sequential(phi, supply);
  for (const auto& r : requests) sequential.request(r.rho, r.at);

  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 8);
  batch.admit_batch(requests);

  EXPECT_EQ(sequential.ledger().residual(), batch.ledger().residual());
  EXPECT_EQ(sequential.ledger().admitted_count(), batch.ledger().admitted_count());
  EXPECT_EQ(sequential.ledger().now(), batch.ledger().now());
  for (std::size_t i = 0; i < sequential.ledger().admitted().size(); ++i) {
    EXPECT_EQ(sequential.ledger().admitted()[i].name, batch.ledger().admitted()[i].name);
  }
}

TEST(BatchControllerTest, ExpiredDeadlinesInsideBatch) {
  Location l("bc-l1");
  CostModel phi;
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 40), LocatedType::cpu(l));

  auto job = [&](const std::string& name, Tick s, Tick d) {
    auto gamma = ActorComputationBuilder(name + ".a", l).evaluate(2).build();
    return make_concurrent_requirement(phi, DistributedComputation(name, {gamma}, s, d));
  };

  // The second request arrives after its own deadline. The fourth arrives
  // "at" tick 0 even though the batch clock has advanced past it — windows
  // are clipped by the request's own arrival tick, never by the ledger
  // clock, exactly as in the sequential controller.
  std::vector<BatchRequest> requests = {
      {job("ok", 0, 10), 0},
      {job("late", 0, 4), 6},
      {job("mid", 10, 30), 12},
      {job("early-stamp", 0, 12), 0},
  };
  const auto expected = run_sequential(requests, phi, supply, PlanningPolicy::kAsap);
  ASSERT_FALSE(expected[1].accepted);
  EXPECT_NE(expected[1].reason.find("deadline"), std::string::npos);

  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 4);
  expect_identical(expected, batch.admit_batch(requests), "expired-deadlines");
}

TEST(BatchControllerTest, JoinsBetweenBatchesMatchSequential) {
  WorkloadConfig config;
  config.seed = 19;
  config.mean_interarrival = 4.0;
  CostModel phi;
  const Tick horizon = 240;
  const auto requests = make_requests(config, horizon, phi);
  ASSERT_GT(requests.size(), 10u);
  const ResourceSet supply = supply_for(config, horizon, phi);

  ResourceSet extra;
  extra.add(3, TimeInterval(100, 200),
            LocatedType::cpu(WorkloadGenerator(config, phi).locations()[0]));

  const std::size_t half = requests.size() / 2;
  const std::vector<BatchRequest> first(requests.begin(), requests.begin() + half);
  const std::vector<BatchRequest> second(requests.begin() + half, requests.end());

  RotaAdmissionController sequential(phi, supply);
  std::vector<AdmissionDecision> expected;
  for (const auto& r : first) expected.push_back(sequential.request(r.rho, r.at));
  sequential.on_join(extra);
  for (const auto& r : second) expected.push_back(sequential.request(r.rho, r.at));

  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 4);
  auto actual = batch.admit_batch(first);
  batch.on_join(extra);
  for (auto& d : batch.admit_batch(second)) actual.push_back(std::move(d));

  expect_identical(expected, actual, "joins-between-batches");
  EXPECT_EQ(sequential.ledger().residual(), batch.ledger().residual());
}

TEST(BatchControllerTest, EmptyBatchIsANoOp) {
  CostModel phi;
  ResourceSet supply;
  supply.add(2, TimeInterval(0, 10), LocatedType::cpu(Location("bc-l2")));
  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 4);
  EXPECT_TRUE(batch.admit_batch({}).empty());
  EXPECT_EQ(batch.ledger().admitted_count(), 0u);
  EXPECT_EQ(batch.ledger().residual(), supply);
}

// Labeled `tsan` via the runtime suite: a large batch at full concurrency is
// the racy path ThreadSanitizer needs to see.
TEST(BatchControllerTest, StressManyLanesManyRequests) {
  WorkloadConfig config;
  config.seed = 23;
  config.mean_interarrival = 2.0;
  config.num_locations = 6;
  CostModel phi;
  const Tick horizon = 600;
  const auto requests = make_requests(config, horizon, phi);
  ASSERT_GT(requests.size(), 100u);
  const ResourceSet supply = supply_for(config, horizon, phi);

  BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, 8);
  const auto decisions = batch.admit_batch(requests);
  const auto expected = run_sequential(requests, phi, supply, PlanningPolicy::kAsap);
  expect_identical(expected, decisions, "stress");
}

}  // namespace
}  // namespace rota
