#include "rota/resource/resource_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rota {
namespace {

class ResourceSetTest : public ::testing::Test {
 protected:
  Location l1{"rs-l1"};
  Location l2{"rs-l2"};
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);
};

TEST_F(ResourceSetTest, EmptyByDefault) {
  ResourceSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.term_count(), 0u);
  EXPECT_TRUE(s.availability(cpu1).is_zero());
}

// ------------------------------------------------------------------
// The paper's §III worked examples, verbatim.
// ------------------------------------------------------------------

TEST_F(ResourceSetTest, PaperExampleOneDistinctTypesStaySeparate) {
  // {5}^(0,3)_<cpu,l1> ∪ {5}^(0,5)_<network,l1→l2>: nothing aggregates.
  ResourceSet s;
  s.add(5, TimeInterval(0, 3), cpu1);
  s.add(5, TimeInterval(0, 5), net12);
  EXPECT_EQ(s.term_count(), 2u);
  EXPECT_EQ(s.quantity(cpu1, TimeInterval(0, 10)), 15);
  EXPECT_EQ(s.quantity(net12, TimeInterval(0, 10)), 25);
}

TEST_F(ResourceSetTest, PaperExampleTwoOverlapAggregates) {
  // {5}^(0,3)_<cpu,l1> ∪ {5}^(0,5)_<cpu,l1> = {10}^(0,3), {5}^(3,5).
  ResourceSet s;
  s.add(5, TimeInterval(0, 3), cpu1);
  s.add(5, TimeInterval(0, 5), cpu1);
  auto terms = s.terms();
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], ResourceTerm(10, TimeInterval(0, 3), cpu1));
  EXPECT_EQ(terms[1], ResourceTerm(5, TimeInterval(3, 5), cpu1));
}

TEST_F(ResourceSetTest, PaperExampleThreeRelativeComplement) {
  // {5}^(0,3)_<cpu,l1> \ {3}^(1,2)_<cpu,l1> = {5}^(0,1), {2}^(1,2), {5}^(2,3).
  ResourceSet theta1;
  theta1.add(5, TimeInterval(0, 3), cpu1);
  ResourceSet theta2;
  theta2.add(3, TimeInterval(1, 2), cpu1);

  auto diff = theta1.relative_complement(theta2);
  ASSERT_TRUE(diff.has_value());
  auto terms = diff->terms();
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], ResourceTerm(5, TimeInterval(0, 1), cpu1));
  EXPECT_EQ(terms[1], ResourceTerm(2, TimeInterval(1, 2), cpu1));
  EXPECT_EQ(terms[2], ResourceTerm(5, TimeInterval(2, 3), cpu1));
}

// ------------------------------------------------------------------
// Simplification behaviour.
// ------------------------------------------------------------------

TEST_F(ResourceSetTest, MeetingEqualRatesReduceTermCount) {
  // "Resource terms can reduce in number if two identical located type
  // resources with identical rates have time intervals that meet."
  ResourceSet s;
  s.add(4, TimeInterval(0, 3), cpu1);
  s.add(4, TimeInterval(3, 7), cpu1);
  EXPECT_EQ(s.term_count(), 1u);
  EXPECT_EQ(s.terms()[0], ResourceTerm(4, TimeInterval(0, 7), cpu1));
}

TEST_F(ResourceSetTest, NullTermsIgnored) {
  ResourceSet s;
  s.add(ResourceTerm(0, TimeInterval(0, 3), cpu1));
  s.add(ResourceTerm(5, TimeInterval(), cpu1));
  EXPECT_TRUE(s.empty());
}

TEST_F(ResourceSetTest, UnionedIsCommutative) {
  ResourceSet a;
  a.add(5, TimeInterval(0, 3), cpu1);
  a.add(2, TimeInterval(1, 6), net12);
  ResourceSet b;
  b.add(1, TimeInterval(2, 9), cpu1);
  EXPECT_EQ(a.unioned(b), b.unioned(a));
}

TEST_F(ResourceSetTest, TermsAreCanonical) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 3), cpu1);
  s.add(3, TimeInterval(2, 6), cpu1);
  s.add(2, TimeInterval(4, 8), cpu1);
  auto terms = s.terms();
  // Segments per type must be ordered, non-overlapping and maximal.
  for (std::size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LE(terms[i - 1].interval().end(), terms[i].interval().start());
  }
  EXPECT_EQ(s.quantity(cpu1, TimeInterval(0, 8)), 15 + 12 + 8);
}

// ------------------------------------------------------------------
// Relative complement definedness.
// ------------------------------------------------------------------

TEST_F(ResourceSetTest, RelativeComplementUndefinedWhenNotDominated) {
  ResourceSet theta1;
  theta1.add(5, TimeInterval(0, 3), cpu1);
  ResourceSet theta2;
  theta2.add(6, TimeInterval(1, 2), cpu1);  // rate exceeds availability
  EXPECT_FALSE(theta1.relative_complement(theta2).has_value());
}

TEST_F(ResourceSetTest, RelativeComplementUndefinedOutsideInterval) {
  ResourceSet theta1;
  theta1.add(5, TimeInterval(0, 3), cpu1);
  ResourceSet theta2;
  theta2.add(1, TimeInterval(2, 5), cpu1);  // extends past availability
  EXPECT_FALSE(theta1.relative_complement(theta2).has_value());
}

TEST_F(ResourceSetTest, RelativeComplementUndefinedForMissingType) {
  ResourceSet theta1;
  theta1.add(5, TimeInterval(0, 3), cpu1);
  ResourceSet theta2;
  theta2.add(1, TimeInterval(0, 2), net12);
  EXPECT_FALSE(theta1.relative_complement(theta2).has_value());
}

TEST_F(ResourceSetTest, RelativeComplementExactDrainRemovesType) {
  ResourceSet theta1;
  theta1.add(5, TimeInterval(0, 3), cpu1);
  ResourceSet theta2;
  theta2.add(5, TimeInterval(0, 3), cpu1);
  auto diff = theta1.relative_complement(theta2);
  ASSERT_TRUE(diff.has_value());
  EXPECT_TRUE(diff->empty());
}

TEST_F(ResourceSetTest, UnionThenComplementRoundTrips) {
  ResourceSet base;
  base.add(5, TimeInterval(0, 10), cpu1);
  ResourceSet extra;
  extra.add(3, TimeInterval(2, 6), cpu1);
  extra.add(4, TimeInterval(0, 4), net12);
  auto diff = base.unioned(extra).relative_complement(extra);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(*diff, base);
}

// ------------------------------------------------------------------
// Domination, satisfaction and restriction.
// ------------------------------------------------------------------

TEST_F(ResourceSetTest, Dominates) {
  ResourceSet big;
  big.add(5, TimeInterval(0, 10), cpu1);
  ResourceSet small;
  small.add(3, TimeInterval(2, 8), cpu1);
  EXPECT_TRUE(big.dominates(small));
  EXPECT_FALSE(small.dominates(big));
  EXPECT_TRUE(big.dominates(big));
  EXPECT_TRUE(big.dominates(ResourceSet{}));
}

TEST_F(ResourceSetTest, SatisfiesDemandWithinWindow) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 4), cpu1);
  DemandSet d;
  d.add(cpu1, 18);
  EXPECT_TRUE(s.satisfies(d, TimeInterval(0, 4)));   // 20 available
  EXPECT_FALSE(s.satisfies(d, TimeInterval(0, 3)));  // only 15
  d.add(net12, 1);
  EXPECT_FALSE(s.satisfies(d, TimeInterval(0, 4)));  // no network at all
}

TEST_F(ResourceSetTest, Restricted) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 10), cpu1);
  s.add(2, TimeInterval(0, 2), net12);
  ResourceSet r = s.restricted(TimeInterval(4, 6));
  EXPECT_EQ(r.quantity(cpu1, TimeInterval(0, 100)), 10);
  EXPECT_EQ(r.quantity(net12, TimeInterval(0, 100)), 0);
}

TEST_F(ResourceSetTest, FromDropsThePast) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 10), cpu1);
  ResourceSet future = s.from(6);
  EXPECT_EQ(future.quantity(cpu1, TimeInterval(0, 100)), 20);
}

TEST_F(ResourceSetTest, Horizon) {
  ResourceSet s;
  EXPECT_FALSE(s.horizon().has_value());
  s.add(5, TimeInterval(0, 10), cpu1);
  s.add(2, TimeInterval(3, 15), net12);
  EXPECT_EQ(s.horizon(), 15);
}

TEST_F(ResourceSetTest, TypesListsDistinctTypes) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 10), cpu1);
  s.add(5, TimeInterval(4, 6), cpu1);
  s.add(2, TimeInterval(3, 15), net12);
  EXPECT_EQ(s.types().size(), 2u);
}

TEST_F(ResourceSetTest, ToStringListsTerms) {
  ResourceSet s;
  s.add(5, TimeInterval(0, 3), cpu1);
  EXPECT_EQ(s.to_string(), "{[5]^[0, 3)_<cpu, rs-l1>}");
}

TEST_F(ResourceSetTest, InitializerListConstruction) {
  ResourceSet s{ResourceTerm(5, TimeInterval(0, 3), cpu1),
                ResourceTerm(5, TimeInterval(0, 5), cpu1)};
  EXPECT_EQ(s.term_count(), 2u);  // aggregated into 10@[0,3) + 5@[3,5)
  EXPECT_EQ(s.availability(cpu1).value_at(1), 10);
}

// ------------------------------------------------------------------
// rota_fuzz calculus-oracle regressions: relative_complement must be
// defined exactly when dominates() holds, including for negative
// profiles on types only one side mentions (minimized from case seeds
// 821782182278964366 and 14171202208520579826).
// ------------------------------------------------------------------

TEST_F(ResourceSetTest, ComplementDefinedOverNegativeProfileOfAbsentType) {
  // b carries a strictly negative profile for a type a never mentions. a's
  // implicit zero availability dominates it, so the complement must be
  // defined and carry the positive difference 0 - b.
  ResourceSet a;
  a.add(5, TimeInterval(0, 3), cpu1);
  StepFunction debt;
  debt.add(TimeInterval(0, 2), -3);
  ResourceSet b;
  b.add(net12, debt);

  EXPECT_TRUE(a.dominates(b));
  auto diff = a.relative_complement(b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->availability(net12).value_at(1), 3);
  EXPECT_EQ(diff->availability(cpu1).value_at(1), 5);
  EXPECT_EQ(diff->unioned(b), a);
}

TEST_F(ResourceSetTest, NegativeProfileOfOwnOnlyTypeBreaksDominance) {
  // a holds a negative profile for a type b never mentions. Pointwise that
  // reads a < 0 = b, so dominance fails and the complement is undefined —
  // it could only produce a negative "availability".
  ResourceSet a;
  a.add(5, TimeInterval(0, 3), cpu1);
  StepFunction debt;
  debt.add(TimeInterval(0, 2), -2);
  a.add(net12, debt);
  ResourceSet b;
  b.add(1, TimeInterval(0, 3), cpu1);

  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(a.relative_complement(b).has_value());
}

TEST_F(ResourceSetTest, ExactCancellationDropsTheEntry) {
  // Opposite-sign profiles that cancel exactly must not leave a stored
  // zero profile behind — stored zeros break operator== against the
  // canonically built equivalent (rota_fuzz calculus-oracle regression).
  StepFunction up;
  up.add(TimeInterval(0, 4), 3);
  StepFunction down;
  down.add(TimeInterval(0, 4), -3);

  ResourceSet a;
  a.add(net12, up);
  ResourceSet b;
  b.add(net12, down);
  b.add(2, TimeInterval(0, 5), cpu1);

  const ResourceSet merged = a.unioned(b);
  EXPECT_EQ(merged.types().size(), 1u);  // net12 cancelled away
  ResourceSet expected;
  expected.add(2, TimeInterval(0, 5), cpu1);
  EXPECT_EQ(merged, expected);

  ResourceSet in_place = a;
  in_place.union_with(b);
  EXPECT_EQ(in_place, expected);

  // add(type, profile) and add(term) cancellation paths.
  ResourceSet c;
  c.add(net12, down);
  c.add(net12, up);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.types().empty());
  c.add(net12, down);
  c.add(ResourceTerm(3, TimeInterval(0, 4), net12));
  EXPECT_TRUE(c.types().empty());
}

TEST_F(ResourceSetTest, ComplementIffDominatesAtBoundaries) {
  // The invariant pinned across representative boundary shapes: empties,
  // self, meets-adjacent segments, touching intervals, partial overlap.
  ResourceSet empty;
  ResourceSet meets;  // 5@[0,3) then 5@[3,6) — coalesces to 5@[0,6)
  meets.add(5, TimeInterval(0, 3), cpu1);
  meets.add(5, TimeInterval(3, 6), cpu1);
  ResourceSet flat;
  flat.add(5, TimeInterval(0, 6), cpu1);
  ResourceSet touching;  // overlaps [2,4) against flat's [0,3) prefix
  touching.add(5, TimeInterval(2, 4), cpu1);
  ResourceSet prefix;
  prefix.add(5, TimeInterval(0, 3), cpu1);

  const ResourceSet all[] = {empty, meets, flat, touching, prefix};
  for (const ResourceSet& x : all) {
    for (const ResourceSet& y : all) {
      EXPECT_EQ(x.relative_complement(y).has_value(), x.dominates(y))
          << "x = " << x.to_string() << ", y = " << y.to_string();
    }
  }

  // Meets-adjacent segments are the same set as their coalesced form.
  EXPECT_EQ(meets, flat);
  auto none = meets.relative_complement(flat);
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
  // Touching-but-overhanging windows are not dominated.
  EXPECT_FALSE(prefix.relative_complement(touching).has_value());
}

}  // namespace
}  // namespace rota
