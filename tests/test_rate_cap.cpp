// Bounded absorption rates (library extension): a serial actor cannot soak
// up a fast node's whole per-tick rate. Covers the planner, the transition
// rules, the explorer and end-to-end admission.
#include <gtest/gtest.h>

#include "rota/admission/controller.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/theorems.hpp"

namespace rota {
namespace {

class RateCapTest : public ::testing::Test {
 protected:
  Location l1{"rc-l1"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);

  ResourceSet fast_node(Rate rate = 8, Tick until = 40) {
    ResourceSet s;
    s.add(rate, TimeInterval(0, until), cpu1);
    return s;
  }

  ConcurrentRequirement capped_job(Tick s, Tick d, Rate cap) {
    auto gamma = ActorComputationBuilder("a", l1).evaluate().build();  // 8 cpu
    DistributedComputation lambda("job", {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda, cap);
  }
};

TEST_F(RateCapTest, DefaultIsUncapped) {
  EXPECT_EQ(capped_job(0, 10, 0).actors()[0].rate_cap(), 0);
  auto plan = plan_concurrent(fast_node(), capped_job(0, 10, 0),
                              PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->finish, 1);  // 8 units at rate 8: one tick
}

TEST_F(RateCapTest, CapStretchesThePlan) {
  auto plan = plan_concurrent(fast_node(), capped_job(0, 40, 2),
                              PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->finish, 4);  // 8 units at <= 2/tick: four ticks
  // The plan never exceeds the cap.
  EXPECT_LE(plan->actors[0].usage.at(cpu1).segments().front().value, 2);
}

TEST_F(RateCapTest, CapCanMakeDeadlinesInfeasible) {
  EXPECT_TRUE(plan_concurrent(fast_node(), capped_job(0, 2, 0),
                              PlanningPolicy::kAsap)
                  .has_value());
  EXPECT_FALSE(plan_concurrent(fast_node(), capped_job(0, 2, 2),
                               PlanningPolicy::kAsap)
                   .has_value());
}

TEST_F(RateCapTest, AlapHonorsCap) {
  auto plan = plan_concurrent(fast_node(), capped_job(0, 40, 2),
                              PlanningPolicy::kAlap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->actors[0].start, 36);  // four capped ticks against d=40
  EXPECT_EQ(plan->finish, 40);
}

TEST_F(RateCapTest, TransitionRuleEnforcesCap) {
  SystemState state(fast_node(), 0);
  state.accommodate(capped_job(0, 40, 2));
  EXPECT_THROW(state.advance({{0, cpu1, 3}}), std::logic_error);
  // Split labels summing over the cap are caught too.
  EXPECT_THROW(state.advance({{0, cpu1, 2}, {0, cpu1, 1}}), std::logic_error);
  state.advance({{0, cpu1, 2}});
  EXPECT_EQ(state.commitments()[0].remaining.of(cpu1), 6);
}

TEST_F(RateCapTest, GreedyExplorerRespectsCap) {
  SystemState state(fast_node(), 0);
  state.accommodate(capped_job(0, 40, 2));
  RunResult r = run_greedy(std::move(state), 40, PriorityOrder::kFcfs);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.finished_at, 4);  // capped pace, not supply pace
}

TEST_F(RateCapTest, CappedActorsShareWhatTheyCannotUse) {
  // Two cap-2 actors on a rate-8 node run fully in parallel.
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 40);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda, 2);

  auto plan = plan_concurrent(fast_node(), rho, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->actors[0].finish, 4);
  EXPECT_EQ(plan->actors[1].finish, 4);  // no contention: both run at cap
  EXPECT_EQ(plan->finish, 4);
}

TEST_F(RateCapTest, RealizePlanReplaysCappedPlans) {
  ConcurrentRequirement rho = capped_job(0, 40, 2);
  auto plan = plan_concurrent(fast_node(), rho, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan.has_value());
  // realize_plan re-validates every label against the cap-aware rules.
  ComputationPath path = realize_plan(fast_node(), rho, *plan, 0);
  EXPECT_TRUE(path.back().all_finished());
}

TEST_F(RateCapTest, ControllerAdmitsByCappedFeasibility) {
  RotaAdmissionController ctl(phi, fast_node());
  // Uncapped: fits in (0, 2).
  auto gamma = ActorComputationBuilder("u.a", l1).evaluate().build();
  DistributedComputation fits("u", {gamma}, 0, 2);
  EXPECT_TRUE(ctl.request(make_concurrent_requirement(phi, fits), 0).accepted);
  // Capped at 2/tick the same window is impossible.
  DistributedComputation cramped("c", {gamma}, 0, 2);
  EXPECT_FALSE(
      ctl.request(make_concurrent_requirement(phi, cramped, 2), 0).accepted);
}

TEST_F(RateCapTest, Theorem4PropagatesCaps) {
  ConcurrentRequirement first = capped_job(0, 40, 2);
  auto plan1 = plan_concurrent(fast_node(), first, PlanningPolicy::kAsap);
  ASSERT_TRUE(plan1.has_value());
  ComputationPath sigma = realize_plan(fast_node(), first, *plan1, 0);

  auto plan2 = theorem4_accommodate(sigma, 0, capped_job(0, 40, 2));
  ASSERT_TRUE(plan2.has_value());
  // The admitted plan is still capped.
  for (const auto& seg : plan2->actors[0].usage.at(cpu1).segments()) {
    EXPECT_LE(seg.value, 2);
  }
}

}  // namespace
}  // namespace rota
