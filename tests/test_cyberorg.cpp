#include "rota/cyberorgs/cyberorg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class CyberOrgTest : public ::testing::Test {
 protected:
  Location l1{"co-l1"};
  Location l2{"co-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType cpu2 = LocatedType::cpu(l2);

  ResourceSet both_nodes() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 20), cpu1);
    s.add(4, TimeInterval(0, 20), cpu2);
    return s;
  }

  ResourceSet node2_slice() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 20), cpu2);
    return s;
  }

  DistributedComputation job(const std::string& name, Location at, Tick s, Tick d,
                             std::int64_t w = 1) {
    auto gamma = ActorComputationBuilder(name + ".a", at).evaluate(w).build();
    return DistributedComputation(name, {gamma}, s, d);
  }
};

TEST_F(CyberOrgTest, RootAdmitsWithinItsSlice) {
  CyberOrg root("root", phi, both_nodes());
  EXPECT_TRUE(root.request(job("j1", l1, 0, 10), 0).accepted);
  EXPECT_EQ(root.ledger().admitted_count(), 1u);
}

TEST_F(CyberOrgTest, IsolationMovesSupplyToChild) {
  CyberOrg root("root", phi, both_nodes());
  CyberOrg& child = root.create_child("child", node2_slice());

  // The child owns l2's cpu now; the root no longer does.
  EXPECT_TRUE(child.request(job("cj", l2, 0, 10), 0).accepted);
  EXPECT_FALSE(root.request(job("rj", l2, 0, 10), 0).accepted);
  // The root keeps l1.
  EXPECT_TRUE(root.request(job("rk", l1, 0, 10), 0).accepted);
}

TEST_F(CyberOrgTest, CannotIsolateMoreThanFreeSupply) {
  CyberOrg root("root", phi, both_nodes());
  ResourceSet too_much;
  too_much.add(10, TimeInterval(0, 20), cpu2);
  EXPECT_THROW(root.create_child("greedy", too_much), std::invalid_argument);
}

TEST_F(CyberOrgTest, CannotIsolateCommittedSupply) {
  CyberOrg root("root", phi, both_nodes());
  // Commit all of l2's (0, 10) capacity, then try to give all of l2 away.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(root.request(job("j" + std::to_string(i), l2, 0, 10), 0).accepted);
  }
  EXPECT_THROW(root.create_child("child", node2_slice()), std::invalid_argument);
}

TEST_F(CyberOrgTest, DuplicateNamesRejected) {
  CyberOrg root("root", phi, both_nodes());
  ResourceSet half;
  half.add(2, TimeInterval(0, 20), cpu2);
  root.create_child("child", half);
  ResourceSet other;
  other.add(1, TimeInterval(0, 20), cpu2);
  EXPECT_THROW(root.create_child("child", other), std::invalid_argument);
  EXPECT_THROW(root.create_child("root", other), std::invalid_argument);
}

TEST_F(CyberOrgTest, AssimilationReturnsSupplyAndCommitments) {
  CyberOrg root("root", phi, both_nodes());
  CyberOrg& child = root.create_child("child", node2_slice());
  ASSERT_TRUE(child.request(job("cj", l2, 0, 10), 0).accepted);

  ASSERT_TRUE(root.assimilate("child"));
  EXPECT_EQ(root.subtree_size(), 1u);
  // The child's commitment is now the root's.
  EXPECT_EQ(root.ledger().admitted_count(), 1u);
  // And the child's free supply is usable again at the root.
  EXPECT_TRUE(root.request(job("rj", l2, 0, 10), 0).accepted);
}

TEST_F(CyberOrgTest, AssimilateUnknownReturnsFalse) {
  CyberOrg root("root", phi, both_nodes());
  EXPECT_FALSE(root.assimilate("ghost"));
}

TEST_F(CyberOrgTest, GrandchildrenArePromotedOnAssimilation) {
  CyberOrg root("root", phi, both_nodes());
  CyberOrg& child = root.create_child("child", node2_slice());
  ResourceSet grand_slice;
  grand_slice.add(1, TimeInterval(0, 20), cpu2);
  child.create_child("grand", grand_slice);
  EXPECT_EQ(root.subtree_size(), 3u);
  EXPECT_EQ(root.subtree_depth(), 3u);

  ASSERT_TRUE(root.assimilate("child"));
  EXPECT_EQ(root.subtree_size(), 2u);
  EXPECT_EQ(root.subtree_depth(), 2u);
  EXPECT_NE(root.find("grand"), nullptr);
  EXPECT_EQ(root.find("child"), nullptr);
}

TEST_F(CyberOrgTest, FindSearchesSubtree) {
  CyberOrg root("root", phi, both_nodes());
  ResourceSet half;
  half.add(2, TimeInterval(0, 20), cpu2);
  CyberOrg& child = root.create_child("child", half);
  ResourceSet quarter;
  quarter.add(1, TimeInterval(0, 20), cpu2);
  child.create_child("grand", quarter);

  EXPECT_EQ(root.find("root"), &root);
  EXPECT_EQ(root.find("child"), &child);
  ASSERT_NE(root.find("grand"), nullptr);
  EXPECT_EQ(root.find("grand")->name(), "grand");
  EXPECT_EQ(root.find("nope"), nullptr);
}

TEST_F(CyberOrgTest, EncapsulationBoundsReasoningScope) {
  // A computation needing both nodes cannot be admitted by any single org
  // after isolation split the supply — the encapsulation is the reasoning
  // boundary, exactly as §VI intends.
  CyberOrg root("root", phi, both_nodes());
  root.create_child("child", node2_slice());

  auto g1 = ActorComputationBuilder("x.a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("x.a2", l2).evaluate().build();
  DistributedComputation spanning("x", {g1, g2}, 0, 10);
  EXPECT_FALSE(root.request(spanning, 0).accepted);
  EXPECT_FALSE(root.find("child")->request(spanning, 0).accepted);

  // Assimilation restores the wider scope.
  root.assimilate("child");
  EXPECT_TRUE(root.request(spanning, 0).accepted);
}

TEST_F(CyberOrgTest, ToStringShowsHierarchy) {
  CyberOrg root("root", phi, both_nodes());
  ResourceSet half;
  half.add(2, TimeInterval(0, 20), cpu2);
  root.create_child("child", half);
  const std::string s = root.to_string();
  EXPECT_NE(s.find("root"), std::string::npos);
  EXPECT_NE(s.find("child"), std::string::npos);
}

}  // namespace
}  // namespace rota
