#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/computation/action.hpp"
#include "rota/computation/cost_model.hpp"

namespace rota {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  Location l1{"cm-l1"};
  Location l2{"cm-l2"};
  CostModel phi;  // default parameters == the paper's example Φ values
};

// ------------------------------------------------------------------
// The paper's §IV example Φ values.
// ------------------------------------------------------------------

TEST_F(CostModelTest, PaperSendCost) {
  // Φ(a1, send(a2, m)) = {4}_<network, l(a1)->l(a2)>
  DemandSet d = phi.cost(Action::send(l1, l2));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.of(LocatedType::network(l1, l2)), 4);
}

TEST_F(CostModelTest, PaperEvaluateCost) {
  // Φ(a1, evaluate(e)) = {8}_<cpu, l(a1)>
  DemandSet d = phi.cost(Action::evaluate(l1));
  EXPECT_EQ(d.of(LocatedType::cpu(l1)), 8);
}

TEST_F(CostModelTest, PaperCreateCost) {
  // Φ(a1, create(b)) = {5}_<cpu, l(a1)>
  EXPECT_EQ(phi.cost(Action::create(l1)).of(LocatedType::cpu(l1)), 5);
}

TEST_F(CostModelTest, PaperReadyCost) {
  // Φ(a1, ready(b)) = {1}_<cpu, l(a1)>
  EXPECT_EQ(phi.cost(Action::ready(l1)).of(LocatedType::cpu(l1)), 1);
}

TEST_F(CostModelTest, PaperMigrateCostIsMultiType) {
  // Φ(a1, migrate(l2)) needs cpu at source, network on the link, cpu at dest
  // ("serialized, sent over the network, unserialized").
  DemandSet d = phi.cost(Action::migrate(l1, l2));
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.of(LocatedType::cpu(l1)), 3);
  EXPECT_EQ(d.of(LocatedType::network(l1, l2)), 6);
  EXPECT_EQ(d.of(LocatedType::cpu(l2)), 3);
}

// ------------------------------------------------------------------
// Scaling and configuration.
// ------------------------------------------------------------------

TEST_F(CostModelTest, EvaluateScalesWithWeight) {
  EXPECT_EQ(phi.cost(Action::evaluate(l1, 3)).of(LocatedType::cpu(l1)), 24);
}

TEST_F(CostModelTest, LocalSendCostsCpuNotNetwork) {
  DemandSet d = phi.cost(Action::send(l1, l1));
  EXPECT_EQ(d.of(LocatedType::cpu(l1)), 1);
  EXPECT_EQ(d.size(), 1u);
}

TEST_F(CostModelTest, SendSizeScaling) {
  CostParameters params;
  params.send_per_size = 2;
  CostModel scaled(params);
  EXPECT_EQ(scaled.cost(Action::send(l1, l2, 4)).of(LocatedType::network(l1, l2)),
            4 + 2 * 3);
}

TEST_F(CostModelTest, MigrateSizeScaling) {
  CostParameters params;
  params.migrate_network_per_size = 5;
  CostModel scaled(params);
  EXPECT_EQ(scaled.cost(Action::migrate(l1, l2, 3)).of(LocatedType::network(l1, l2)),
            6 + 5 * 2);
}

TEST_F(CostModelTest, MigrateToSelfThrows) {
  EXPECT_THROW(phi.cost(Action{ActionKind::kMigrate, l1, l1, 1}), std::invalid_argument);
}

TEST_F(CostModelTest, CpuMultiplierScalesNodeWork) {
  CostModel slow;
  slow.set_cpu_multiplier(l1, 3);
  EXPECT_EQ(slow.cost(Action::evaluate(l1)).of(LocatedType::cpu(l1)), 24);
  EXPECT_EQ(slow.cost(Action::evaluate(l2)).of(LocatedType::cpu(l2)), 8);
  // Network is unaffected.
  EXPECT_EQ(slow.cost(Action::send(l1, l2)).of(LocatedType::network(l1, l2)), 4);
  // Migration scales each endpoint independently.
  DemandSet d = slow.cost(Action::migrate(l2, l1));
  EXPECT_EQ(d.of(LocatedType::cpu(l2)), 3);
  EXPECT_EQ(d.of(LocatedType::cpu(l1)), 9);
}

TEST_F(CostModelTest, InvalidMultiplierThrows) {
  CostModel m;
  EXPECT_THROW(m.set_cpu_multiplier(l1, 0), std::invalid_argument);
  EXPECT_THROW(m.set_cpu_multiplier(l1, -2), std::invalid_argument);
}

TEST_F(CostModelTest, TotalCostAggregates) {
  std::vector<Action> actions = {Action::evaluate(l1), Action::send(l1, l2),
                                 Action::create(l1), Action::ready(l1)};
  DemandSet d = phi.total_cost(actions);
  EXPECT_EQ(d.of(LocatedType::cpu(l1)), 8 + 5 + 1);
  EXPECT_EQ(d.of(LocatedType::network(l1, l2)), 4);
}

TEST(ActionTest, FactoriesRecordLocations) {
  Location a{"act-a"}, b{"act-b"};
  EXPECT_EQ(Action::evaluate(a).kind, ActionKind::kEvaluate);
  EXPECT_EQ(Action::send(a, b).to, b);
  EXPECT_EQ(Action::migrate(a, b).at, a);
  EXPECT_EQ(Action::ready(a).at, a);
  EXPECT_EQ(Action::create(a).at, a);
}

TEST(ActionTest, ToString) {
  Location a{"act-p"}, b{"act-q"};
  EXPECT_EQ(Action::evaluate(a).to_string(), "evaluate@act-p");
  EXPECT_EQ(Action::send(a, b, 3).to_string(), "send@act-p->act-q size=3");
  EXPECT_EQ(Action::migrate(a, b).to_string(), "migrate@act-p->act-q");
}

TEST(ActionTest, KindNames) {
  EXPECT_EQ(action_kind_name(ActionKind::kEvaluate), "evaluate");
  EXPECT_EQ(action_kind_name(ActionKind::kSend), "send");
  EXPECT_EQ(action_kind_name(ActionKind::kCreate), "create");
  EXPECT_EQ(action_kind_name(ActionKind::kReady), "ready");
  EXPECT_EQ(action_kind_name(ActionKind::kMigrate), "migrate");
}

}  // namespace
}  // namespace rota
