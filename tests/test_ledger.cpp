#include "rota/admission/ledger.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

class LedgerTest : public ::testing::Test {
 protected:
  Location l1{"lg-l1"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 10), cpu1);
    return s;
  }

  ConcurrentPlan plan_for(Quantity cpu_quantity, Tick s, Tick d,
                          const ResourceSet& against) {
    auto gamma = ActorComputationBuilder("a", l1)
                     .evaluate(cpu_quantity / 8)
                     .build();
    DistributedComputation lambda("x", {gamma}, s, d);
    auto plan = plan_concurrent(against, make_concurrent_requirement(phi, lambda),
                                PlanningPolicy::kAsap);
    EXPECT_TRUE(plan.has_value());
    return *plan;
  }
};

TEST_F(LedgerTest, FreshLedgerResidualEqualsSupply) {
  CommitmentLedger ledger(supply(), 0);
  EXPECT_EQ(ledger.residual(), ledger.supply());
  EXPECT_EQ(ledger.admitted_count(), 0u);
  EXPECT_EQ(ledger.now(), 0);
}

TEST_F(LedgerTest, AdmitSubtractsPlanUsage) {
  CommitmentLedger ledger(supply(), 0);
  ConcurrentPlan plan = plan_for(8, 0, 10, ledger.residual());
  ASSERT_TRUE(ledger.admit("x", TimeInterval(0, 10), plan));
  EXPECT_EQ(ledger.admitted_count(), 1u);
  EXPECT_EQ(ledger.residual().quantity(cpu1, TimeInterval(0, 10)), 32);
  // Supply is unchanged — only the residual shrinks.
  EXPECT_EQ(ledger.supply().quantity(cpu1, TimeInterval(0, 10)), 40);
}

TEST_F(LedgerTest, AdmitRejectsOversizedPlan) {
  CommitmentLedger ledger(supply(), 0);
  // A plan computed against a *bigger* pool than the residual offers.
  ResourceSet huge;
  huge.add(100, TimeInterval(0, 10), cpu1);
  ConcurrentPlan plan = plan_for(80, 0, 10, huge);
  // 80 units in one tick exceed the rate-4 residual.
  EXPECT_FALSE(ledger.admit("big", TimeInterval(0, 10), plan));
  EXPECT_EQ(ledger.admitted_count(), 0u);
  EXPECT_EQ(ledger.residual(), ledger.supply());  // untouched on failure
}

TEST_F(LedgerTest, JoinGrowsBothPools) {
  CommitmentLedger ledger(supply(), 0);
  ResourceSet extra;
  extra.add(2, TimeInterval(3, 6), cpu1);
  ledger.join(extra);
  EXPECT_EQ(ledger.supply().availability(cpu1).value_at(4), 6);
  EXPECT_EQ(ledger.residual().availability(cpu1).value_at(4), 6);
}

TEST_F(LedgerTest, ReleaseBeforeStartRestoresResidual) {
  CommitmentLedger ledger(supply(), 0);
  ConcurrentPlan plan = plan_for(8, 5, 10, ledger.residual());
  ASSERT_TRUE(ledger.admit("x", TimeInterval(5, 10), plan));
  const ResourceSet before = ledger.residual();
  EXPECT_TRUE(ledger.release("x"));
  EXPECT_EQ(ledger.admitted_count(), 0u);
  EXPECT_EQ(ledger.residual(), ledger.supply());
  EXPECT_NE(before, ledger.residual());
}

TEST_F(LedgerTest, ReleaseAfterStartThrows) {
  CommitmentLedger ledger(supply(), 0);
  ConcurrentPlan plan = plan_for(8, 0, 10, ledger.residual());
  ASSERT_TRUE(ledger.admit("x", TimeInterval(0, 10), plan));
  ledger.advance_to(3);
  EXPECT_THROW(ledger.release("x"), std::logic_error);
}

TEST_F(LedgerTest, ReleaseUnknownReturnsFalse) {
  CommitmentLedger ledger(supply(), 0);
  EXPECT_FALSE(ledger.release("ghost"));
}

TEST_F(LedgerTest, TimeIsMonotonic) {
  CommitmentLedger ledger(supply(), 5);
  ledger.advance_to(9);
  EXPECT_EQ(ledger.now(), 9);
  EXPECT_THROW(ledger.advance_to(3), std::logic_error);
}

TEST_F(LedgerTest, UtilizationTracksCommitments) {
  CommitmentLedger ledger(supply(), 0);
  EXPECT_DOUBLE_EQ(ledger.utilization(cpu1, TimeInterval(0, 10)), 0.0);
  ConcurrentPlan plan = plan_for(8, 0, 10, ledger.residual());
  ASSERT_TRUE(ledger.admit("x", TimeInterval(0, 10), plan));
  EXPECT_DOUBLE_EQ(ledger.utilization(cpu1, TimeInterval(0, 10)), 0.2);  // 8/40
  // A window with no supply reports zero.
  EXPECT_DOUBLE_EQ(ledger.utilization(cpu1, TimeInterval(50, 60)), 0.0);
}

}  // namespace
}  // namespace rota
