#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "rota/util/csv.hpp"
#include "rota/util/rng.hpp"
#include "rota/util/stats.hpp"
#include "rota/util/table.hpp"

namespace rota::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsFine) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(7);
  EXPECT_EQ(r.uniform(3, 3), 3);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(11);
  int buckets[10] = {};
  for (int i = 0; i < 10000; ++i) buckets[r.index(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, ExponentialAtLeastOne) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential_at_least_1(0.1), 1);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {4.0, 1.0, 3.0, 2.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Summary, EmptyThrowsOnOrderStatistics) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Summary, Stddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  Summary single;
  single.add(4.0);
  EXPECT_EQ(single.stddev(), 0.0);
}

TEST(Summary, InterleavedAddAndQuery) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);  // re-sorts after new samples
}

TEST(Ratio, Basic) {
  Ratio r;
  EXPECT_EQ(r.value(), 0.0);
  r.record(true);
  r.record(false);
  r.record(true);
  r.record(true);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
  EXPECT_EQ(r.total, 4);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"cpu", "10"});
  t.add_row({"network-long", "7"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("network-long"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FixedFormatsDoubles) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  csv.write_row({"1", "2"});
  csv.write_row({"3", "4"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

}  // namespace
}  // namespace rota::util
