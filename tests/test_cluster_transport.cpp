// Transport-spine determinism parity: pinned goldens over a seeds x nodes x
// loss grid of ClusterSims.
//
// The goldens were captured from the pre-refactor control loop (ClusterNode
// draining an outbox straight into the fabric) and the refactored loop
// (ClusterNode speaking net::Transport, ClusterSim flushing FabricTransports
// per node in id order at end of tick) reproduces them byte-for-byte: the
// hash covers the full decision log plus the fabric's loss accounting, so a
// single reordered send, a different seq assignment, or one changed decision
// flips a grid point. "Same node code, two transports, zero drift in the
// sim" is this file's contract — if a deliberate protocol change moves these
// hashes, recapture them and say so in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "rota/cluster/cluster.hpp"
#include "rota/workload/generator.hpp"

namespace rota::cluster {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One grid point: `nodes` nodes on the generator's topology, default links
// with `drop_permille` loss and 1 tick of jitter, a mid-run partition of
// nodes 0|1 (healed later), a crash/recover of node 2 when present, and a
// skewed arrival stream whose overflow exercises probe/offer/claim. The hash
// covers everything the control loop decided, including loss accounting.
std::uint64_t grid_point_hash(std::uint64_t seed, std::size_t nodes,
                              std::int64_t drop_permille) {
  WorkloadConfig wc;
  wc.seed = seed;
  wc.num_locations = nodes;
  wc.mean_interarrival = 3.0;
  WorkloadGenerator gen(wc, CostModel());

  ClusterConfig config;
  config.seed = seed * 1000003u + nodes;
  config.default_link.jitter = 1;
  config.default_link.drop = static_cast<double>(drop_permille) / 1000.0;
  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < nodes; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, 400)));
  }
  sim.schedule_partition(40, 0, 1);
  sim.schedule_heal(90, 0, 1);
  if (nodes > 2) {
    sim.schedule_crash(120, 2);
    sim.schedule_restart(150, 2, /*recover=*/true);
  }
  for (const ClusterArrivalSpec& a :
       gen.make_cluster_arrivals(200, nodes, /*hot_fraction=*/0.7)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
  }
  const ClusterReport report = sim.run(280);

  std::string blob = report.decision_log();
  blob += '|';
  blob += std::to_string(report.messages_sent);
  blob += '|';
  blob += std::to_string(report.messages_dropped);
  blob += '|';
  blob += std::to_string(report.messages_delivered);
  blob += '|';
  blob += std::to_string(report.placements.size());
  return fnv1a(blob);
}

struct GridGolden {
  std::uint64_t seed;
  std::size_t nodes;
  std::int64_t drop_permille;
  std::uint64_t hash;
};

// Captured from the pre-Transport-refactor control loop, then recaptured
// when MessageFabric::partition() learned to purge in-flight messages that
// cross the new cut (a deliberate protocol change: the cut now drops queued
// traffic instead of letting it slip through, so every grid point with a
// crossing message in flight at tick 40 moved — (3, 6, 200) had none and
// kept its pre-purge hash).
constexpr GridGolden kGoldens[] = {
    {3ull, 2, 0, 0x5028a354aa44d7c7ull},
    {3ull, 2, 50, 0x34c1f5d21b955ba9ull},
    {3ull, 2, 200, 0x691fede10f239bb6ull},
    {3ull, 4, 0, 0xf58dc93d02b2ccb5ull},
    {3ull, 4, 50, 0xaf37f3921972e078ull},
    {3ull, 4, 200, 0xfa00a98c7d1640d3ull},
    {3ull, 6, 0, 0x34a3216c7a436aeeull},
    {3ull, 6, 50, 0xc85a55db78c02f1eull},
    {3ull, 6, 200, 0xfa665d46dbd68ae2ull},
    {17ull, 2, 0, 0x314f0a0e7042b11eull},
    {17ull, 2, 50, 0xa3b9d30c541f7e56ull},
    {17ull, 2, 200, 0xe73b4e6dc4fb28a7ull},
    {17ull, 4, 0, 0x041c05ae0f63d762ull},
    {17ull, 4, 50, 0x93c2a224a9d03feeull},
    {17ull, 4, 200, 0x768439c8462254a4ull},
    {17ull, 6, 0, 0x664da46784e60d40ull},
    {17ull, 6, 50, 0x389c9c164bc33131ull},
    {17ull, 6, 200, 0x2ca6a3bca413e4efull},
};

TEST(ClusterTransportParity, GridMatchesPreRefactorGoldens) {
  for (const GridGolden& g : kGoldens) {
    EXPECT_EQ(grid_point_hash(g.seed, g.nodes, g.drop_permille), g.hash)
        << "seed " << g.seed << ", nodes " << g.nodes << ", drop "
        << g.drop_permille << "/1000 drifted from the pre-refactor decision "
        << "sequence";
  }
}

TEST(ClusterTransportParity, RepeatedRunsAreIdentical) {
  const std::uint64_t first = grid_point_hash(7, 4, 100);
  EXPECT_EQ(grid_point_hash(7, 4, 100), first);
  EXPECT_EQ(grid_point_hash(7, 4, 100), first);
}

}  // namespace
}  // namespace rota::cluster
