#include "rota/logic/explorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

class ExplorerTest : public ::testing::Test {
 protected:
  Location l1{"ex-l1"};
  Location l2{"ex-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ConcurrentRequirement make_req(const std::string& name, Tick s, Tick d,
                                 std::int64_t weight = 1) {
    auto gamma =
        ActorComputationBuilder(name + ".a", l1).evaluate(weight).build();
    DistributedComputation lambda(name, {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda);
  }
};

TEST_F(ExplorerTest, GreedyDrainsSingleActor) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("j", 0, 20));

  RunResult r = run_greedy(s0, 20, PriorityOrder::kFcfs);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.finished_at, 2);  // 8 cpu at rate 4
  EXPECT_TRUE(r.path.back().all_finished());
}

TEST_F(ExplorerTest, GreedyRespectsStartTime) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("j", 5, 20));

  RunResult r = run_greedy(s0, 20, PriorityOrder::kFcfs);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.finished_at, 7);  // waits for s=5, then 2 ticks
}

TEST_F(ExplorerTest, GreedyReportsMissOnShortSupply) {
  ResourceSet supply;
  supply.add(1, TimeInterval(0, 4), cpu1);  // 4 < 8
  SystemState s0(supply, 0);
  s0.accommodate(make_req("j", 0, 4));

  RunResult r = run_greedy(s0, 10, PriorityOrder::kFcfs);
  EXPECT_FALSE(r.all_met);
}

TEST_F(ExplorerTest, HorizonBoundsRun) {
  SystemState s0(ResourceSet{}, 0);
  s0.accommodate(make_req("j", 0, 100));
  RunResult r = run_greedy(s0, 10, PriorityOrder::kFcfs);
  EXPECT_FALSE(r.all_met);
  EXPECT_EQ(r.path.back().now(), 10);
}

TEST_F(ExplorerTest, EmptyStateTriviallyMet) {
  RunResult r = run_greedy(SystemState(ResourceSet{}, 0), 10, PriorityOrder::kFcfs);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.path.size(), 1u);
}

TEST_F(ExplorerTest, EdfPrioritizesTighterDeadline) {
  // Two jobs, supply rate 4: each needs 8 (2 dedicated ticks). The tight one
  // (d=2) only survives if scheduled first; FCFS order has it second.
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("loose", 0, 20));
  s0.accommodate(make_req("tight", 0, 2));

  RunResult fcfs = run_greedy(s0, 20, PriorityOrder::kFcfs);
  EXPECT_FALSE(fcfs.all_met);

  RunResult edf = run_greedy(s0, 20, PriorityOrder::kEdf);
  EXPECT_TRUE(edf.all_met);
}

TEST_F(ExplorerTest, LeastLaxityAlsoRecoversIt) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("loose", 0, 20));
  s0.accommodate(make_req("tight", 0, 2));
  RunResult ll = run_greedy(s0, 20, PriorityOrder::kLeastLaxity);
  EXPECT_TRUE(ll.all_met);
}

TEST_F(ExplorerTest, SearchFeasibleFindsOrderDependentSchedule) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("loose", 0, 20));
  s0.accommodate(make_req("tight", 0, 2));
  auto path = search_feasible(s0, 20);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->back().all_finished());
}

TEST_F(ExplorerTest, SearchFeasibleReturnsNulloptWhenImpossible) {
  ResourceSet supply;
  supply.add(1, TimeInterval(0, 3), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("j", 0, 3));
  EXPECT_FALSE(search_feasible(s0, 10).has_value());
}

TEST_F(ExplorerTest, GreedySharesContendedSupply) {
  // Two actors of one computation on the same node split the rate.
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 10);
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 10), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_concurrent_requirement(phi, lambda));

  RunResult r = run_greedy(s0, 10, PriorityOrder::kFcfs);
  EXPECT_TRUE(r.all_met);
  EXPECT_EQ(r.finished_at, 4);  // 16 units at aggregate rate 4
}

TEST_F(ExplorerTest, PriorityNames) {
  EXPECT_EQ(priority_name(PriorityOrder::kFcfs), "fcfs");
  EXPECT_EQ(priority_name(PriorityOrder::kEdf), "edf");
  EXPECT_EQ(priority_name(PriorityOrder::kLeastLaxity), "least-laxity");
  EXPECT_EQ(priority_name(PriorityOrder::kProportional), "proportional");
}

TEST_F(ExplorerTest, ProportionalSplitsEvenly) {
  // Two equal jobs on a rate-4 node: fair share gives each 2/tick, so both
  // finish together at t=4 (FCFS would finish them at 2 and 4).
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("a", 0, 20));
  s0.accommodate(make_req("b", 0, 20));

  RunResult r = run_greedy(s0, 20, PriorityOrder::kProportional);
  ASSERT_TRUE(r.all_met);
  EXPECT_EQ(*r.path.back().commitments()[0].finished_at, 4);
  EXPECT_EQ(*r.path.back().commitments()[1].finished_at, 4);

  RunResult fcfs = run_greedy(s0, 20, PriorityOrder::kFcfs);
  EXPECT_EQ(*fcfs.path.back().commitments()[0].finished_at, 2);
  EXPECT_EQ(*fcfs.path.back().commitments()[1].finished_at, 4);
}

TEST_F(ExplorerTest, WaterFillHandlesIndivisibleRates) {
  // Rate 5 among three claimants: shares settle to 2/2/1 (water-filling
  // rounds), total 5, nothing wasted.
  ResourceSet supply;
  supply.add(5, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  for (int i = 0; i < 3; ++i) s0.accommodate(make_req("j" + std::to_string(i), 0, 20));

  std::map<LocatedType, Rate> capacity;
  auto labels = water_fill_labels(s0, {0, 1, 2}, capacity);
  Rate total = 0;
  for (const auto& label : labels) {
    total += label.rate;
    EXPECT_GE(label.rate, 1);
    EXPECT_LE(label.rate, 2);
  }
  EXPECT_EQ(total, 5);
  EXPECT_EQ(capacity[cpu1], 0);
  s0.advance(labels);  // and they are valid transition labels
}

TEST_F(ExplorerTest, WaterFillRespectsRateCaps) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  auto gamma = ActorComputationBuilder("c.a", l1).evaluate().build();
  DistributedComputation lambda("c", {gamma}, 0, 20);
  s0.accommodate(make_concurrent_requirement(phi, lambda, /*rate_cap=*/3));

  std::map<LocatedType, Rate> capacity;
  auto labels = water_fill_labels(s0, {0}, capacity);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].rate, 3);  // capped below the node's 8
}

TEST_F(ExplorerTest, WaterFillRespectsPreReservedCapacity) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 20), cpu1);
  SystemState s0(supply, 0);
  s0.accommodate(make_req("j", 0, 20));
  std::map<LocatedType, Rate> capacity;
  capacity[cpu1] = 1;  // someone already reserved 3 of the 4
  auto labels = water_fill_labels(s0, {0}, capacity);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].rate, 1);
}

// Water-fill properties over a deliberately uneven mix: three claimants with
// different caps and demands plus one inactive commitment, rate-7 supply.
class WaterFillPropertyTest : public ExplorerTest {
 protected:
  SystemState mixed_state() {
    ResourceSet supply;
    supply.add(7, TimeInterval(0, 20), cpu1);
    SystemState s0(supply, 0);
    s0.accommodate(make_req("big", 0, 20, /*weight=*/3));    // wants 24
    auto capped = ActorComputationBuilder("cap.a", l1).evaluate(2).build();
    s0.accommodate(make_concurrent_requirement(
        phi, DistributedComputation("cap", {capped}, 0, 20), /*rate_cap=*/2));
    s0.accommodate(make_req("small", 0, 20, /*weight=*/1));  // wants 8
    s0.accommodate(make_req("later", 10, 20));               // not active yet
    return s0;
  }
};

TEST_F(WaterFillPropertyTest, ConservesCapacityCapsAndDemand) {
  const SystemState s0 = mixed_state();
  std::map<LocatedType, Rate> capacity;
  const auto labels = water_fill_labels(s0, {0, 1, 2, 3}, capacity);

  Rate total = 0;
  for (const auto& label : labels) {
    const ActorProgress& p = s0.commitments()[label.commitment];
    total += label.rate;
    EXPECT_GT(label.rate, 0);
    // Never beyond the claimant's remaining demand for that type…
    EXPECT_LE(label.rate, p.remaining.of(label.type));
    // …nor its absorption cap…
    if (p.rate_cap > 0) EXPECT_LE(label.rate, p.rate_cap);
    // …and never to a commitment whose window has not opened.
    EXPECT_TRUE(p.active_at(0)) << "label for inactive " << p.actor;
  }
  // Conservation: handed-out capacity plus the leftover equals the supply.
  EXPECT_LE(total, 7);
  EXPECT_EQ(total + capacity[cpu1], 7);
  // The labels form a legal transition.
  SystemState advanced = s0;
  advanced.advance(labels);
}

TEST_F(WaterFillPropertyTest, SplitIsInvariantUnderParticipantOrder) {
  const SystemState s0 = mixed_state();
  std::map<LocatedType, Rate> capacity;
  const auto canonical = water_fill_labels(s0, {0, 1, 2, 3}, capacity);
  ASSERT_FALSE(canonical.empty());

  std::vector<std::size_t> participants{0, 1, 2, 3};
  std::sort(participants.begin(), participants.end());
  do {
    std::map<LocatedType, Rate> scratch;
    const auto permuted = water_fill_labels(s0, participants, scratch);
    EXPECT_EQ(permuted, canonical)
        << "water-fill split depends on participant enumeration order";
    EXPECT_EQ(scratch[cpu1], capacity.at(cpu1));
  } while (std::next_permutation(participants.begin(), participants.end()));
}

}  // namespace
}  // namespace rota
