#include "rota/admission/negotiation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class NegotiationTest : public ::testing::Test {
 protected:
  Location l1{"ng-l1"};
  Location l2{"ng-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 40), cpu1);
    s.add(4, TimeInterval(0, 40), net12);
    return s;
  }

  ConcurrentRequirement chain(Tick s, Tick d) {
    auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
    DistributedComputation lambda("job", {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda);
  }
};

TEST_F(NegotiationTest, EarliestDeadlineIsExact) {
  // 8 cpu at rate 4 → 2 ticks, then 4 net → 1 tick: earliest d is 3.
  auto d = earliest_feasible_deadline(supply(), chain(0, 40), 40);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 3);
  // Cross-check the boundary directly.
  EXPECT_TRUE(plan_concurrent(supply(), chain(0, 3), PlanningPolicy::kAsap));
  EXPECT_FALSE(plan_concurrent(supply(), chain(0, 2), PlanningPolicy::kAsap));
}

TEST_F(NegotiationTest, EarliestDeadlineRespectsSupplyGaps) {
  ResourceSet gappy;
  gappy.add(4, TimeInterval(0, 2), cpu1);   // cpu finishes exactly at 2
  gappy.add(4, TimeInterval(6, 10), net12);  // but network only exists late
  auto d = earliest_feasible_deadline(gappy, chain(0, 40), 40);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 7);  // the send's first possible completion
}

TEST_F(NegotiationTest, EarliestDeadlineNulloptWhenHopeless) {
  ResourceSet thin;
  thin.add(4, TimeInterval(0, 40), cpu1);  // no network, ever
  EXPECT_FALSE(earliest_feasible_deadline(thin, chain(0, 40), 40).has_value());
}

TEST_F(NegotiationTest, EarliestDeadlineValidatesLatest) {
  EXPECT_THROW(earliest_feasible_deadline(supply(), chain(5, 40), 5),
               std::invalid_argument);
}

TEST_F(NegotiationTest, LatestStartIsExact) {
  // Work takes 3 dedicated ticks; with d=10 the latest start is 7.
  auto s = latest_feasible_start(supply(), chain(0, 10));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, 7);
  EXPECT_TRUE(plan_concurrent(supply(), chain(7, 10), PlanningPolicy::kAsap));
  EXPECT_FALSE(plan_concurrent(supply(), chain(8, 10), PlanningPolicy::kAsap));
}

TEST_F(NegotiationTest, LatestStartNulloptWhenInfeasibleNow) {
  auto heavy = [&](Tick s, Tick d) {
    auto gamma = ActorComputationBuilder("a", l1).evaluate(100).build();
    DistributedComputation lambda("big", {gamma}, s, d);
    return make_concurrent_requirement(phi, lambda);
  };
  EXPECT_FALSE(latest_feasible_start(supply(), heavy(0, 10)).has_value());
}

TEST_F(NegotiationTest, AdmissibleCopiesFillTheWindow) {
  // Each copy needs 8 cpu then 4 net; the window (0, 10) offers 40 cpu, so
  // quantity alone would allow 5 — but the 5th copy's cpu phase ends exactly
  // at t=10, leaving no room for its send. Only 4 sequenceable copies fit:
  // temporal structure strikes again.
  auto copies = admissible_copies(supply().restricted(TimeInterval(0, 10)),
                                  chain(0, 10), 100);
  EXPECT_EQ(copies.size(), 4u);
  // The returned plans are disjoint: their total usage fits the supply.
  ResourceSet combined;
  for (const auto& p : copies) combined = combined.unioned(p.usage_as_resources());
  EXPECT_TRUE(supply().relative_complement(combined).has_value());
}

TEST_F(NegotiationTest, AdmissibleCopiesHonorsCap) {
  auto copies = admissible_copies(supply(), chain(0, 40), 3);
  EXPECT_EQ(copies.size(), 3u);
}

TEST_F(NegotiationTest, AdmissibleCopiesZeroWhenNoneFit) {
  ResourceSet nothing;
  EXPECT_TRUE(admissible_copies(nothing, chain(0, 10), 4).empty());
}

TEST_F(NegotiationTest, CounterOfferOnAcceptedRequestIsEmpty) {
  RotaAdmissionController ctl(phi, supply());
  CounterOffer offer = request_with_counter_offer(ctl, chain(0, 10), 0, 40);
  EXPECT_TRUE(offer.decision.accepted);
  EXPECT_FALSE(offer.suggested_deadline.has_value());
  EXPECT_EQ(ctl.ledger().admitted_count(), 1u);
}

TEST_F(NegotiationTest, CounterOfferSuggestsWorkableExtension) {
  RotaAdmissionController ctl(phi, supply());
  // Saturate (0, 10): 40 cpu hold at most 4 sequenced chains (see above),
  // plus the 5th fails. Keep admitting until a rejection.
  CounterOffer offer;
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    offer = request_with_counter_offer(ctl, chain(0, 10), 0, 40);
    if (!offer.decision.accepted) break;
    ++admitted;
  }
  ASSERT_FALSE(offer.decision.accepted);
  ASSERT_TRUE(offer.suggested_deadline.has_value());
  EXPECT_GT(*offer.suggested_deadline, 10);
  EXPECT_LE(*offer.suggested_deadline, 40);
  // Nothing was committed by the rejected probe.
  EXPECT_EQ(ctl.ledger().admitted_count(), static_cast<std::size_t>(admitted));
  // Accepting the offer by re-requesting with the extended window works.
  EXPECT_TRUE(ctl.request(chain(0, *offer.suggested_deadline), 0).accepted);
}

TEST_F(NegotiationTest, CounterOfferSuggestionIsTight) {
  RotaAdmissionController ctl(phi, supply());
  while (ctl.request(chain(0, 10), 0).accepted) {
  }
  CounterOffer offer = request_with_counter_offer(ctl, chain(0, 10), 0, 40);
  ASSERT_TRUE(offer.suggested_deadline.has_value());
  // One tick tighter must fail on the same residual.
  RotaAdmissionController probe = ctl;
  EXPECT_FALSE(probe.request(chain(0, *offer.suggested_deadline - 1), 0).accepted);
}

TEST_F(NegotiationTest, CounterOfferNulloptWhenTrulyHopeless) {
  ResourceSet thin;
  thin.add(4, TimeInterval(0, 40), cpu1);  // no network, ever
  RotaAdmissionController ctl(phi, thin);
  CounterOffer offer = request_with_counter_offer(ctl, chain(0, 10), 0, 40);
  EXPECT_FALSE(offer.decision.accepted);
  EXPECT_FALSE(offer.suggested_deadline.has_value());
}

TEST_F(NegotiationTest, CounterOfferRespectsMaxDeadline) {
  RotaAdmissionController ctl(phi, supply());
  while (ctl.request(chain(0, 10), 0).accepted) {
  }
  // No extension allowed → no offer.
  CounterOffer offer = request_with_counter_offer(ctl, chain(0, 10), 0, 10);
  EXPECT_FALSE(offer.decision.accepted);
  EXPECT_FALSE(offer.suggested_deadline.has_value());
}

TEST_F(NegotiationTest, DeadlineMonotoneAcrossPolicies) {
  for (auto policy : {PlanningPolicy::kAsap, PlanningPolicy::kAlap}) {
    auto d = earliest_feasible_deadline(supply(), chain(0, 40), 40, policy);
    ASSERT_TRUE(d.has_value()) << policy_name(policy);
    // Every later deadline must also be feasible (sanity of the search).
    for (Tick probe = *d; probe <= *d + 3; ++probe) {
      EXPECT_TRUE(plan_concurrent(supply(), chain(0, probe), policy))
          << policy_name(policy) << " d=" << probe;
    }
  }
}

}  // namespace
}  // namespace rota
