// Cross-surface parity for the unified planning kernel (rota/plan/).
//
// Every admission surface — the sequential controller, the batched pipeline
// at any lane count, the RotaStrategy harness, and the cluster claim path —
// is a different composition of the same two kernel halves (speculate,
// commit). These tests pin the consequence: on one shared seeded workload,
// every surface produces the *bit-identical* decision sequence (accept set,
// plans, rejection reasons) and leaves the ledger in the same state. They
// also pin the optimistic-concurrency contract (stale speculations are
// refused and redone, never committed), the audit-replay rebuild path, the
// negotiation search against a per-window reference, and the snapshot
// restriction cache's containment rule.
#include "rota/plan/kernel.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "rota/admission/audit.hpp"
#include "rota/admission/baselines.hpp"
#include "rota/admission/negotiation.hpp"
#include "rota/cluster/node.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/logic/planner.hpp"
#include "rota/logic/symbolic/feasibility.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace rota {
namespace {

constexpr Tick kHorizon = 500;

WorkloadConfig parity_config() {
  WorkloadConfig config;
  config.seed = 23;
  config.mean_interarrival = 3.0;  // heavy enough that plenty get rejected
  config.laxity = 1.3;
  return config;
}

/// The shared seeded workload every parity test admits.
std::vector<BatchRequest> parity_requests(WorkloadGenerator& gen) {
  std::vector<BatchRequest> requests;
  for (const Arrival& a : gen.make_arrivals(kHorizon)) {
    requests.push_back(
        BatchRequest{make_concurrent_requirement(gen.phi(), a.computation), a.at});
  }
  return requests;
}

void expect_same_decision(const AdmissionDecision& a, const AdmissionDecision& b,
                          std::size_t index) {
  EXPECT_EQ(a.accepted, b.accepted) << "request " << index;
  EXPECT_EQ(a.reason, b.reason) << "request " << index;
  EXPECT_EQ(a.plan == b.plan, true) << "plans diverge on request " << index;
}

TEST(PlanKernelParity, BatchMatchesSequentialAtEveryLaneCount) {
  CostModel phi;
  WorkloadGenerator gen(parity_config(), phi);
  const auto requests = parity_requests(gen);
  ASSERT_GT(requests.size(), 40u);
  const ResourceSet supply = gen.base_supply(TimeInterval(0, kHorizon));

  // Reference: the sequential controller, one request at a time.
  RotaAdmissionController sequential(phi, supply);
  std::vector<AdmissionDecision> expected;
  for (const BatchRequest& r : requests) {
    expected.push_back(sequential.request(r.rho, r.at));
  }
  std::size_t accepted = 0;
  for (const auto& d : expected) accepted += d.accepted ? 1 : 0;
  ASSERT_GT(accepted, 0u);
  ASSERT_LT(accepted, expected.size()) << "workload must exercise rejection";

  for (const std::size_t lanes : {1u, 2u, 3u, 4u, 8u}) {
    BatchAdmissionController batch(phi, supply, PlanningPolicy::kAsap, lanes);
    const auto decisions = batch.admit_batch(requests);
    ASSERT_EQ(decisions.size(), expected.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      expect_same_decision(expected[i], decisions[i], i);
    }
    // Identical decisions must leave identical ledgers.
    EXPECT_EQ(batch.ledger().residual(), sequential.ledger().residual())
        << "lanes=" << lanes;
    EXPECT_EQ(batch.ledger().admitted_count(), sequential.ledger().admitted_count())
        << "lanes=" << lanes;
  }
}

TEST(PlanKernelParity, RotaStrategyMatchesSequentialController) {
  CostModel phi;
  WorkloadGenerator gen(parity_config(), phi);
  const auto arrivals = gen.make_arrivals(kHorizon);
  ASSERT_GT(arrivals.size(), 40u);
  const ResourceSet supply = gen.base_supply(TimeInterval(0, kHorizon));

  RotaAdmissionController controller(phi, supply);
  RotaStrategy strategy(phi, supply);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const AdmissionDecision expected =
        controller.request(arrivals[i].computation, arrivals[i].at);
    const AdmissionDecision got =
        strategy.request(arrivals[i].computation, arrivals[i].at);
    expect_same_decision(expected, got, i);
  }
  EXPECT_EQ(strategy.controller().ledger().residual(),
            controller.ledger().residual());
}

TEST(PlanKernelParity, ClusterClaimMatchesLocalAdmit) {
  CostModel phi;
  WorkloadConfig config = parity_config();
  config.mean_interarrival = 4.0;
  WorkloadGenerator gen(config, phi);
  const auto arrivals = gen.make_cluster_arrivals(kHorizon, /*num_nodes=*/1,
                                                  /*hot_fraction=*/1.0);
  ASSERT_GT(arrivals.size(), 20u);
  const ResourceSet supply = gen.node_supply(0, TimeInterval(0, kHorizon));

  cluster::ClusterEvents events;
  net::QueueTransport transport(/*local=*/0);
  cluster::ClusterNode node(/*id=*/0, gen.locations()[0], phi, supply,
                            cluster::NodeConfig{}, &events, &transport);
  // Reference: a plain local controller with the same supply, admitting the
  // node-localized requirement at the claim's delivery tick.
  RotaAdmissionController local(phi, supply);

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    cluster::Message claim;
    claim.kind = cluster::MsgKind::kClaim;
    claim.from = 1;
    claim.to = 0;
    claim.job = i;
    claim.work = arrivals[i].work;
    node.handle(claim, arrivals[i].at);
    const auto out = transport.drain_sent();
    ASSERT_EQ(out.size(), 1u) << "claim " << i;

    const AdmissionDecision expected =
        local.request(node.localize(arrivals[i].work), arrivals[i].at);
    if (expected.accepted) {
      EXPECT_EQ(out[0].kind, cluster::MsgKind::kClaimAck) << "claim " << i;
      EXPECT_EQ(out[0].finish, expected.plan->finish) << "claim " << i;
    } else {
      EXPECT_EQ(out[0].kind, cluster::MsgKind::kClaimReject) << "claim " << i;
      EXPECT_EQ(out[0].note, expected.reason) << "claim " << i;
    }
  }
  EXPECT_EQ(node.ledger().residual(), local.ledger().residual());
}

// ---------------------------------------------------------------------------
// Optimistic-concurrency contract: stale speculations are redone, never
// committed — and a rebuild from the audit log converges to the same ledger.

/// A two-actor computation over `site` with plenty of laxity.
DistributedComputation simple_job(const std::string& name, Location site,
                                  Tick start, Tick deadline) {
  ActorComputationBuilder builder(name + "-actor", site);
  builder.evaluate(3);
  builder.ready();
  return DistributedComputation(name, {std::move(builder).build()}, start,
                                deadline);
}

TEST(PlanKernelStaleness, CommitThroughAnotherSurfaceInvalidatesSpeculation) {
  Location site("stale-l1");
  CostModel phi;
  ResourceSet supply;
  supply.add(10, TimeInterval(0, 100), LocatedType::cpu(site));
  RotaAdmissionController controller(phi, supply);

  const ConcurrentRequirement rho_a =
      make_concurrent_requirement(phi, simple_job("a", site, 1, 60));
  const ConcurrentRequirement rho_b =
      make_concurrent_requirement(phi, simple_job("b", site, 1, 60));

  // Speculate `a` against a snapshot...
  const PlanResult spec_a = controller.kernel().speculate(
      rho_a, 0, FeasibilitySnapshot::capture(controller.ledger()));
  ASSERT_TRUE(spec_a.feasible());

  // ...then commit `b` through the sequential surface, moving the revision.
  const AdmissionDecision b = controller.request(rho_b, 0);
  ASSERT_TRUE(b.accepted);
  const std::uint64_t revision_after_b = controller.ledger().revision();
  const ResourceSet residual_after_b = controller.ledger().residual();

  // The stale speculation is refused and the ledger is untouched by the
  // attempt — nothing admitted, no clock or revision movement.
  EXPECT_EQ(controller.commit(spec_a), std::nullopt);
  EXPECT_EQ(controller.ledger().revision(), revision_after_b);
  EXPECT_EQ(controller.ledger().residual(), residual_after_b);
  EXPECT_EQ(controller.ledger().admitted_count(), 1u);

  // Redoing the speculation against a fresh snapshot commits cleanly.
  const PlanResult redo = controller.kernel().speculate(
      rho_a, 0, FeasibilitySnapshot::capture(controller.ledger()));
  ASSERT_TRUE(redo.feasible());
  const auto decision = controller.commit(redo);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->accepted);
  EXPECT_EQ(controller.ledger().admitted_count(), 2u);
}

TEST(PlanKernelStaleness, DetachedSnapshotsNeverCommit) {
  Location site("stale-l2");
  CostModel phi;
  ResourceSet supply;
  supply.add(10, TimeInterval(0, 100), LocatedType::cpu(site));
  RotaAdmissionController controller(phi, supply);
  const ConcurrentRequirement rho =
      make_concurrent_requirement(phi, simple_job("w", site, 1, 60));

  // over() / minus() snapshots are speculation-only: their revision stamp
  // can never match a live ledger, so the commit gate refuses them even when
  // the availability they planned against happens to be identical.
  const PlanResult what_if = controller.kernel().speculate(
      rho, 0, FeasibilitySnapshot::over(controller.ledger().residual()));
  ASSERT_TRUE(what_if.feasible());
  EXPECT_EQ(what_if.revision, FeasibilitySnapshot::kDetachedRevision);
  EXPECT_EQ(controller.commit(what_if), std::nullopt);
  EXPECT_EQ(controller.ledger().admitted_count(), 0u);
}

TEST(PlanKernelStaleness, StalenessRedoAndAuditReplayConverge) {
  // The mid-batch shape, spelled out by hand: two speculations against one
  // snapshot, commit the first (revision moves), the second must be redone.
  // Then a crash-recovery rebuild from the audit log must land on the same
  // ledger the staleness-aware live path produced.
  Location site("stale-l3");
  CostModel phi;
  ResourceSet supply;
  supply.add(6, TimeInterval(0, 120), LocatedType::cpu(site));
  RotaAdmissionController controller(phi, supply);
  AuditLog audit(64);

  const ConcurrentRequirement rho_a =
      make_concurrent_requirement(phi, simple_job("a", site, 2, 80));
  const ConcurrentRequirement rho_b =
      make_concurrent_requirement(phi, simple_job("b", site, 2, 80));

  const FeasibilitySnapshot snapshot =
      FeasibilitySnapshot::capture(controller.ledger());
  const PlanResult spec_a = controller.kernel().speculate(rho_a, 0, snapshot);
  const PlanResult spec_b = controller.kernel().speculate(rho_b, 0, snapshot);
  ASSERT_TRUE(spec_a.feasible());
  ASSERT_TRUE(spec_b.feasible());

  const auto decision_a = controller.commit(spec_a);
  ASSERT_TRUE(decision_a && decision_a->accepted);
  audit.record(0, rho_a, *decision_a);

  // `b` went stale the moment `a` landed; it is redone, never committed as-is.
  ASSERT_EQ(controller.commit(spec_b), std::nullopt);
  const PlanResult redo_b = controller.kernel().speculate(
      rho_b, 0, FeasibilitySnapshot::capture(controller.ledger()));
  const auto decision_b = controller.commit(redo_b);
  ASSERT_TRUE(decision_b.has_value());
  audit.record(0, rho_b, *decision_b);

  // Rebuild from the WAL through the same commit gate (PlanningKernel::replay).
  CommitmentLedger recovered(supply);
  const std::size_t replayed = audit.replay_into(recovered);
  std::size_t accepted = (decision_a->accepted ? 1u : 0u) +
                         (decision_b->accepted ? 1u : 0u);
  EXPECT_EQ(replayed, accepted);
  EXPECT_EQ(recovered.residual(), controller.ledger().residual());
  EXPECT_EQ(recovered.admitted_count(), controller.ledger().admitted_count());
}

// ---------------------------------------------------------------------------
// Negotiation: the cached-restriction search must return exactly what the
// historical per-window-restriction search returned.

/// Reference implementation of the deadline search: every probe restricts
/// the residual to its own candidate window (what each surface did before
/// the snapshot's restriction cache) and calls the planner directly —
/// including the kernel's symbolic rescue of order-sensitive greedy
/// rejections, so the reference probes the same feasibility predicate the
/// kernel does (same budget, see kKernelProbeOptions in plan/kernel.cpp).
std::optional<Tick> reference_earliest_deadline(const ResourceSet& residual,
                                                const ConcurrentRequirement& rho,
                                                Tick latest,
                                                PlanningPolicy policy) {
  const Tick start = rho.window().start();
  auto feasible_by = [&](Tick d) {
    const TimeInterval window(start, d);
    const ResourceSet view = residual.restricted(window);
    const ConcurrentRequirement clipped = clip_requirement(rho, window);
    if (plan_concurrent(view, clipped, policy).has_value()) return true;
    if (policy != PlanningPolicy::kAsap || clipped.actors().size() <= 1) {
      return false;
    }
    return symbolic_concurrent_plan(view, clipped, start,
                                    FeasibilityOptions{20'000, 256})
        .has_value();
  };
  if (!feasible_by(latest)) return std::nullopt;
  Tick lo = start + 1, hi = latest;
  while (lo < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (feasible_by(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

TEST(NegotiationRegression, CounterOffersMatchPerWindowReferenceSearch) {
  CostModel phi;
  WorkloadConfig config = parity_config();
  config.mean_interarrival = 2.0;  // overload: rejections to counter-offer on
  WorkloadGenerator gen(config, phi);
  const auto requests = parity_requests(gen);
  const ResourceSet supply = gen.base_supply(TimeInterval(0, kHorizon));

  RotaAdmissionController controller(phi, supply);
  std::size_t rejected = 0, offered = 0;
  for (const BatchRequest& r : requests) {
    const Tick max_deadline = r.rho.window().end() + 40;
    // Reference answer, computed from the pre-request residual exactly the
    // way the pre-kernel code did: one restriction per candidate window.
    const ResourceSet residual = controller.ledger().residual();
    const Tick start = std::max(r.rho.window().start(), r.at);
    std::optional<Tick> expected;
    if (start < max_deadline) {
      expected = reference_earliest_deadline(
          residual, clip_requirement(r.rho, TimeInterval(start, max_deadline)),
          max_deadline, controller.policy());
    }

    const CounterOffer offer =
        request_with_counter_offer(controller, r.rho, r.at, max_deadline);
    if (offer.decision.accepted) continue;
    ++rejected;
    if (expected && *expected > r.rho.window().end()) {
      ASSERT_TRUE(offer.suggested_deadline.has_value()) << r.rho.name();
      EXPECT_EQ(*offer.suggested_deadline, *expected) << r.rho.name();
      ++offered;
    } else {
      EXPECT_EQ(offer.suggested_deadline, std::nullopt) << r.rho.name();
    }
  }
  ASSERT_GT(rejected, 0u) << "workload must exercise counter-offers";
  ASSERT_GT(offered, 0u) << "at least one rejection must yield an offer";
}

// ---------------------------------------------------------------------------
// Snapshot restriction cache.

TEST(FeasibilitySnapshotCache, ContainedWindowsShareOneRestriction) {
  Location site("cache-l1");
  CostModel phi;
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 200), LocatedType::cpu(site));
  RotaAdmissionController controller(phi, supply);

  const FeasibilitySnapshot snapshot =
      FeasibilitySnapshot::capture(controller.ledger());
  const ResourceSet& wide = snapshot.restricted(TimeInterval(0, 100));
  // A contained window is served from the cached wide view (the planner
  // never reads outside the requirement window, so containment is enough).
  const ResourceSet& narrow = snapshot.restricted(TimeInterval(20, 60));
  EXPECT_EQ(&wide, &narrow);
  EXPECT_EQ(&wide, &snapshot.restricted(TimeInterval(0, 100)));
  // A window outside every cached one gets its own restriction...
  const ResourceSet& disjoint = snapshot.restricted(TimeInterval(120, 180));
  EXPECT_NE(&wide, &disjoint);
  // ...and restriction semantics are unchanged by the cache.
  EXPECT_EQ(disjoint, controller.ledger().residual().restricted(TimeInterval(120, 180)));
}

TEST(SnapshotCache, RandomizedWindowMixMatchesUncachedRestrictions) {
  // Seeded property test: whatever mix of nested, overlapping, repeated and
  // disjoint windows the cache is probed with — and in whatever order — the
  // served view re-restricted to the probe window must equal a fresh
  // uncached restriction of the residual. Containment-based cache hits may
  // legitimately hand back a *wider* view, so the probe, not the view, is
  // the unit of comparison.
  CostModel phi;
  WorkloadGenerator gen(parity_config(), phi);
  const ResourceSet supply = gen.base_supply(TimeInterval(0, kHorizon));
  RotaAdmissionController controller(phi, supply);
  for (const BatchRequest& r : parity_requests(gen)) {
    controller.request(r.rho, r.at);
  }
  const ResourceSet& residual = controller.ledger().residual();

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FeasibilitySnapshot snapshot =
        FeasibilitySnapshot::capture(controller.ledger());
    util::Rng rng(seed * 977 + 11);
    std::vector<TimeInterval> probes;
    for (int i = 0; i < 8; ++i) {
      const Tick start = rng.uniform(0, kHorizon);
      const Tick len = rng.uniform(1, 80);
      const TimeInterval base(start, start + len);
      probes.push_back(base);
      // A nested subwindow and an overlapping shift of an earlier probe.
      probes.emplace_back(base.start() + len / 4, base.end() - len / 3);
      const TimeInterval& prior = probes[rng.index(probes.size())];
      probes.emplace_back(prior.start() + rng.uniform(0, 10),
                          prior.end() + rng.uniform(1, 10));
    }
    // Repeat a few verbatim so the memoized path is exercised too.
    probes.push_back(probes[rng.index(probes.size())]);
    probes.push_back(probes[rng.index(probes.size())]);

    for (const TimeInterval& probe : probes) {
      if (probe.empty()) continue;
      const ResourceSet& served = snapshot.restricted(probe);
      EXPECT_EQ(served.restricted(probe), residual.restricted(probe))
          << "seed " << seed << ", probe " << probe.to_string();
    }
  }
}

// ---- budget-aware speculation (the admission service's entry point) -------

TEST(PlanKernelBudget, DefaultOptionsMatchPlainSpeculate) {
  CostModel phi;
  WorkloadGenerator gen(parity_config(), phi);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  const PlanningKernel kernel;
  for (const Arrival& a : gen.make_arrivals(kHorizon)) {
    const ConcurrentRequirement rho = make_concurrent_requirement(phi, a.computation);
    const FeasibilitySnapshot snapshot = FeasibilitySnapshot::capture(ledger);
    const PlanResult plain = kernel.speculate(rho, a.at, snapshot);
    const PlanResult optioned = kernel.speculate(rho, a.at, snapshot, SpeculateOptions{});
    EXPECT_EQ(plain.status, optioned.status);
    EXPECT_EQ(plain.plan == optioned.plan, true);
    AdmissionDecision ignored;
    kernel.commit(plain, ledger, ignored);
  }
}

TEST(PlanKernelBudget, ExpiredTokenCancelsInsteadOfDeciding) {
  CostModel phi;
  WorkloadGenerator gen(parity_config(), phi);
  CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
  const PlanningKernel kernel;
  const ConcurrentRequirement rho =
      make_concurrent_requirement(phi, gen.make_computation(0));
  const FeasibilitySnapshot snapshot = FeasibilitySnapshot::capture(ledger);

  CancellationToken token = CancellationToken::with_budget_ns(1);  // expires now
  while (!token.expired()) {
  }
  SpeculateOptions options;
  options.cancel = &token;
  const PlanResult result = kernel.speculate(rho, 0, snapshot, options);
  EXPECT_EQ(result.status, PlanStatus::kCancelled);
  EXPECT_FALSE(result.feasible());
  EXPECT_STREQ(result.reject_reason(), "planning budget exhausted");

  // A cancelled speculation is not a decision: committing it must refuse
  // (kStale) and leave the ledger untouched — the exact kernel might have
  // accepted, so issuing a rejection here would break parity.
  const std::uint64_t revision = ledger.revision();
  AdmissionDecision decision;
  EXPECT_EQ(kernel.commit(result, ledger, decision), CommitStatus::kStale);
  EXPECT_EQ(ledger.revision(), revision);
  EXPECT_EQ(ledger.admitted_count(), 0u);
}

TEST(PlanKernelBudget, ExplicitCancelTripsTheToken) {
  CancellationToken token = CancellationToken::with_budget_ns(0);  // 0 = never
  EXPECT_FALSE(token.expired());
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.remaining_ns(), 0u);
}

TEST(PlanKernelBudget, ViewOverridePlansAgainstTheHullButKeepsStamps) {
  // A dominated hull (half the true supply) must shape the plan while the
  // result keeps the live snapshot's revision stamps — commit-able exactly
  // like an exact speculation. This is the contract kDigest stands on.
  Location site("hull-l1");
  CostModel phi;
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 100), LocatedType::cpu(site));
  CommitmentLedger ledger(supply);
  const PlanningKernel kernel;

  Phase p;
  p.demand.add(LocatedType::cpu(site), 8);
  p.first_action = 0;
  p.action_count = 1;
  const ConcurrentRequirement rho(
      "hulled", {ComplexRequirement("a", {p}, TimeInterval(0, 100), 0)},
      TimeInterval(0, 100));

  const FeasibilitySnapshot snapshot =
      FeasibilitySnapshot::capture(ledger, TimeInterval(0, 100));
  ResourceSet hull;
  hull.add(4, TimeInterval(0, 100), LocatedType::cpu(site));  // dominated
  SpeculateOptions options;
  options.view_override = &hull;
  const PlanResult result = kernel.speculate(rho, 0, snapshot, options);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.revision, ledger.revision());

  AdmissionDecision decision;
  ASSERT_EQ(kernel.commit(result, ledger, decision), CommitStatus::kCommitted);
  EXPECT_TRUE(decision.accepted) << decision.reason;
  // Against 4/tick the 8-unit phase needs at least 2 ticks — the hull, not
  // the 8/tick truth, shaped the plan.
  EXPECT_EQ(ledger.admitted_count(), 1u);
}

}  // namespace
}  // namespace rota
