#include "rota/advisor/migration_advisor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rota {
namespace {

class MigrationAdvisorTest : public ::testing::Test {
 protected:
  Location home{"ma-home"};
  Location fast{"ma-fast"};
  Location far{"ma-far"};
  CostModel phi;
  MigrationAdvisor advisor{CostModel()};

  WorkSpec spec(std::vector<std::int64_t> chunks, Tick d) {
    WorkSpec s;
    s.actor = "agent";
    s.home = home;
    s.chunk_weights = std::move(chunks);
    s.earliest_start = 0;
    s.deadline = d;
    return s;
  }
};

TEST_F(MigrationAdvisorTest, MaterializeStay) {
  ActorComputation c = advisor.materialize(spec({2, 1}, 20), PlacementKind::kStay, home);
  ASSERT_EQ(c.action_count(), 3u);  // two evaluates + ready
  EXPECT_EQ(c.actions()[0].at, home);
  EXPECT_EQ(c.actions()[2].kind, ActionKind::kReady);
}

TEST_F(MigrationAdvisorTest, MaterializeMigrateOnce) {
  ActorComputation c =
      advisor.materialize(spec({2, 1}, 20), PlacementKind::kMigrateOnce, fast);
  ASSERT_EQ(c.action_count(), 4u);
  EXPECT_EQ(c.actions()[0].kind, ActionKind::kMigrate);
  EXPECT_EQ(c.actions()[1].at, fast);
  EXPECT_EQ(c.actions()[3].at, fast);
}

TEST_F(MigrationAdvisorTest, MaterializeMigrateAndReturn) {
  ActorComputation c =
      advisor.materialize(spec({2, 3, 1}, 20), PlacementKind::kMigrateAndReturn, fast);
  // migrate, evaluate×2 remote, migrate home, evaluate last, ready.
  ASSERT_EQ(c.action_count(), 6u);
  EXPECT_EQ(c.actions()[0].to, fast);
  EXPECT_EQ(c.actions()[1].at, fast);
  EXPECT_EQ(c.actions()[3].kind, ActionKind::kMigrate);
  EXPECT_EQ(c.actions()[3].to, home);
  EXPECT_EQ(c.actions()[4].at, home);
  EXPECT_EQ(c.actions()[4].size, 1);
}

TEST_F(MigrationAdvisorTest, EmptyChunksThrow) {
  EXPECT_THROW(advisor.materialize(spec({}, 20), PlacementKind::kStay, home),
               std::invalid_argument);
}

TEST_F(MigrationAdvisorTest, BadDeadlineThrows) {
  ResourceSet supply;
  EXPECT_THROW(advisor.evaluate(supply, spec({1}, 0), {fast}), std::invalid_argument);
}

TEST_F(MigrationAdvisorTest, PrefersFastRemoteWhenHomeIsStarved) {
  ResourceSet supply;
  supply.add(1, TimeInterval(0, 30), LocatedType::cpu(home));   // crawling
  supply.add(12, TimeInterval(0, 30), LocatedType::cpu(fast));  // idle and fast
  supply.add(6, TimeInterval(0, 30), LocatedType::network(home, fast));
  supply.add(6, TimeInterval(0, 30), LocatedType::network(fast, home));

  auto best = advisor.best(supply, spec({3}, 30), {fast});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->kind, PlacementKind::kMigrateOnce);
  EXPECT_EQ(best->site, fast);

  // Staying is feasible too (24 cpu at rate 1 within 30 ticks) — just slower.
  auto options = advisor.evaluate(supply, spec({3}, 30), {fast});
  bool found_stay = false;
  for (const auto& o : options) {
    if (o.kind == PlacementKind::kStay) {
      found_stay = true;
      EXPECT_TRUE(o.feasible);
      EXPECT_GT(o.finish, best->finish);
    }
  }
  EXPECT_TRUE(found_stay);
}

TEST_F(MigrationAdvisorTest, StaysWhenMigrationCostDominates) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 30), LocatedType::cpu(home));
  supply.add(9, TimeInterval(0, 30), LocatedType::cpu(fast));   // barely faster
  supply.add(1, TimeInterval(0, 30), LocatedType::network(home, fast));  // slow link

  auto best = advisor.best(supply, spec({1}, 30), {fast});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->kind, PlacementKind::kStay);
}

TEST_F(MigrationAdvisorTest, NoOptionMeansNullopt) {
  ResourceSet supply;  // nothing anywhere
  EXPECT_FALSE(advisor.best(supply, spec({1}, 10), {fast, far}).has_value());
}

TEST_F(MigrationAdvisorTest, InfeasibleOptionsRankLast) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 30), LocatedType::cpu(home));
  // `far` unreachable: no network supply at all.
  auto options = advisor.evaluate(supply, spec({1, 1}, 30), {far});
  ASSERT_GE(options.size(), 2u);
  EXPECT_TRUE(options.front().feasible);
  EXPECT_EQ(options.front().kind, PlacementKind::kStay);
  EXPECT_FALSE(options.back().feasible);
}

TEST_F(MigrationAdvisorTest, MigrateAndReturnOnlyOfferedForMultipleChunks) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 30), LocatedType::cpu(home));
  auto single = advisor.evaluate(supply, spec({1}, 30), {fast});
  for (const auto& o : single) {
    EXPECT_NE(o.kind, PlacementKind::kMigrateAndReturn);
  }
  auto multi = advisor.evaluate(supply, spec({1, 1}, 30), {fast});
  bool offered = false;
  for (const auto& o : multi) {
    offered |= o.kind == PlacementKind::kMigrateAndReturn;
  }
  EXPECT_TRUE(offered);
}

TEST_F(MigrationAdvisorTest, FeasibleOptionsCarryValidPlans) {
  ResourceSet supply;
  supply.add(4, TimeInterval(0, 40), LocatedType::cpu(home));
  supply.add(8, TimeInterval(0, 40), LocatedType::cpu(fast));
  supply.add(6, TimeInterval(0, 40), LocatedType::network(home, fast));
  supply.add(6, TimeInterval(0, 40), LocatedType::network(fast, home));

  for (const auto& o : advisor.evaluate(supply, spec({2, 2}, 40), {fast})) {
    if (!o.feasible) continue;
    ASSERT_TRUE(o.plan.has_value()) << o.to_string();
    EXPECT_EQ(o.plan->finish, o.finish);
    for (const auto& [type, f] : o.plan->usage) {
      EXPECT_TRUE(supply.availability(type).dominates(f)) << o.to_string();
    }
  }
}

TEST_F(MigrationAdvisorTest, OptionToString) {
  ResourceSet supply;
  supply.add(8, TimeInterval(0, 30), LocatedType::cpu(home));
  auto options = advisor.evaluate(supply, spec({1}, 30), std::vector<Location>{});
  ASSERT_EQ(options.size(), 1u);
  EXPECT_NE(options[0].to_string().find("stay"), std::string::npos);
  EXPECT_NE(options[0].to_string().find("finish"), std::string::npos);
}

TEST_F(MigrationAdvisorTest, KindNames) {
  EXPECT_EQ(placement_kind_name(PlacementKind::kStay), "stay");
  EXPECT_EQ(placement_kind_name(PlacementKind::kMigrateOnce), "migrate-once");
  EXPECT_EQ(placement_kind_name(PlacementKind::kMigrateAndReturn),
            "migrate-and-return");
}


TEST_F(MigrationAdvisorTest, DigestOverloadRanksRemoteSites) {
  ResourceSet home_supply;
  home_supply.add(1, TimeInterval(0, 40), LocatedType::cpu(home));
  home_supply.add(6, TimeInterval(0, 40), LocatedType::network(home, fast));
  home_supply.add(6, TimeInterval(0, 40), LocatedType::network(home, far));

  ResourceSet fast_digest, far_digest;
  fast_digest.add(16, TimeInterval(0, 40), LocatedType::cpu(fast));
  far_digest.add(2, TimeInterval(0, 40), LocatedType::cpu(far));

  auto options = advisor.evaluate(
      home_supply, spec({3}, 40),
      {SiteSupply{fast, fast_digest}, SiteSupply{far, far_digest}});
  ASSERT_FALSE(options.empty());
  EXPECT_TRUE(options.front().feasible);
  EXPECT_EQ(options.front().site, fast);  // fastest digest wins
}

TEST_F(MigrationAdvisorTest, RankBreaksTiesBySiteIdThenKind) {
  // Two identical remote sites: equal finish times must rank by site id so
  // equal inputs always produce the same order (cluster determinism leans
  // on this).
  ResourceSet supply;
  supply.add(1, TimeInterval(0, 60), LocatedType::cpu(home));
  for (const Location& site : {fast, far}) {
    supply.add(16, TimeInterval(0, 60), LocatedType::cpu(site));
    supply.add(6, TimeInterval(0, 60), LocatedType::network(home, site));
    supply.add(6, TimeInterval(0, 60), LocatedType::network(site, home));
  }
  auto once = advisor.evaluate(supply, spec({3}, 60), {far, fast});
  auto again = advisor.evaluate(supply, spec({3}, 60), {fast, far});
  ASSERT_EQ(once.size(), again.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].kind, again[i].kind) << i;
    EXPECT_EQ(once[i].site, again[i].site) << i;
  }
  for (std::size_t i = 1; i < once.size(); ++i) {
    const auto& prev = once[i - 1];
    const auto& cur = once[i];
    if (prev.feasible == cur.feasible && prev.finish == cur.finish &&
        prev.site == cur.site) {
      EXPECT_LT(prev.kind, cur.kind);  // last tie-break: kind order
    }
  }
}

TEST_F(MigrationAdvisorTest, AssessIsThePublicCostHelper) {
  ResourceSet digest;
  digest.add(16, TimeInterval(0, 30), LocatedType::cpu(fast));
  WorkSpec w = spec({2}, 30);
  w.home = fast;  // digest-driven callers assess the job as if homed there
  const PlacementOption o = advisor.assess(digest, w, PlacementKind::kStay, fast);
  EXPECT_TRUE(o.feasible);
  EXPECT_EQ(o.site, fast);
  ASSERT_TRUE(o.plan.has_value());
  EXPECT_EQ(o.plan->finish, o.finish);
}

}  // namespace
}  // namespace rota
