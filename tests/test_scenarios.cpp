#include "rota/workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "rota/logic/theorems.hpp"

namespace rota {
namespace {

TEST(PaperExample, SupplyMatchesSectionThree) {
  PaperExample ex = make_paper_example();
  // {5}^(0,3) ∪ {5}^(0,5) cpu@l1 simplifies to {10}^(0,3), {5}^(3,5).
  EXPECT_EQ(ex.supply.availability(LocatedType::cpu(ex.l1)).value_at(1), 10);
  EXPECT_EQ(ex.supply.availability(LocatedType::cpu(ex.l1)).value_at(4), 5);
  EXPECT_EQ(ex.supply.availability(LocatedType::network(ex.l1, ex.l2)).value_at(2), 5);
}

TEST(PaperExample, ActorMatchesSectionFour) {
  PaperExample ex = make_paper_example();
  ASSERT_EQ(ex.actor.action_count(), 4u);
  EXPECT_EQ(ex.actor.actions()[0].kind, ActionKind::kEvaluate);
  EXPECT_EQ(ex.actor.actions()[1].kind, ActionKind::kSend);
  EXPECT_EQ(ex.actor.actions()[2].kind, ActionKind::kCreate);
  EXPECT_EQ(ex.actor.actions()[3].kind, ActionKind::kReady);
}

TEST(PaperExample, PhiMatchesPaperNumbers) {
  PaperExample ex = make_paper_example();
  EXPECT_EQ(ex.phi.cost(ex.actor.actions()[0]).of(LocatedType::cpu(ex.l1)), 8);
  EXPECT_EQ(
      ex.phi.cost(ex.actor.actions()[1]).of(LocatedType::network(ex.l1, ex.l2)), 4);
  EXPECT_EQ(ex.phi.cost(ex.actor.actions()[2]).of(LocatedType::cpu(ex.l1)), 5);
  EXPECT_EQ(ex.phi.cost(ex.actor.actions()[3]).of(LocatedType::cpu(ex.l1)), 1);
}

TEST(PaperExample, ComputationIsAccommodatable) {
  PaperExample ex = make_paper_example();
  ConcurrentRequirement rho = make_concurrent_requirement(ex.phi, ex.computation);
  // Phases: evaluate (8 cpu) ; send (4 net) ; create+ready (6 cpu).
  ASSERT_EQ(rho.actors().size(), 1u);
  EXPECT_EQ(rho.actors()[0].phase_count(), 3u);
  auto witness = theorem3_witness(ex.supply, rho);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->back().all_finished());
  EXPECT_LE(witness->back().now(), ex.computation.deadline());
}

TEST(Cluster, ShapeAndRates) {
  ClusterScenario c = make_cluster(3, 8, 6, TimeInterval(0, 50));
  EXPECT_EQ(c.nodes.size(), 3u);
  EXPECT_EQ(c.supply.types().size(), 3u + 6u);
  EXPECT_EQ(c.supply.availability(LocatedType::cpu(c.nodes[0])).value_at(10), 8);
  EXPECT_EQ(
      c.supply.availability(LocatedType::network(c.nodes[0], c.nodes[1])).value_at(10),
      6);
}

TEST(Volunteer, ScenarioIsPopulated) {
  VolunteerScenario v = make_volunteer_network(42, 400);
  EXPECT_EQ(v.horizon, 400);
  EXPECT_FALSE(v.base_supply.empty());
  EXPECT_FALSE(v.churn.empty());
  // Starving base: rate 1 cpu everywhere.
  for (const Location& l : v.generator.locations()) {
    EXPECT_EQ(v.base_supply.availability(LocatedType::cpu(l)).value_at(100), 1);
  }
}

TEST(Volunteer, DeterministicForSeed) {
  VolunteerScenario a = make_volunteer_network(42, 400);
  VolunteerScenario b = make_volunteer_network(42, 400);
  ASSERT_EQ(a.churn.size(), b.churn.size());
  for (std::size_t i = 0; i < a.churn.size(); ++i) {
    EXPECT_EQ(a.churn.events()[i], b.churn.events()[i]);
  }
}

TEST(ArrivalScenario, PatternedTraceRoundTripsThroughTheDsl) {
  WorkloadConfig config;
  config.seed = 404;
  config.num_locations = 3;
  WorkloadGenerator gen(config, CostModel{});
  ArrivalPattern pattern;
  pattern.base_mean_interarrival = 8.0;
  pattern.diurnal_amplitude = 0.5;
  pattern.diurnal_period = 300;
  pattern.flash_multiplier = 8.0;
  pattern.flash_at = 400;
  pattern.flash_duration = 100;
  const std::vector<Arrival> arrivals = gen.make_arrivals(900, pattern);
  ASSERT_FALSE(arrivals.empty());

  const ResourceSet supply = gen.base_supply(TimeInterval(0, 900));
  const Scenario scenario = arrivals_to_scenario(supply, arrivals);
  std::ostringstream text;
  write_scenario(text, scenario);
  const Scenario reparsed = parse_scenario_string(text.str());
  const std::vector<Arrival> back = arrivals_from_scenario(reparsed);

  ASSERT_EQ(back.size(), arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(back[i].at, arrivals[i].at) << "arrival " << i;
    EXPECT_EQ(back[i].computation, arrivals[i].computation) << "arrival " << i;
  }
  EXPECT_EQ(reparsed.supply, supply);
}

TEST(ArrivalScenario, RejectsArrivalsDetachedFromTheirWindow) {
  WorkloadConfig config;
  config.seed = 405;
  WorkloadGenerator gen(config, CostModel{});
  Arrival detached;
  detached.computation = gen.make_computation(10);
  detached.at = 7;  // no longer the computation's earliest start: not
                    // representable losslessly, so refuse instead of drift
  EXPECT_THROW(arrivals_to_scenario(ResourceSet{}, {detached}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rota
