#include "rota/logic/model_checker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rota/computation/requirement.hpp"

namespace rota {
namespace {

// Exercises every rule of the Figure 1 semantics.
class ModelCheckerTest : public ::testing::Test {
 protected:
  Location l1{"mc-l1"};
  Location l2{"mc-l2"};
  CostModel phi;
  LocatedType cpu1 = LocatedType::cpu(l1);
  LocatedType net12 = LocatedType::network(l1, l2);

  ResourceSet supply() {
    ResourceSet s;
    s.add(4, TimeInterval(0, 10), cpu1);
    s.add(4, TimeInterval(0, 10), net12);
    return s;
  }

  /// An idle path of `ticks` expiration steps over the standard supply.
  ComputationPath idle_path(int ticks) {
    ComputationPath path(SystemState(supply(), 0));
    for (int i = 0; i < ticks; ++i) path.apply(TickStep{});
    return path;
  }

  SimpleRequirement cpu_demand(Quantity q, Tick s, Tick d) {
    DemandSet dem;
    dem.add(cpu1, q);
    return SimpleRequirement(dem, TimeInterval(s, d));
  }
};

TEST_F(ModelCheckerTest, TrueAndFalseAtoms) {
  ComputationPath path = idle_path(2);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_true(), 0));
  EXPECT_FALSE(mc.satisfies(f_false(), 0));
}

TEST_F(ModelCheckerTest, NegationRule) {
  ComputationPath path = idle_path(2);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_not(f_false()), 0));
  EXPECT_FALSE(mc.satisfies(f_not(f_true()), 0));
  EXPECT_TRUE(mc.satisfies(f_not(f_not(f_true())), 0));
}

TEST_F(ModelCheckerTest, SatisfySimpleOnIdlePath) {
  // On an idle path all supply expires unused, so a 20-unit cpu demand over
  // (0, 10) is satisfiable (40 available).
  ComputationPath path = idle_path(3);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(cpu_demand(20, 0, 10)), 0));
  EXPECT_FALSE(mc.satisfies(f_satisfy(cpu_demand(41, 0, 10)), 0));
}

TEST_F(ModelCheckerTest, SatisfySimpleClipsWindowToPresent) {
  // At position 2 (t=2), only (2, 6) of the demand window remains: 16 units.
  ComputationPath path = idle_path(3);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(cpu_demand(16, 0, 6)), 2));
  EXPECT_FALSE(mc.satisfies(f_satisfy(cpu_demand(17, 0, 6)), 2));
  // At position 0 the full window is usable.
  EXPECT_TRUE(mc.satisfies(f_satisfy(cpu_demand(17, 0, 6)), 0));
}

TEST_F(ModelCheckerTest, SatisfySimpleSeesOnlyExpiringResources) {
  // A committed computation consumes the cpu on [0, 2); a demand that needed
  // those ticks no longer holds, demands fitting the leftovers do.
  auto gamma = ActorComputationBuilder("busy", l1).evaluate().build();  // 8 cpu
  DistributedComputation lambda("busy", {gamma}, 0, 10);
  ComputationPath path(SystemState(supply(), 0));
  path.apply(AccommodateStep{make_concurrent_requirement(phi, lambda)});
  path.apply(TickStep{{{0, cpu1, 4}}});
  path.apply(TickStep{{{0, cpu1, 4}}});

  ModelChecker mc(path);
  // (0, 2) is fully consumed along σ: nothing expires there.
  EXPECT_FALSE(mc.satisfies(f_satisfy(cpu_demand(1, 0, 2)), 0));
  // (2, 10) is untouched: 32 units expire.
  EXPECT_TRUE(mc.satisfies(f_satisfy(cpu_demand(32, 0, 10)), 0));
  EXPECT_FALSE(mc.satisfies(f_satisfy(cpu_demand(33, 0, 10)), 0));
}

TEST_F(ModelCheckerTest, SatisfyComplexNeedsCutPoints) {
  auto gamma = ActorComputationBuilder("a", l1).evaluate().send(l2).build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 10));
  ComputationPath path = idle_path(1);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(rho), 0));

  // Too-tight window: 8 cpu at rate 4 needs 2 ticks + 1 net tick = 3.
  ComplexRequirement tight =
      make_complex_requirement(phi, gamma, TimeInterval(0, 2));
  EXPECT_FALSE(mc.satisfies(f_satisfy(tight), 0));
}

TEST_F(ModelCheckerTest, SatisfyComplexFailsOncePassed) {
  auto gamma = ActorComputationBuilder("a", l1).evaluate().build();
  ComplexRequirement rho = make_complex_requirement(phi, gamma, TimeInterval(0, 3));
  ComputationPath path = idle_path(5);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(rho), 0));
  // At t=3 the deadline has passed: the clipped window is empty.
  EXPECT_FALSE(mc.satisfies(f_satisfy(rho), 3));
  EXPECT_FALSE(mc.satisfies(f_satisfy(rho), 5));
}

TEST_F(ModelCheckerTest, SatisfyConcurrent) {
  auto g1 = ActorComputationBuilder("a1", l1).evaluate().build();
  auto g2 = ActorComputationBuilder("a2", l1).evaluate().build();
  DistributedComputation lambda("pair", {g1, g2}, 0, 4);
  ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
  ComputationPath path = idle_path(1);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(rho), 0));  // 16 needed, 16 available

  DistributedComputation tight("pair", {g1, g2}, 0, 3);
  EXPECT_FALSE(mc.satisfies(f_satisfy(make_concurrent_requirement(phi, tight)), 0));
}

TEST_F(ModelCheckerTest, EventuallyIsStrictlyFuture) {
  // satisfy(ρ) with window (0, 3) holds at positions 0..2 but not 3+.
  SimpleRequirement rho = cpu_demand(4, 0, 3);
  ComputationPath path = idle_path(5);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_satisfy(rho), 0));
  // ◇ at position 2: positions 3.. fail (window passed) → false.
  EXPECT_FALSE(mc.satisfies(f_eventually(f_satisfy(rho)), 2));
  // ◇ at position 0: position 1 satisfies → true.
  EXPECT_TRUE(mc.satisfies(f_eventually(f_satisfy(rho)), 0));
}

TEST_F(ModelCheckerTest, AlwaysOverStrictFuture) {
  ComputationPath path = idle_path(4);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_always(f_true()), 0));
  EXPECT_FALSE(mc.satisfies(f_always(f_false()), 0));
  // At the last position the strict future is empty: vacuously true.
  EXPECT_TRUE(mc.satisfies(f_always(f_false()), 4));
  EXPECT_FALSE(mc.satisfies(f_eventually(f_true()), 4));
}

TEST_F(ModelCheckerTest, AlwaysSatisfyDegradesOverTime) {
  // A demand whose window shrinks as t advances: always(satisfy) fails
  // because late positions cannot cover it, while eventually(satisfy) holds.
  SimpleRequirement rho = cpu_demand(12, 0, 5);  // needs 3 of the 5 ticks
  ComputationPath path = idle_path(6);
  ModelChecker mc(path);
  EXPECT_TRUE(mc.satisfies(f_eventually(f_satisfy(rho)), 0));
  EXPECT_FALSE(mc.satisfies(f_always(f_satisfy(rho)), 0));
}

TEST_F(ModelCheckerTest, DualityOfEventuallyAndAlways) {
  // ◇ψ ≡ ¬□¬ψ on every position of a finite path.
  SimpleRequirement rho = cpu_demand(12, 0, 5);
  ComputationPath path = idle_path(6);
  ModelChecker mc(path);
  for (std::size_t pos = 0; pos < path.size(); ++pos) {
    const bool diamond = mc.satisfies(f_eventually(f_satisfy(rho)), pos);
    const bool via_box = mc.satisfies(f_not(f_always(f_not(f_satisfy(rho)))), pos);
    EXPECT_EQ(diamond, via_box) << "position " << pos;
  }
}

TEST_F(ModelCheckerTest, PositionBeyondPathThrows) {
  ComputationPath path = idle_path(1);
  ModelChecker mc(path);
  EXPECT_THROW(mc.satisfies(f_true(), 2), std::out_of_range);
}

TEST_F(ModelCheckerTest, SatisfyComplexHonorsRateCap) {
  // rota_fuzz sim-oracle regression (case seed 16171108973027060361,
  // minimized): the window-clipped requirement used to drop the actor's
  // rate cap, so a capped actor was checked as if it could absorb at the
  // full supply rate.
  Phase phase;
  phase.demand.add(cpu1, 8);
  phase.action_count = 1;
  ComputationPath path = idle_path(1);
  ModelChecker mc(path);

  // 4 cpu/tick over [0, 2) covers the 8-unit demand uncapped, but at rate
  // cap 1 the actor can absorb at most 2 units by the deadline.
  ComplexRequirement uncapped("a", {phase}, TimeInterval(0, 2), 0);
  EXPECT_TRUE(mc.satisfies(f_satisfy(uncapped), 0));
  ComplexRequirement capped("a", {phase}, TimeInterval(0, 2), 1);
  EXPECT_FALSE(mc.satisfies(f_satisfy(capped), 0));
}

}  // namespace
}  // namespace rota
