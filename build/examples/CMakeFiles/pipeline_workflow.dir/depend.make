# Empty dependencies file for pipeline_workflow.
# This may be replaced when dependencies are built.
