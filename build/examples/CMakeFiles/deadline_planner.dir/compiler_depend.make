# Empty compiler generated dependencies file for deadline_planner.
# This may be replaced when dependencies are built.
