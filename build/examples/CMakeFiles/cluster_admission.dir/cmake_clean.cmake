file(REMOVE_RECURSE
  "CMakeFiles/cluster_admission.dir/cluster_admission.cpp.o"
  "CMakeFiles/cluster_admission.dir/cluster_admission.cpp.o.d"
  "cluster_admission"
  "cluster_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
