# Empty dependencies file for cluster_admission.
# This may be replaced when dependencies are built.
