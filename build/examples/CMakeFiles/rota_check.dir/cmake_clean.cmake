file(REMOVE_RECURSE
  "CMakeFiles/rota_check.dir/rota_check.cpp.o"
  "CMakeFiles/rota_check.dir/rota_check.cpp.o.d"
  "rota_check"
  "rota_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rota_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
