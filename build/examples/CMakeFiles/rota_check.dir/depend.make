# Empty dependencies file for rota_check.
# This may be replaced when dependencies are built.
