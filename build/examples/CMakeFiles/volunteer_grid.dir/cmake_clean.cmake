file(REMOVE_RECURSE
  "CMakeFiles/volunteer_grid.dir/volunteer_grid.cpp.o"
  "CMakeFiles/volunteer_grid.dir/volunteer_grid.cpp.o.d"
  "volunteer_grid"
  "volunteer_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
