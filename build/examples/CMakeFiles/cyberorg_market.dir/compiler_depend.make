# Empty compiler generated dependencies file for cyberorg_market.
# This may be replaced when dependencies are built.
