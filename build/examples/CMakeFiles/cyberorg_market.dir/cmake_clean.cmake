file(REMOVE_RECURSE
  "CMakeFiles/cyberorg_market.dir/cyberorg_market.cpp.o"
  "CMakeFiles/cyberorg_market.dir/cyberorg_market.cpp.o.d"
  "cyberorg_market"
  "cyberorg_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyberorg_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
