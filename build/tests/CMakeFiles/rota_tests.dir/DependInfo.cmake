
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_action_cost.cpp" "tests/CMakeFiles/rota_tests.dir/test_action_cost.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_action_cost.cpp.o.d"
  "/root/repo/tests/test_actor_computation.cpp" "tests/CMakeFiles/rota_tests.dir/test_actor_computation.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_actor_computation.cpp.o.d"
  "/root/repo/tests/test_allen.cpp" "tests/CMakeFiles/rota_tests.dir/test_allen.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_allen.cpp.o.d"
  "/root/repo/tests/test_audit.cpp" "tests/CMakeFiles/rota_tests.dir/test_audit.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_audit.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/rota_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/rota_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_cyberorg.cpp" "tests/CMakeFiles/rota_tests.dir/test_cyberorg.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_cyberorg.cpp.o.d"
  "/root/repo/tests/test_dag_planner.cpp" "tests/CMakeFiles/rota_tests.dir/test_dag_planner.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_dag_planner.cpp.o.d"
  "/root/repo/tests/test_demand.cpp" "tests/CMakeFiles/rota_tests.dir/test_demand.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_demand.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/rota_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_explorer.cpp" "tests/CMakeFiles/rota_tests.dir/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_explorer.cpp.o.d"
  "/root/repo/tests/test_formula.cpp" "tests/CMakeFiles/rota_tests.dir/test_formula.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_formula.cpp.o.d"
  "/root/repo/tests/test_formula_parser.cpp" "tests/CMakeFiles/rota_tests.dir/test_formula_parser.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_formula_parser.cpp.o.d"
  "/root/repo/tests/test_ia_network.cpp" "tests/CMakeFiles/rota_tests.dir/test_ia_network.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_ia_network.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rota_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interaction.cpp" "tests/CMakeFiles/rota_tests.dir/test_interaction.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_interaction.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/rota_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_interval_set.cpp" "tests/CMakeFiles/rota_tests.dir/test_interval_set.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_interval_set.cpp.o.d"
  "/root/repo/tests/test_ledger.cpp" "tests/CMakeFiles/rota_tests.dir/test_ledger.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_ledger.cpp.o.d"
  "/root/repo/tests/test_located_type.cpp" "tests/CMakeFiles/rota_tests.dir/test_located_type.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_located_type.cpp.o.d"
  "/root/repo/tests/test_migration_advisor.cpp" "tests/CMakeFiles/rota_tests.dir/test_migration_advisor.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_migration_advisor.cpp.o.d"
  "/root/repo/tests/test_model_checker.cpp" "tests/CMakeFiles/rota_tests.dir/test_model_checker.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_model_checker.cpp.o.d"
  "/root/repo/tests/test_negotiation.cpp" "tests/CMakeFiles/rota_tests.dir/test_negotiation.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_negotiation.cpp.o.d"
  "/root/repo/tests/test_parser_robustness.cpp" "tests/CMakeFiles/rota_tests.dir/test_parser_robustness.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_parser_robustness.cpp.o.d"
  "/root/repo/tests/test_path.cpp" "tests/CMakeFiles/rota_tests.dir/test_path.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_path.cpp.o.d"
  "/root/repo/tests/test_periodic.cpp" "tests/CMakeFiles/rota_tests.dir/test_periodic.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_periodic.cpp.o.d"
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/rota_tests.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_planner.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rota_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_properties2.cpp" "tests/CMakeFiles/rota_tests.dir/test_properties2.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_properties2.cpp.o.d"
  "/root/repo/tests/test_rate_cap.cpp" "tests/CMakeFiles/rota_tests.dir/test_rate_cap.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_rate_cap.cpp.o.d"
  "/root/repo/tests/test_requirement.cpp" "tests/CMakeFiles/rota_tests.dir/test_requirement.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_requirement.cpp.o.d"
  "/root/repo/tests/test_resource_set.cpp" "tests/CMakeFiles/rota_tests.dir/test_resource_set.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_resource_set.cpp.o.d"
  "/root/repo/tests/test_resource_term.cpp" "tests/CMakeFiles/rota_tests.dir/test_resource_term.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_resource_term.cpp.o.d"
  "/root/repo/tests/test_scenario_io.cpp" "tests/CMakeFiles/rota_tests.dir/test_scenario_io.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_scenario_io.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/rota_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/rota_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_state.cpp" "tests/CMakeFiles/rota_tests.dir/test_state.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_state.cpp.o.d"
  "/root/repo/tests/test_step_function.cpp" "tests/CMakeFiles/rota_tests.dir/test_step_function.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_step_function.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/rota_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_theorems.cpp" "tests/CMakeFiles/rota_tests.dir/test_theorems.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_theorems.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/rota_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/rota_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/rota_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/rota_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rota.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
