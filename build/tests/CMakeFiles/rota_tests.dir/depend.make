# Empty dependencies file for rota_tests.
# This may be replaced when dependencies are built.
