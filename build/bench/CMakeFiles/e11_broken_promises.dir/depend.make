# Empty dependencies file for e11_broken_promises.
# This may be replaced when dependencies are built.
