file(REMOVE_RECURSE
  "CMakeFiles/e11_broken_promises.dir/e11_broken_promises.cpp.o"
  "CMakeFiles/e11_broken_promises.dir/e11_broken_promises.cpp.o.d"
  "e11_broken_promises"
  "e11_broken_promises.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_broken_promises.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
