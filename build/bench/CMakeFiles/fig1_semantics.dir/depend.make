# Empty dependencies file for fig1_semantics.
# This may be replaced when dependencies are built.
