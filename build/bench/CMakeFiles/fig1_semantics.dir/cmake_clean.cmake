file(REMOVE_RECURSE
  "CMakeFiles/fig1_semantics.dir/fig1_semantics.cpp.o"
  "CMakeFiles/fig1_semantics.dir/fig1_semantics.cpp.o.d"
  "fig1_semantics"
  "fig1_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
