file(REMOVE_RECURSE
  "CMakeFiles/e2_reasoning_cost.dir/e2_reasoning_cost.cpp.o"
  "CMakeFiles/e2_reasoning_cost.dir/e2_reasoning_cost.cpp.o.d"
  "e2_reasoning_cost"
  "e2_reasoning_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_reasoning_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
