# Empty dependencies file for e2_reasoning_cost.
# This may be replaced when dependencies are built.
