# Empty compiler generated dependencies file for e6_ablation.
# This may be replaced when dependencies are built.
