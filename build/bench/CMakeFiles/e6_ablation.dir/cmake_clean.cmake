file(REMOVE_RECURSE
  "CMakeFiles/e6_ablation.dir/e6_ablation.cpp.o"
  "CMakeFiles/e6_ablation.dir/e6_ablation.cpp.o.d"
  "e6_ablation"
  "e6_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
