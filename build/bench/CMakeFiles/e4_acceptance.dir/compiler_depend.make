# Empty compiler generated dependencies file for e4_acceptance.
# This may be replaced when dependencies are built.
