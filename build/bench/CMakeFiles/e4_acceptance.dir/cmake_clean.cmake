file(REMOVE_RECURSE
  "CMakeFiles/e4_acceptance.dir/e4_acceptance.cpp.o"
  "CMakeFiles/e4_acceptance.dir/e4_acceptance.cpp.o.d"
  "e4_acceptance"
  "e4_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
