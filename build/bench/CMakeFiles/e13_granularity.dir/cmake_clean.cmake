file(REMOVE_RECURSE
  "CMakeFiles/e13_granularity.dir/e13_granularity.cpp.o"
  "CMakeFiles/e13_granularity.dir/e13_granularity.cpp.o.d"
  "e13_granularity"
  "e13_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
