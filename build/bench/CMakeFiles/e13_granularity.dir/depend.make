# Empty dependencies file for e13_granularity.
# This may be replaced when dependencies are built.
