file(REMOVE_RECURSE
  "CMakeFiles/e10_phi_error.dir/e10_phi_error.cpp.o"
  "CMakeFiles/e10_phi_error.dir/e10_phi_error.cpp.o.d"
  "e10_phi_error"
  "e10_phi_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_phi_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
