# Empty compiler generated dependencies file for e10_phi_error.
# This may be replaced when dependencies are built.
