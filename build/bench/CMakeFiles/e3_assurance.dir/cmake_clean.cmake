file(REMOVE_RECURSE
  "CMakeFiles/e3_assurance.dir/e3_assurance.cpp.o"
  "CMakeFiles/e3_assurance.dir/e3_assurance.cpp.o.d"
  "e3_assurance"
  "e3_assurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_assurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
