# Empty dependencies file for e3_assurance.
# This may be replaced when dependencies are built.
