# Empty compiler generated dependencies file for e8_interaction.
# This may be replaced when dependencies are built.
