file(REMOVE_RECURSE
  "CMakeFiles/e8_interaction.dir/e8_interaction.cpp.o"
  "CMakeFiles/e8_interaction.dir/e8_interaction.cpp.o.d"
  "e8_interaction"
  "e8_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
