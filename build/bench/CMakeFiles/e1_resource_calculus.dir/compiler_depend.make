# Empty compiler generated dependencies file for e1_resource_calculus.
# This may be replaced when dependencies are built.
