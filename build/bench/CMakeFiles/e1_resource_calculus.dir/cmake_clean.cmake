file(REMOVE_RECURSE
  "CMakeFiles/e1_resource_calculus.dir/e1_resource_calculus.cpp.o"
  "CMakeFiles/e1_resource_calculus.dir/e1_resource_calculus.cpp.o.d"
  "e1_resource_calculus"
  "e1_resource_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_resource_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
