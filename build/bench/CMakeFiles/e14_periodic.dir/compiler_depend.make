# Empty compiler generated dependencies file for e14_periodic.
# This may be replaced when dependencies are built.
