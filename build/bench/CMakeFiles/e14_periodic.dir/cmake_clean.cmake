file(REMOVE_RECURSE
  "CMakeFiles/e14_periodic.dir/e14_periodic.cpp.o"
  "CMakeFiles/e14_periodic.dir/e14_periodic.cpp.o.d"
  "e14_periodic"
  "e14_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
