file(REMOVE_RECURSE
  "CMakeFiles/e9_cyberorgs.dir/e9_cyberorgs.cpp.o"
  "CMakeFiles/e9_cyberorgs.dir/e9_cyberorgs.cpp.o.d"
  "e9_cyberorgs"
  "e9_cyberorgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_cyberorgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
