# Empty dependencies file for e9_cyberorgs.
# This may be replaced when dependencies are built.
