file(REMOVE_RECURSE
  "CMakeFiles/e7_micro.dir/e7_micro.cpp.o"
  "CMakeFiles/e7_micro.dir/e7_micro.cpp.o.d"
  "e7_micro"
  "e7_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
