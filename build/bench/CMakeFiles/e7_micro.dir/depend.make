# Empty dependencies file for e7_micro.
# This may be replaced when dependencies are built.
