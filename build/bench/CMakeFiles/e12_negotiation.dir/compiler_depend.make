# Empty compiler generated dependencies file for e12_negotiation.
# This may be replaced when dependencies are built.
