file(REMOVE_RECURSE
  "CMakeFiles/e12_negotiation.dir/e12_negotiation.cpp.o"
  "CMakeFiles/e12_negotiation.dir/e12_negotiation.cpp.o.d"
  "e12_negotiation"
  "e12_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
