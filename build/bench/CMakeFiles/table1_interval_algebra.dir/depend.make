# Empty dependencies file for table1_interval_algebra.
# This may be replaced when dependencies are built.
