file(REMOVE_RECURSE
  "CMakeFiles/table1_interval_algebra.dir/table1_interval_algebra.cpp.o"
  "CMakeFiles/table1_interval_algebra.dir/table1_interval_algebra.cpp.o.d"
  "table1_interval_algebra"
  "table1_interval_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_interval_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
