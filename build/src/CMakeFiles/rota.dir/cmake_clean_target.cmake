file(REMOVE_RECURSE
  "librota.a"
)
