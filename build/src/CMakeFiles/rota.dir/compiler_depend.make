# Empty compiler generated dependencies file for rota.
# This may be replaced when dependencies are built.
