
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rota/admission/audit.cpp" "src/CMakeFiles/rota.dir/rota/admission/audit.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/audit.cpp.o.d"
  "/root/repo/src/rota/admission/baselines.cpp" "src/CMakeFiles/rota.dir/rota/admission/baselines.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/baselines.cpp.o.d"
  "/root/repo/src/rota/admission/controller.cpp" "src/CMakeFiles/rota.dir/rota/admission/controller.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/controller.cpp.o.d"
  "/root/repo/src/rota/admission/ledger.cpp" "src/CMakeFiles/rota.dir/rota/admission/ledger.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/ledger.cpp.o.d"
  "/root/repo/src/rota/admission/negotiation.cpp" "src/CMakeFiles/rota.dir/rota/admission/negotiation.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/negotiation.cpp.o.d"
  "/root/repo/src/rota/admission/periodic.cpp" "src/CMakeFiles/rota.dir/rota/admission/periodic.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/admission/periodic.cpp.o.d"
  "/root/repo/src/rota/advisor/migration_advisor.cpp" "src/CMakeFiles/rota.dir/rota/advisor/migration_advisor.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/advisor/migration_advisor.cpp.o.d"
  "/root/repo/src/rota/computation/action.cpp" "src/CMakeFiles/rota.dir/rota/computation/action.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/computation/action.cpp.o.d"
  "/root/repo/src/rota/computation/actor_computation.cpp" "src/CMakeFiles/rota.dir/rota/computation/actor_computation.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/computation/actor_computation.cpp.o.d"
  "/root/repo/src/rota/computation/cost_model.cpp" "src/CMakeFiles/rota.dir/rota/computation/cost_model.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/computation/cost_model.cpp.o.d"
  "/root/repo/src/rota/computation/interaction.cpp" "src/CMakeFiles/rota.dir/rota/computation/interaction.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/computation/interaction.cpp.o.d"
  "/root/repo/src/rota/computation/requirement.cpp" "src/CMakeFiles/rota.dir/rota/computation/requirement.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/computation/requirement.cpp.o.d"
  "/root/repo/src/rota/cyberorgs/cyberorg.cpp" "src/CMakeFiles/rota.dir/rota/cyberorgs/cyberorg.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/cyberorgs/cyberorg.cpp.o.d"
  "/root/repo/src/rota/io/dot.cpp" "src/CMakeFiles/rota.dir/rota/io/dot.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/io/dot.cpp.o.d"
  "/root/repo/src/rota/io/formula_parser.cpp" "src/CMakeFiles/rota.dir/rota/io/formula_parser.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/io/formula_parser.cpp.o.d"
  "/root/repo/src/rota/io/scenario.cpp" "src/CMakeFiles/rota.dir/rota/io/scenario.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/io/scenario.cpp.o.d"
  "/root/repo/src/rota/io/trace.cpp" "src/CMakeFiles/rota.dir/rota/io/trace.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/io/trace.cpp.o.d"
  "/root/repo/src/rota/logic/dag_planner.cpp" "src/CMakeFiles/rota.dir/rota/logic/dag_planner.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/dag_planner.cpp.o.d"
  "/root/repo/src/rota/logic/explorer.cpp" "src/CMakeFiles/rota.dir/rota/logic/explorer.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/explorer.cpp.o.d"
  "/root/repo/src/rota/logic/formula.cpp" "src/CMakeFiles/rota.dir/rota/logic/formula.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/formula.cpp.o.d"
  "/root/repo/src/rota/logic/model_checker.cpp" "src/CMakeFiles/rota.dir/rota/logic/model_checker.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/model_checker.cpp.o.d"
  "/root/repo/src/rota/logic/path.cpp" "src/CMakeFiles/rota.dir/rota/logic/path.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/path.cpp.o.d"
  "/root/repo/src/rota/logic/planner.cpp" "src/CMakeFiles/rota.dir/rota/logic/planner.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/planner.cpp.o.d"
  "/root/repo/src/rota/logic/state.cpp" "src/CMakeFiles/rota.dir/rota/logic/state.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/state.cpp.o.d"
  "/root/repo/src/rota/logic/theorems.cpp" "src/CMakeFiles/rota.dir/rota/logic/theorems.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/theorems.cpp.o.d"
  "/root/repo/src/rota/logic/transition.cpp" "src/CMakeFiles/rota.dir/rota/logic/transition.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/logic/transition.cpp.o.d"
  "/root/repo/src/rota/resource/demand.cpp" "src/CMakeFiles/rota.dir/rota/resource/demand.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/resource/demand.cpp.o.d"
  "/root/repo/src/rota/resource/located_type.cpp" "src/CMakeFiles/rota.dir/rota/resource/located_type.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/resource/located_type.cpp.o.d"
  "/root/repo/src/rota/resource/resource_set.cpp" "src/CMakeFiles/rota.dir/rota/resource/resource_set.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/resource/resource_set.cpp.o.d"
  "/root/repo/src/rota/resource/resource_term.cpp" "src/CMakeFiles/rota.dir/rota/resource/resource_term.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/resource/resource_term.cpp.o.d"
  "/root/repo/src/rota/resource/step_function.cpp" "src/CMakeFiles/rota.dir/rota/resource/step_function.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/resource/step_function.cpp.o.d"
  "/root/repo/src/rota/sim/churn.cpp" "src/CMakeFiles/rota.dir/rota/sim/churn.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/sim/churn.cpp.o.d"
  "/root/repo/src/rota/sim/metrics.cpp" "src/CMakeFiles/rota.dir/rota/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/sim/metrics.cpp.o.d"
  "/root/repo/src/rota/sim/simulator.cpp" "src/CMakeFiles/rota.dir/rota/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/sim/simulator.cpp.o.d"
  "/root/repo/src/rota/time/allen.cpp" "src/CMakeFiles/rota.dir/rota/time/allen.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/time/allen.cpp.o.d"
  "/root/repo/src/rota/time/ia_network.cpp" "src/CMakeFiles/rota.dir/rota/time/ia_network.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/time/ia_network.cpp.o.d"
  "/root/repo/src/rota/time/interval.cpp" "src/CMakeFiles/rota.dir/rota/time/interval.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/time/interval.cpp.o.d"
  "/root/repo/src/rota/time/interval_set.cpp" "src/CMakeFiles/rota.dir/rota/time/interval_set.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/time/interval_set.cpp.o.d"
  "/root/repo/src/rota/util/stats.cpp" "src/CMakeFiles/rota.dir/rota/util/stats.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/util/stats.cpp.o.d"
  "/root/repo/src/rota/util/table.cpp" "src/CMakeFiles/rota.dir/rota/util/table.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/util/table.cpp.o.d"
  "/root/repo/src/rota/workload/generator.cpp" "src/CMakeFiles/rota.dir/rota/workload/generator.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/workload/generator.cpp.o.d"
  "/root/repo/src/rota/workload/scenarios.cpp" "src/CMakeFiles/rota.dir/rota/workload/scenarios.cpp.o" "gcc" "src/CMakeFiles/rota.dir/rota/workload/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
